"""repro — stochastic network calculus for Delta-schedulers.

A complete, self-contained reproduction of

    J. Liebeherr, Y. Ghiassi-Farrokhfal, A. Burchard,
    "Does Link Scheduling Matter on Long Paths?", IEEE ICDCS 2010.

The library provides:

* an exact min-plus algebra on piecewise-linear curves (:mod:`repro.algebra`);
* deterministic and statistical traffic envelopes, including the EBB model
  and Markov-modulated on-off sources (:mod:`repro.arrivals`);
* deterministic and statistical service curves, including the paper's
  Theorem 1 leftover service curve for Delta-schedulers
  (:mod:`repro.service`);
* the Delta-scheduler abstraction — FIFO, static priority, blind
  multiplexing, EDF, custom precedence matrices — and the tight
  schedulability conditions of Theorem 2 (:mod:`repro.scheduling`);
* single-node probabilistic delay and backlog bounds
  (:mod:`repro.singlenode`);
* the end-to-end analysis of Section IV: statistical network service
  curves, the explicit theta-optimization, closed forms for FIFO and blind
  multiplexing, EDF deadline fixed points, heterogeneous paths, and the
  additive per-node baseline (:mod:`repro.network`);
* a discrete-time network simulator for empirical validation
  (:mod:`repro.simulation`);
* runnable reproductions of every figure in the paper
  (:mod:`repro.experiments`).

Public names are re-exported lazily from their home modules, so importing
:mod:`repro` stays cheap and submodules can be imported independently.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

# name -> home module, used for lazy re-export (PEP 562)
_EXPORTS = {
    "PiecewiseLinear": "repro.algebra",
    "DeterministicEnvelope": "repro.arrivals",
    "StatisticalEnvelope": "repro.arrivals",
    "EBB": "repro.arrivals",
    "MMOOParameters": "repro.arrivals",
    "MarkovModulatedSource": "repro.arrivals",
    "aggregate_ebb": "repro.arrivals",
    "DeltaScheduler": "repro.scheduling",
    "FIFO": "repro.scheduling",
    "BMUX": "repro.scheduling",
    "EDF": "repro.scheduling",
    "StaticPriority": "repro.scheduling",
    "deterministic_schedulability": "repro.scheduling",
    "StatisticalServiceCurve": "repro.service",
    "leftover_service_curve": "repro.service",
    "deterministic_leftover_service": "repro.service",
    "delay_bound": "repro.singlenode",
    "backlog_bound": "repro.singlenode",
    "deterministic_delay_bound": "repro.singlenode",
    "EndToEndAnalysis": "repro.network",
    "HomogeneousPath": "repro.network",
    "HeterogeneousPath": "repro.network",
    "e2e_delay_bound": "repro.network",
    "e2e_backlog_bound": "repro.network",
    "additive_pernode_delay_bound": "repro.network",
    "pay_bursts_only_once": "repro.network",
    "mgf_delay_bound": "repro.singlenode",
    "packetize_service": "repro.service",
    "TandemNetwork": "repro.simulation",
    "Topology": "repro.topology",
    "NodeSpec": "repro.topology",
    "Route": "repro.topology",
    "DagNetwork": "repro.simulation",
    "extract_route": "repro.topology",
    "route_delay_bound_mmoo": "repro.topology",
    "build_scenario": "repro.topology",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return __all__
