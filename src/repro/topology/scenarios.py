"""Scenario generators: canonical feed-forward topologies.

Each builder returns a validated :class:`Topology` whose link capacities
are sized from a *utilization* target: a node crossed by ``F`` flows of
nominal rate ``flow_rate`` gets ``capacity = F * flow_rate /
utilization`` (the paper's Section V accounting, generalized per node).
Trees and random DAGs therefore have genuinely heterogeneous capacities
— the Section IV non-homogeneous analysis applies — while the line and
parking lot stay homogeneous.

Builders:

* :func:`line` — the Fig. 1 tandem (homogeneous; delegates to
  :meth:`Topology.line`);
* :func:`sink_tree` — a ``branching``-ary tree of ``depth`` levels
  aggregating one route per leaf toward the sink;
* :func:`parking_lot` — a through route over ``hops`` nodes with
  multi-hop cross routes entering at every node and riding ``ride``
  hops;
* :func:`fat_tree_slice` — per-pod edge→aggregation→core paths sharing
  the core link;
* :func:`random_feedforward` — a seeded random DAG (edges only forward
  in node order, hence acyclic by construction) with per-link capacity
  degradation.

:data:`SCENARIOS`/:func:`build_scenario` expose them under the CLI's
``--topology`` names with one normalized ``size`` knob each.
"""

from __future__ import annotations

import numpy as np

from repro.topology.model import NodeSpec, Route, Topology
from repro.utils.validation import check_in_range, check_int, check_positive

#: Per-flow nominal rate of the paper's Section V accounting (Mbps).
DEFAULT_FLOW_RATE = 0.15

#: Default utilization target of the generated links.
DEFAULT_UTILIZATION = 0.7


def _capacity(
    n_flows: int, flow_rate: float, utilization: float
) -> float:
    """Link rate so ``n_flows`` nominal-rate flows load it to
    ``utilization`` (at least one flow's worth for idle links)."""
    return max(n_flows, 1) * flow_rate / utilization


def line(
    hops: int = 4,
    *,
    n_through: int = 40,
    n_cross: int = 40,
    utilization: float = DEFAULT_UTILIZATION,
    flow_rate: float = DEFAULT_FLOW_RATE,
    scheduler: str = "fifo",
) -> Topology:
    """The Fig. 1 tandem, capacity sized for ``utilization``."""
    capacity = _capacity(n_through + n_cross, flow_rate, utilization)
    return Topology.line(
        hops, capacity=capacity, n_through=n_through, n_cross=n_cross,
        scheduler=scheduler,
    )


def sink_tree(
    depth: int = 2,
    branching: int = 2,
    *,
    n_flows_per_leaf: int = 20,
    utilization: float = DEFAULT_UTILIZATION,
    flow_rate: float = DEFAULT_FLOW_RATE,
    scheduler: str = "fifo",
) -> Topology:
    """A complete ``branching``-ary sink tree of ``depth`` levels.

    One route per leaf runs to the sink, so a node ``k`` levels above
    the leaves carries ``branching**k`` leaf aggregates — capacities
    grow toward the sink and the routes are heterogeneous in both
    capacity and interference (the Section IV non-homogeneous setting).
    """
    depth = check_int(depth, "depth", minimum=1)
    branching = check_int(branching, "branching", minimum=1)
    check_int(n_flows_per_leaf, "n_flows_per_leaf", minimum=1)
    check_in_range(utilization, 0.0, 1.0, "utilization", low_open=True)
    check_positive(flow_rate, "flow_rate")
    nodes: list[NodeSpec] = []
    routes: list[Route] = []
    # level 0 = leaves, level `depth` = the sink
    for level in range(depth + 1):
        width = branching ** (depth - level)
        leaves_below = branching**level
        for i in range(width):
            nodes.append(
                NodeSpec(
                    name=f"l{level}n{i}",
                    capacity=_capacity(
                        leaves_below * n_flows_per_leaf, flow_rate,
                        utilization,
                    ),
                    scheduler=scheduler,
                )
            )
    for leaf in range(branching**depth):
        path = []
        index = leaf
        for level in range(depth + 1):
            path.append(f"l{level}n{index}")
            index //= branching
        routes.append(
            Route(name=f"leaf{leaf}", path=tuple(path),
                  n_flows=n_flows_per_leaf)
        )
    return Topology(nodes=tuple(nodes), routes=tuple(routes))


def parking_lot(
    hops: int = 4,
    ride: int = 2,
    *,
    n_through: int = 20,
    n_cross: int = 20,
    utilization: float = DEFAULT_UTILIZATION,
    flow_rate: float = DEFAULT_FLOW_RATE,
    scheduler: str = "fifo",
) -> Topology:
    """The parking-lot topology: multi-hop cross traffic on a line.

    A through route crosses all ``hops`` nodes; at every node a cross
    route of ``n_cross`` flows enters and rides ``min(ride, remaining)``
    hops before leaving.  Unlike Fig. 1's fresh-per-node cross traffic,
    the riders interfere at *several* consecutive nodes.  All capacities
    are sized for the maximum occupancy, so the through route stays
    homogeneous in capacity while its interference varies per hop.
    """
    hops = check_int(hops, "hops", minimum=1)
    ride = check_int(ride, "ride", minimum=1)
    check_int(n_through, "n_through", minimum=1)
    check_int(n_cross, "n_cross", minimum=0)
    names = tuple(f"n{h}" for h in range(hops))
    occupancy = [n_through] * hops
    routes = [Route(name="through", path=names, n_flows=n_through)]
    if n_cross > 0:
        for h in range(hops):
            span = names[h : min(h + ride, hops)]
            routes.append(
                Route(name=f"ride{h}", path=span, n_flows=n_cross)
            )
            for k in range(h, min(h + ride, hops)):
                occupancy[k] += n_cross
    capacity = _capacity(max(occupancy), flow_rate, utilization)
    nodes = tuple(
        NodeSpec(name=name, capacity=capacity, scheduler=scheduler)
        for name in names
    )
    return Topology(nodes=nodes, routes=tuple(routes))


def fat_tree_slice(
    pods: int = 2,
    *,
    n_flows_per_pod: int = 20,
    utilization: float = DEFAULT_UTILIZATION,
    flow_rate: float = DEFAULT_FLOW_RATE,
    scheduler: str = "fifo",
) -> Topology:
    """An upward slice of a fat tree: edge → aggregation → core.

    One route per pod climbs its edge and aggregation switch into the
    shared core link, where all pods converge — the core runs at
    ``pods`` times the pod capacity for the same utilization.
    """
    pods = check_int(pods, "pods", minimum=1)
    check_int(n_flows_per_pod, "n_flows_per_pod", minimum=1)
    pod_capacity = _capacity(n_flows_per_pod, flow_rate, utilization)
    core_capacity = _capacity(
        pods * n_flows_per_pod, flow_rate, utilization
    )
    nodes: list[NodeSpec] = []
    routes: list[Route] = []
    for pod in range(pods):
        nodes.append(
            NodeSpec(f"edge{pod}", pod_capacity, scheduler=scheduler)
        )
        nodes.append(
            NodeSpec(f"agg{pod}", pod_capacity, scheduler=scheduler)
        )
        routes.append(
            Route(
                name=f"pod{pod}",
                path=(f"edge{pod}", f"agg{pod}", "core"),
                n_flows=n_flows_per_pod,
            )
        )
    nodes.append(NodeSpec("core", core_capacity, scheduler=scheduler))
    return Topology(nodes=tuple(nodes), routes=tuple(routes))


def random_feedforward(
    n_nodes: int = 6,
    n_routes: int = 4,
    seed: int = 0,
    *,
    n_flows: int = 20,
    max_path: int = 4,
    degradation: float = 0.2,
    utilization: float = DEFAULT_UTILIZATION,
    flow_rate: float = DEFAULT_FLOW_RATE,
    scheduler: str = "fifo",
) -> Topology:
    """A seeded random feed-forward DAG with per-link degradation.

    Routes pick random increasing node sequences (edges only point
    forward in node order, so the union is acyclic by construction);
    every link's capacity is sized for its occupancy at ``utilization``
    and then degraded by an independent ``U(0, degradation)`` factor —
    the heterogeneous "weak link" setting.  The effective utilization
    stays below ``utilization / (1 - degradation)``, which the argument
    check keeps feasible.
    """
    n_nodes = check_int(n_nodes, "n_nodes", minimum=2)
    n_routes = check_int(n_routes, "n_routes", minimum=1)
    check_int(n_flows, "n_flows", minimum=1)
    max_path = check_int(max_path, "max_path", minimum=2)
    check_in_range(degradation, 0.0, 1.0, "degradation", high_open=True)
    check_in_range(utilization, 0.0, 1.0, "utilization", low_open=True)
    if utilization / (1.0 - degradation) >= 1.0:
        raise ValueError(
            f"utilization {utilization:g} with degradation {degradation:g} "
            f"can overload a degraded link (effective utilization "
            f"{utilization / (1.0 - degradation):g} >= 1)"
        )
    rng = np.random.default_rng(seed)
    occupancy = [0] * n_nodes
    routes: list[Route] = []
    for index in range(n_routes):
        length = int(rng.integers(2, min(max_path, n_nodes) + 1))
        path = sorted(rng.choice(n_nodes, size=length, replace=False))
        for node in path:
            occupancy[node] += n_flows
        routes.append(
            Route(
                name=f"r{index}",
                path=tuple(f"v{node}" for node in path),
                n_flows=n_flows,
            )
        )
    factors = 1.0 - rng.uniform(0.0, degradation, size=n_nodes)
    nodes = tuple(
        NodeSpec(
            name=f"v{i}",
            capacity=_capacity(occupancy[i], flow_rate, utilization)
            * float(factors[i]),
            scheduler=scheduler,
        )
        for i in range(n_nodes)
    )
    return Topology(nodes=nodes, routes=tuple(routes))


def build_scenario(
    name: str,
    size: int,
    *,
    seed: int = 0,
    utilization: float = DEFAULT_UTILIZATION,
    n_flows: int = 20,
    scheduler: str = "fifo",
) -> Topology:
    """Build a named scenario with one normalized ``size`` knob.

    ``size`` maps to the scenario's natural dimension: hops for
    ``line``/``parking-lot``, depth for ``sink-tree``, pods for
    ``fat-tree``, node count for ``random``.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; one of {sorted(SCENARIOS)}"
        )
    size = check_int(size, "size", minimum=1)
    if name == "line":
        return line(
            size, n_through=n_flows, n_cross=n_flows,
            utilization=utilization, scheduler=scheduler,
        )
    if name == "sink-tree":
        return sink_tree(
            depth=size, n_flows_per_leaf=n_flows,
            utilization=utilization, scheduler=scheduler,
        )
    if name == "parking-lot":
        return parking_lot(
            hops=size, n_through=n_flows, n_cross=n_flows,
            utilization=utilization, scheduler=scheduler,
        )
    if name == "fat-tree":
        return fat_tree_slice(
            pods=size, n_flows_per_pod=n_flows,
            utilization=utilization, scheduler=scheduler,
        )
    return random_feedforward(
        n_nodes=max(size, 2), seed=seed, n_flows=n_flows,
        utilization=utilization, scheduler=scheduler,
    )


#: CLI scenario names, dispatched through :func:`build_scenario`.
SCENARIOS = ("line", "sink-tree", "parking-lot", "fat-tree", "random")
