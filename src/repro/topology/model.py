"""Feed-forward network topologies: nodes, routes, and DAG validation.

The paper's Fig. 1 tandem is one point in a much larger space: a
feed-forward network is a DAG of store-and-forward nodes, each with its
own capacity and scheduler, traversed by *routes* — aggregates of flows
following a fixed node sequence.  This module is the validated data
model that the analysis (:mod:`repro.topology.routes`) and the
simulator (:mod:`repro.simulation.network`) both consume:

* :class:`NodeSpec` — one node: capacity, scheduler (and its analysis
  constant ``Delta_{0,c}``), and the node-local cross-traffic
  descriptor ``n_cross`` (fresh flows that join at this node and leave
  right after it, exactly the Fig. 1 convention);
* :class:`Route` — a named aggregate of ``n_flows`` flows traversing a
  node sequence (multi-hop cross traffic, e.g. the parking lot's
  riders, is just another route);
* :class:`Topology` — nodes plus routes, validated to be feed-forward:
  the union of all route edges must be acyclic, with a deterministic
  topological order.

Topologies are frozen, hashable, and round-trip losslessly through
:meth:`Topology.to_params` (plain nested tuples), so they can ride
inside experiment sweep cells; :meth:`Topology.content_hash` is the
canonical content key the cell cache inherits.  A tandem is the
degenerate case — :meth:`Topology.line` builds it, and
:meth:`Topology.as_tandem` recognizes it so fast paths (the vectorized
tandem engine, the homogeneous bound kernels) keep applying.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.utils.validation import check_int, check_positive

#: Simulator scheduler names a node may carry.
NODE_SCHEDULERS = ("fifo", "bmux", "sp", "edf", "gps")

#: Schedulers with a Delta-scheduler end-to-end analysis in this repo.
ANALYZABLE_SCHEDULERS = ("fifo", "bmux", "edf")


@dataclass(frozen=True)
class NodeSpec:
    """One node of a feed-forward topology.

    Attributes
    ----------
    name:
        Unique node identifier.
    capacity:
        Link rate per slot.
    scheduler:
        One of :data:`NODE_SCHEDULERS`.  ``sp`` and ``gps`` are
        simulation-only (no Delta-scheduler bound here).
    n_cross:
        Node-local cross traffic: this many fresh flows join at this
        node and leave right after it (the Fig. 1 convention).
        Multi-hop cross traffic is modelled as extra :class:`Route`\\ s.
    edf_deadline_through, edf_deadline_cross:
        Per-node EDF deadline offsets (route traffic vs. cross traffic);
        only used when ``scheduler == "edf"``.
    gps_weight_through, gps_weight_cross:
        GPS weights; only used when ``scheduler == "gps"``.
    """

    name: str
    capacity: float
    scheduler: str = "fifo"
    n_cross: int = 0
    edf_deadline_through: float = 1.0
    edf_deadline_cross: float = 10.0
    gps_weight_through: float = 1.0
    gps_weight_cross: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("node name must be a non-empty string")
        check_positive(self.capacity, "capacity")
        if self.scheduler not in NODE_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} for node "
                f"{self.name!r}; one of {NODE_SCHEDULERS}"
            )
        check_int(self.n_cross, "n_cross", minimum=0)
        for label in ("edf_deadline_through", "edf_deadline_cross"):
            value = getattr(self, label)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{label} must be finite >= 0, got {value!r}")
        for label in ("gps_weight_through", "gps_weight_cross"):
            check_positive(getattr(self, label), label)

    @property
    def delta(self) -> float:
        """The scheduler constant ``Delta_{0,c}`` the analysis uses.

        ``0`` for FIFO, ``+inf`` for blind multiplexing, and
        ``d*_0 - d*_c`` for EDF with this node's (fixed) deadlines.
        Raises :class:`ValueError` for ``sp``/``gps``, which have no
        end-to-end Delta-scheduler bound in this repo.
        """
        if self.scheduler == "fifo":
            return 0.0
        if self.scheduler == "bmux":
            return math.inf
        if self.scheduler == "edf":
            return self.edf_deadline_through - self.edf_deadline_cross
        raise ValueError(
            f"scheduler {self.scheduler!r} at node {self.name!r} has no "
            f"Delta-scheduler analysis (analyzable: {ANALYZABLE_SCHEDULERS})"
        )


@dataclass(frozen=True)
class Route:
    """A named aggregate of flows traversing a fixed node sequence."""

    name: str
    path: tuple[str, ...]
    n_flows: int = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("route name must be a non-empty string")
        object.__setattr__(self, "path", tuple(self.path))
        if not self.path:
            raise ValueError(f"route {self.name!r} needs at least one node")
        if len(set(self.path)) != len(self.path):
            raise ValueError(
                f"route {self.name!r} visits a node twice: {self.path}"
            )
        check_int(self.n_flows, "n_flows", minimum=1)

    @property
    def hops(self) -> int:
        return len(self.path)


@dataclass(frozen=True)
class TandemView:
    """The parameters of a topology that is exactly the Fig. 1 tandem."""

    route: Route
    hops: int
    capacity: float
    scheduler: str
    n_cross: tuple[int, ...]
    edf_deadline_through: float
    edf_deadline_cross: float


@dataclass(frozen=True)
class Topology:
    """A validated feed-forward network: nodes plus routes.

    Validation (at construction):

    * node and route names are unique, every route path references
      declared nodes and visits each at most once;
    * the union of all route edges is acyclic (feed-forward), so a
      global topological order exists.

    The instance is immutable; :meth:`topological_order` is computed
    once and cached.
    """

    nodes: tuple[NodeSpec, ...]
    routes: tuple[Route, ...]
    _order: tuple[str, ...] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "routes", tuple(self.routes))
        if not self.nodes:
            raise ValueError("a topology needs at least one node")
        if not self.routes:
            raise ValueError("a topology needs at least one route")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        route_names = [route.name for route in self.routes]
        if len(set(route_names)) != len(route_names):
            raise ValueError(f"duplicate route names: {route_names}")
        known = set(names)
        for route in self.routes:
            unknown = [n for n in route.path if n not in known]
            if unknown:
                raise ValueError(
                    f"route {route.name!r} references unknown node(s) "
                    f"{unknown}; declared nodes: {sorted(known)}"
                )
        object.__setattr__(self, "_order", self._topological_sort())

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> NodeSpec:
        """Look up a node spec by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def route(self, name: str) -> Route:
        """Look up a route by name."""
        for route in self.routes:
            if route.name == name:
                return route
        raise KeyError(f"no route named {name!r}")

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        """The directed links used by any route (sorted, deduplicated)."""
        pairs = {
            (a, b)
            for route in self.routes
            for a, b in zip(route.path, route.path[1:])
        }
        return tuple(sorted(pairs))

    def _topological_sort(self) -> tuple[str, ...]:
        """Deterministic topological order (Kahn; declaration-order ties).

        Raises :class:`ValueError` when the route edges form a cycle —
        the topology would not be feed-forward.
        """
        index = {node.name: i for i, node in enumerate(self.nodes)}
        successors: dict[str, set[str]] = {n.name: set() for n in self.nodes}
        indegree = {n.name: 0 for n in self.nodes}
        for a, b in self.edges:
            if b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1
        ready = [index[n] for n, d in indegree.items() if d == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            name = self.nodes[heapq.heappop(ready)].name
            order.append(name)
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, index[succ])
        if len(order) != len(self.nodes):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise ValueError(
                f"topology is not feed-forward: route edges form a cycle "
                f"through {cyclic}"
            )
        return tuple(order)

    def topological_order(self) -> tuple[str, ...]:
        """Node names in a deterministic topological order."""
        return self._order

    # ------------------------------------------------------------------ #
    # canonical content representation
    # ------------------------------------------------------------------ #

    def to_params(self) -> tuple:
        """Plain nested tuples describing this topology losslessly.

        JSON-able, hashable, and picklable, so a topology can be a
        sweep-cell parameter; :meth:`from_params` inverts it.
        """
        return (
            tuple(
                (
                    n.name, n.capacity, n.scheduler, n.n_cross,
                    n.edf_deadline_through, n.edf_deadline_cross,
                    n.gps_weight_through, n.gps_weight_cross,
                )
                for n in self.nodes
            ),
            tuple((r.name, tuple(r.path), r.n_flows) for r in self.routes),
        )

    @classmethod
    def from_params(cls, params: Sequence) -> "Topology":
        """Rebuild a topology from :meth:`to_params` output (tuples or
        the JSON-decoded list form)."""
        nodes_p, routes_p = params
        nodes = tuple(
            NodeSpec(
                name=str(n[0]), capacity=float(n[1]), scheduler=str(n[2]),
                n_cross=int(n[3]), edf_deadline_through=float(n[4]),
                edf_deadline_cross=float(n[5]), gps_weight_through=float(n[6]),
                gps_weight_cross=float(n[7]),
            )
            for n in nodes_p
        )
        routes = tuple(
            Route(name=str(r[0]), path=tuple(str(p) for p in r[1]),
                  n_flows=int(r[2]))
            for r in routes_p
        )
        return cls(nodes=nodes, routes=routes)

    def content_hash(self) -> str:
        """Canonical SHA-256 of the topology content.

        Stable across processes and sessions; any change to a node, a
        route, or their order changes the hash — this is the key the
        experiment cell cache sees.
        """
        payload = json.dumps(
            {"schema": "repro.topology/1", "params": self.to_params()},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------ #
    # the tandem special case
    # ------------------------------------------------------------------ #

    @classmethod
    def line(
        cls,
        hops: int,
        *,
        capacity: float,
        n_through: int,
        n_cross: int | Sequence[int] = 0,
        scheduler: str = "fifo",
        edf_deadline_through: float = 1.0,
        edf_deadline_cross: float = 10.0,
        route_name: str = "through",
        node_names: Iterable[str] | None = None,
    ) -> "Topology":
        """The Fig. 1 tandem as a topology: ``hops`` identical nodes in a
        line, one through route over all of them, fresh node-local cross
        traffic at every node."""
        hops = check_int(hops, "hops", minimum=1)
        if isinstance(n_cross, int):
            cross_counts = (n_cross,) * hops
        else:
            cross_counts = tuple(int(c) for c in n_cross)
            if len(cross_counts) != hops:
                raise ValueError(
                    f"n_cross needs one entry per hop: got "
                    f"{len(cross_counts)} for {hops} hops"
                )
        names = (
            tuple(node_names) if node_names is not None
            else tuple(str(h) for h in range(hops))
        )
        if len(names) != hops:
            raise ValueError(
                f"node_names needs {hops} entries, got {len(names)}"
            )
        nodes = tuple(
            NodeSpec(
                name=names[h], capacity=capacity, scheduler=scheduler,
                n_cross=cross_counts[h],
                edf_deadline_through=edf_deadline_through,
                edf_deadline_cross=edf_deadline_cross,
            )
            for h in range(hops)
        )
        route = Route(name=route_name, path=names, n_flows=n_through)
        return cls(nodes=nodes, routes=(route,))

    def as_tandem(self) -> TandemView | None:
        """This topology's Fig. 1 tandem parameters, or ``None``.

        A topology is a tandem when a single route traverses *all*
        nodes in declaration order, all cross traffic is node-local,
        and capacity/scheduler (and EDF deadlines) are uniform — the
        precondition for the homogeneous analysis and the vectorized
        tandem simulation fast path.
        """
        if len(self.routes) != 1:
            return None
        route = self.routes[0]
        if route.path != tuple(n.name for n in self.nodes):
            return None
        first = self.nodes[0]
        for node in self.nodes:
            if (
                node.capacity != first.capacity
                or node.scheduler != first.scheduler
                or node.edf_deadline_through != first.edf_deadline_through
                or node.edf_deadline_cross != first.edf_deadline_cross
            ):
                return None
        return TandemView(
            route=route,
            hops=len(self.nodes),
            capacity=first.capacity,
            scheduler=first.scheduler,
            n_cross=tuple(n.n_cross for n in self.nodes),
            edf_deadline_through=first.edf_deadline_through,
            edf_deadline_cross=first.edf_deadline_cross,
        )
