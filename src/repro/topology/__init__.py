"""Feed-forward topologies: the model, route analysis, and scenarios.

The :class:`Topology` data model (a validated feed-forward DAG of
:class:`NodeSpec` nodes traversed by :class:`Route` aggregates) is the
shared vocabulary of the analysis and simulation stacks: route
extraction reduces any route to the per-hop setting the Section IV
bounds consume, the simulators instantiate the same DAG as
store-and-forward links, and the scenario builders generate the
canonical shapes (sink tree, parking lot, fat-tree slice, random DAGs)
the experiment sweeps explore.  The paper's Fig. 1 tandem is the
degenerate line topology and reproduces the tandem code paths exactly.
"""

from repro.topology.model import (
    ANALYZABLE_SCHEDULERS,
    NODE_SCHEDULERS,
    NodeSpec,
    Route,
    TandemView,
    Topology,
)
from repro.topology.routes import (
    RouteHop,
    extract_route,
    route_backlog_bound_mmoo,
    route_delay_bound_mmoo,
    route_is_homogeneous,
)
from repro.topology.scenarios import (
    SCENARIOS,
    build_scenario,
    fat_tree_slice,
    parking_lot,
    random_feedforward,
    sink_tree,
)

__all__ = [
    "ANALYZABLE_SCHEDULERS",
    "NODE_SCHEDULERS",
    "NodeSpec",
    "Route",
    "TandemView",
    "Topology",
    "RouteHop",
    "extract_route",
    "route_is_homogeneous",
    "route_delay_bound_mmoo",
    "route_backlog_bound_mmoo",
    "SCENARIOS",
    "build_scenario",
    "sink_tree",
    "parking_lot",
    "fat_tree_slice",
    "random_feedforward",
]
