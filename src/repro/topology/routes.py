"""Route extraction: reduce a topology route to a per-hop analysis path.

The Section IV analysis bounds one through flow against the aggregate of
*everything else* it shares each node with.  For a route through a
feed-forward topology that aggregate is, per hop, the node-local cross
traffic (:attr:`NodeSpec.n_cross`) plus every *other* route crossing the
node — each an independent MMOO aggregate, so their flow counts add.
:func:`extract_route` performs exactly this reduction; the bound
functions then dispatch:

* a **homogeneous** route (uniform capacity, scheduler constant, and
  interfering flow count along the path) is the paper's Fig. 1 setting
  and goes straight to :func:`repro.network.e2e.e2e_delay_bound_mmoo` —
  bitwise-identical to calling the tandem analysis directly;
* a **heterogeneous** route runs the Section IV non-homogeneous
  extension: an effective-bandwidth ``s``-search over a
  :class:`repro.network.path.HeterogeneousPath` built from the per-hop
  EBB characterizations.

The reduction treats interfering routes as fresh at every shared node
(their EBB characterization is applied per hop, as the homogeneous
analysis does for its per-node cross aggregates); correlations that
shaping at upstream nodes would introduce are ignored, which keeps the
bound on the conservative side of the independent-aggregate model the
paper analyzes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.arrivals.mmoo import MMOOParameters
from repro.network.backlog import BacklogResult, e2e_backlog_bound_mmoo
from repro.network.e2e import (
    E2EResult,
    Method,
    _max_feasible_s,
    check_backend,
    e2e_delay_bound_mmoo,
    mmoo_ebb_pair,
)
from repro.network.path import HeterogeneousPath, HopSpec
from repro.topology.model import NodeSpec, Topology
from repro.utils.numeric import grid_then_golden
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class RouteHop:
    """One hop of an extracted route: the node and its interference.

    ``n_interfering`` counts the MMOO flows competing with the route at
    this node — the node-local cross flows plus the flows of every other
    route traversing the node.
    """

    node: NodeSpec
    n_interfering: int


def extract_route(topology: Topology, route_name: str) -> tuple[RouteHop, ...]:
    """The per-hop analysis view of one route.

    Returns one :class:`RouteHop` per node on the route's path, in path
    order, with the aggregated interfering flow count at each.
    """
    route = topology.route(route_name)
    hops = []
    for name in route.path:
        node = topology.node(name)
        interfering = node.n_cross + sum(
            other.n_flows
            for other in topology.routes
            if other.name != route.name and name in other.path
        )
        hops.append(RouteHop(node=node, n_interfering=interfering))
    return tuple(hops)


def route_is_homogeneous(hops: tuple[RouteHop, ...]) -> bool:
    """Is this extracted route the paper's homogeneous Fig. 1 setting?

    True when capacity, scheduler constant ``Delta``, and interfering
    flow count agree at every hop — the precondition for the (faster,
    closed-form-assisted) homogeneous analysis.
    """
    first = hops[0]
    delta0 = first.node.delta
    return all(
        hop.node.capacity == first.node.capacity
        and hop.node.delta == delta0
        and hop.n_interfering == first.n_interfering
        for hop in hops
    )


def _check_load(
    hops: tuple[RouteHop, ...], n_through: int, traffic: MMOOParameters
) -> bool:
    """Every hop must have mean-rate headroom, else the bound is infinite."""
    return all(
        (n_through + hop.n_interfering) * traffic.mean_rate < hop.node.capacity
        for hop in hops
    )


def route_delay_bound_mmoo(
    topology: Topology,
    route_name: str,
    traffic: MMOOParameters,
    epsilon: float,
    *,
    method: Method = "exact",
    s_grid: int = 24,
    gamma_grid: int = 24,
    backend: str = "numpy",
) -> E2EResult:
    """End-to-end delay bound of one route through a topology.

    Homogeneous routes reduce to the tandem analysis
    (:func:`e2e_delay_bound_mmoo`) with identical results; heterogeneous
    routes run the non-homogeneous ``s``-search over a
    :class:`HeterogeneousPath`.  Nodes whose scheduler has no Delta
    analysis (``sp``/``gps``) raise :class:`ValueError` via
    :attr:`NodeSpec.delta`.
    """
    check_backend(backend)
    check_probability(epsilon, "epsilon")
    route = topology.route(route_name)
    hops = extract_route(topology, route_name)
    with obs.trace(f"topology.route_bound.{route_name}"):
        if route_is_homogeneous(hops):
            return e2e_delay_bound_mmoo(
                traffic, route.n_flows, hops[0].n_interfering, len(hops),
                hops[0].node.capacity, hops[0].node.delta, epsilon,
                method=method, s_grid=s_grid, gamma_grid=gamma_grid,
                backend=backend,
            )
        return _heterogeneous_delay_bound(
            hops, route.n_flows, traffic, epsilon,
            method=method, s_grid=s_grid, gamma_grid=gamma_grid,
        )


def _heterogeneous_delay_bound(
    hops: tuple[RouteHop, ...],
    n_through: int,
    traffic: MMOOParameters,
    epsilon: float,
    *,
    method: Method,
    s_grid: int,
    gamma_grid: int,
) -> E2EResult:
    """The (s, gamma) search over a heterogeneous per-hop path."""
    deltas = [hop.node.delta for hop in hops]  # fail fast on sp/gps
    if not _check_load(hops, n_through, traffic):
        return E2EResult(math.inf, math.inf, 0.0, 0.0, 0.0, (), method)
    # the tightest hop caps the usable effective-bandwidth parameter
    s_max = min(
        _max_feasible_s(
            traffic, n_through + max(hop.n_interfering, 1), hop.node.capacity
        )
        for hop in hops
    )

    def path_at(s: float) -> tuple:
        through = traffic.ebb(n_through, s)
        cross = [
            mmoo_ebb_pair(traffic, n_through, hop.n_interfering, s)[1]
            for hop in hops
        ]
        path = HeterogeneousPath(
            nodes=tuple(
                HopSpec(capacity=hop.node.capacity, cross=x, delta=d)
                for hop, x, d in zip(hops, cross, deltas)
            )
        )
        return through, path

    def at_s(s: float) -> E2EResult:
        try:
            through, path = path_at(s)
        except ValueError:
            # an extreme grid point can push a hop's cross rate into its
            # capacity; treat it as infeasible rather than aborting the
            # search
            return E2EResult(math.inf, math.inf, 0.0, s, 0.0, (), method)
        return path.delay_bound(
            through, epsilon, method=method, gamma_grid=gamma_grid
        )

    s_best, _ = grid_then_golden(
        lambda s: at_s(s).delay,
        s_max * 1e-4, s_max * (1.0 - 1e-9),
        grid_points=s_grid, log_spaced=True,
    )
    return at_s(s_best)


def route_backlog_bound_mmoo(
    topology: Topology,
    route_name: str,
    traffic: MMOOParameters,
    epsilon: float,
    *,
    s_grid: int = 16,
    gamma_grid: int = 16,
    backend: str = "numpy",
) -> BacklogResult:
    """End-to-end backlog bound of one route (homogeneous routes only).

    The network-service-curve backlog construction
    (:mod:`repro.network.backlog`) is implemented for the homogeneous
    setting; heterogeneous routes raise a clear :class:`ValueError`
    rather than returning an unsound number.
    """
    check_backend(backend)
    check_probability(epsilon, "epsilon")
    route = topology.route(route_name)
    hops = extract_route(topology, route_name)
    if not route_is_homogeneous(hops):
        raise ValueError(
            f"route {route_name!r} is heterogeneous (per-hop capacity, "
            f"Delta, or interference varies); the backlog bound is only "
            f"implemented for homogeneous routes"
        )
    with obs.trace(f"topology.route_backlog.{route_name}"):
        return e2e_backlog_bound_mmoo(
            traffic, route.n_flows, hops[0].n_interfering, len(hops),
            hops[0].node.capacity, hops[0].node.delta, epsilon,
            s_grid=s_grid, gamma_grid=gamma_grid, backend=backend,
        )
