"""Probabilistic backlog bounds at a single node.

The backlog analogue of Eq. (20): ``b(sigma)`` is the smallest value with
``G(t) + sigma <= S(t) + b(sigma)`` for all ``t``, i.e. the vertical
deviation of ``G + sigma`` against ``S``; the bounding function combines as
in Eq. (21).  Then ``P(B(t) > b(sigma)) < eps(sigma)``.
"""

from __future__ import annotations

import math

from repro.algebra.minplus import vertical_deviation
from repro.arrivals.statistical import StatisticalEnvelope, combine_bounds
from repro.service.curves import StatisticalServiceCurve
from repro.utils.validation import check_non_negative, check_probability


def _vertical_deviation_factored(
    envelope: StatisticalEnvelope, service: StatisticalServiceCurve, sigma: float
) -> float:
    """``sup_t [G(t) + sigma - S(t)]`` for a factored service curve.

    With ``S(t) = base(t - shift) I(t > shift)``, the supremum splits into
    the dead-time part (``t <= shift``, where ``S = 0``) and the tail,
    which is the vertical deviation of the left-shifted envelope against
    the base.
    """
    shifted = envelope.curve.add_constant(sigma)
    head = shifted(service.shift)  # sup over [0, shift]: envelope nondecreasing
    tail = vertical_deviation(shifted.shift_left(service.shift), service.base)
    if math.isinf(tail):
        return math.inf
    return max(head, tail, 0.0)


def backlog_bound_at_sigma(
    envelope: StatisticalEnvelope,
    service: StatisticalServiceCurve,
    sigma: float,
) -> tuple[float, float]:
    """``(b(sigma), eps(sigma))``: backlog analogue of Eqs. (20)-(22)."""
    check_non_negative(sigma, "sigma")
    b = _vertical_deviation_factored(envelope, service, sigma)
    combined = combine_bounds([envelope.exponential_bound(), service.bound])
    return b, combined.probability(sigma)


def backlog_bound(
    envelope: StatisticalEnvelope,
    service: StatisticalServiceCurve,
    epsilon: float,
) -> float:
    """Smallest backlog ``b`` with ``P(B(t) > b) < epsilon`` for all ``t``."""
    check_probability(epsilon, "epsilon")
    combined = combine_bounds([envelope.exponential_bound(), service.bound])
    if epsilon == 0.0:
        if not combined.is_deterministic():
            raise ValueError(
                "epsilon = 0 requires deterministic envelope and service"
            )
        sigma = 0.0
    else:
        sigma = combined.inverse(epsilon)
    return _vertical_deviation_factored(envelope, service, sigma)


def deterministic_backlog_bound(
    envelope: StatisticalEnvelope, service: StatisticalServiceCurve
) -> float:
    """Worst-case backlog bound (vertical deviation); requires both sides
    deterministic."""
    if not envelope.exponential_bound().is_deterministic():
        raise ValueError("envelope is not deterministic")
    if not service.is_deterministic():
        raise ValueError("service curve is not deterministic")
    return _vertical_deviation_factored(envelope, service, 0.0)
