"""Single-node probabilistic performance bounds (paper Sec. III-B).

Given a statistical sample-path envelope ``(G_j, eps_g)`` of a flow and a
statistical service curve ``(S_j, eps_s)`` of a node, the paper (following
[6]) derives the probabilistic delay bound

    ``P( W_j(t) > d(sigma) ) < eps(sigma)``                    (Eq. (22))

where ``d(sigma)`` is the smallest value with
``G_j(t) + sigma <= S_j(t + d(sigma))`` for all ``t`` (Eq. (20)) and
``eps = inf_{sigma1+sigma2=sigma} (eps_g(sigma1) + eps_s(sigma2))``
(Eq. (21)).  Analogous constructions give backlog bounds and output
envelopes.
"""

from repro.singlenode.delay import (
    delay_bound,
    delay_bound_at_sigma,
    deterministic_delay_bound,
    violation_probability,
)
from repro.singlenode.backlog import backlog_bound, deterministic_backlog_bound
from repro.singlenode.mgf import mgf_delay_bound, mgf_violation_probability
from repro.singlenode.output import output_envelope

__all__ = [
    "delay_bound",
    "delay_bound_at_sigma",
    "violation_probability",
    "deterministic_delay_bound",
    "backlog_bound",
    "deterministic_backlog_bound",
    "output_envelope",
    "mgf_delay_bound",
    "mgf_violation_probability",
]
