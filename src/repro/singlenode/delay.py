"""Probabilistic delay bounds at a single node (paper Eqs. (20)-(22)).

The central entry point is :func:`delay_bound`: given a flow's statistical
envelope, a node's statistical service curve, and a target violation
probability ``epsilon``, it returns the smallest certified delay ``d`` with
``P(W(t) > d) < epsilon`` for all ``t``.

The machinery: the combined bounding function
``eps(sigma) = inf_{s1+s2=sigma} (eps_g(s1) + eps_s(s2))`` (Eq. (21)) is
again exponential (Eq. (33)); inverting it at the target ``epsilon`` gives
the required slack ``sigma``, and ``d(sigma)`` follows from the horizontal
deviation of ``G + sigma`` against ``S`` (Eq. (20)).
"""

from __future__ import annotations

import math

from repro.arrivals.statistical import StatisticalEnvelope, combine_bounds
from repro.service.curves import StatisticalServiceCurve
from repro.utils.numeric import bisect_increasing
from repro.utils.validation import check_non_negative, check_probability


def delay_bound_at_sigma(
    envelope: StatisticalEnvelope,
    service: StatisticalServiceCurve,
    sigma: float,
) -> tuple[float, float]:
    """``(d(sigma), eps(sigma))`` per Eqs. (20)-(22).

    ``d(sigma)`` is the smallest delay with
    ``G(t) + sigma <= S(t + d)`` for all ``t >= 0``; ``eps(sigma)`` is the
    optimally-combined violation probability (clipped to [0, 1]).
    """
    check_non_negative(sigma, "sigma")
    d = service.delay_bound(envelope, sigma)
    combined = combine_bounds([envelope.exponential_bound(), service.bound])
    return d, combined.probability(sigma)


def delay_bound(
    envelope: StatisticalEnvelope,
    service: StatisticalServiceCurve,
    epsilon: float,
) -> float:
    """Smallest delay ``d`` with ``P(W(t) > d) < epsilon`` for all ``t``.

    For ``epsilon = 0`` both the envelope and the service curve must be
    deterministic, and the result is the worst-case bound.

    Returns ``math.inf`` when the system is unstable (envelope rate not
    below the long-term service rate).
    """
    check_probability(epsilon, "epsilon")
    combined = combine_bounds([envelope.exponential_bound(), service.bound])
    if epsilon == 0.0:
        if not combined.is_deterministic():
            raise ValueError(
                "epsilon = 0 requires deterministic envelope and service"
            )
        sigma = 0.0
    else:
        sigma = combined.inverse(epsilon)
    return service.delay_bound(envelope, sigma)


def violation_probability(
    envelope: StatisticalEnvelope,
    service: StatisticalServiceCurve,
    delay: float,
) -> float:
    """Tightest certified bound on ``P(W(t) > delay)``.

    Inverts :func:`delay_bound`: finds the largest slack ``sigma`` whose
    delay bound still fits within ``delay`` and evaluates the combined
    bounding function there.  Returns 1.0 when even ``sigma = 0`` needs
    more than ``delay``.
    """
    check_non_negative(delay, "delay")
    combined = combine_bounds([envelope.exponential_bound(), service.bound])
    if service.delay_bound(envelope, 0.0) > delay:
        return 1.0
    if combined.is_deterministic():
        return 0.0

    # d(sigma) is nondecreasing in sigma; find the largest feasible sigma.
    # bracket: grow until infeasible
    hi = 1.0
    while service.delay_bound(envelope, hi) <= delay and hi < 1e12:
        hi *= 2.0
    if hi >= 1e12:
        return 0.0  # delay is met for practically any slack

    def needs_more_than_delay(sigma: float) -> float:
        return 1.0 if service.delay_bound(envelope, sigma) > delay else 0.0

    sigma_star = bisect_increasing(needs_more_than_delay, 0.5, 0.0, hi)
    # sigma_star is the smallest infeasible sigma; step just inside
    return combined.probability(max(0.0, sigma_star * (1.0 - 1e-9)))


def deterministic_delay_bound(
    envelope: StatisticalEnvelope, service: StatisticalServiceCurve
) -> float:
    """Worst-case delay bound (the classical horizontal deviation).

    Valid as a *worst-case* statement only when both the envelope and the
    service curve are deterministic; raises otherwise.
    """
    if not envelope.exponential_bound().is_deterministic():
        raise ValueError("envelope is not deterministic")
    if not service.is_deterministic():
        raise ValueError("service curve is not deterministic")
    d = service.delay_bound(envelope, 0.0)
    return d if math.isfinite(d) else math.inf
