"""Statistical output envelopes (min-plus deconvolution at a node).

If the input of a node has statistical sample-path envelope ``(G, eps_g)``
and the node offers a statistical service curve ``(S, eps_s)``, then the
departures have statistical envelope

    ``G_out = G (/) S``  (deconvolution),
    ``eps_out(sigma) = inf_{s1+s2=sigma} (eps_g(s1) + eps_s(s2))``

— the stochastic analogue of the classical output-burstiness theorem.
This powers the node-by-node additive baseline of Example 3
(:mod:`repro.network.pernode`).
"""

from __future__ import annotations

from repro.algebra.minplus import deconvolve_numeric
from repro.algebra.operations import pointwise_max
from repro.arrivals.statistical import StatisticalEnvelope, combine_bounds
from repro.service.curves import StatisticalServiceCurve


def output_envelope(
    envelope: StatisticalEnvelope, service: StatisticalServiceCurve
) -> StatisticalEnvelope:
    """Envelope of the departures of ``envelope`` through ``service``.

    For the factored service curve ``S(t) = base(t - shift) I(t > shift)``
    the deconvolution evaluates to::

        (G / S)(t) = max( G(t + shift),
                          sup_{w>=0} [ G(t + shift + w) - base(w) ] )

    (the first term is the supremum over the dead time ``u <= shift``; the
    second is the deconvolution against the base).  Raises
    :class:`ValueError` when the envelope rate is not below the long-term
    service rate (the output burstiness diverges).
    """
    shifted = envelope.curve.shift_left(service.shift)
    tail = deconvolve_numeric(shifted, service.base)
    curve = pointwise_max(shifted, tail)
    bound = combine_bounds([envelope.exponential_bound(), service.bound])
    return StatisticalEnvelope(curve, bound)
