"""Single-node delay bounds from moment generating functions.

The paper's analysis "does not assume independence of cross traffic and
through traffic": its Theorem 1 splits the violation budget between flows
with a union bound (Eq. (33)).  When the through and cross aggregates
*are* independent — true for the paper's own numerical examples — the
classical effective-bandwidth/MGF analysis (Chang 2000; the paper's
reference [3] follows the same pattern) multiplies the moment generating
functions instead, which is strictly tighter.  This module implements
that refinement at a single node, as a calibrated comparison point for
the library's EBB-based bounds.

Derivation (discrete time, capacity ``C``, Delta-scheduler constant
``Delta`` for the through flow):  ``W(t) > d`` requires some backlogged
period of length ``k >= 0`` with

    ``A_j(t-k, t) + A_c(t-k, t + Delta(d)) > C (k + d)``,

where ``Delta(d) = min(Delta, d)`` caps the cross-traffic window (the
same argument as the paper's Sec. III-B, specialized to one node).  The
union bound over ``k`` and a Chernoff bound on each term — using
independence to write ``E[e^{s(A_j + A_c)}] = E[e^{s A_j}] E[e^{s A_c}]``
and the effective-bandwidth envelopes ``E[e^{s A(u)}] <= e^{s u rho(s)}``
— give

    ``P(W > d) <= inf_{s > 0}  sum_{k >= 0}
        e^{s [ k rho_j(s) + w_k rho_c(s) - C (k + d) ]}``,

with the clipped cross window ``w_k = max(0, k + min(Delta, d))``.  The
sum is geometric once ``w_k = k + Delta(d)``; the finitely many clipped
terms are added explicitly.  Stability requires
``rho_j(s) + rho_c(s) < C``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.utils.numeric import bisect_increasing, grid_then_golden, safe_exp
from repro.utils.validation import check_non_negative, check_positive

RateFunction = Callable[[float], float]


def _tail_probability(
    s: float,
    d: float,
    delta: float,
    capacity: float,
    rho_through: RateFunction,
    rho_cross: RateFunction,
) -> float:
    """The Chernoff/union-bound sum at a fixed ``s`` (may exceed 1)."""
    rj = rho_through(s)
    rc = rho_cross(s)
    drift = s * (rj + rc - capacity)
    if drift >= 0:
        return math.inf  # unstable at this s
    capped = min(delta, d)
    window_offset = capped  # w_k = max(0, k + capped)
    total = 0.0
    if window_offset < 0:
        # k < -capped: the cross window is empty (w_k = 0)
        k_clip = int(math.floor(-window_offset))
        for k in range(0, k_clip + 1):
            if k + window_offset < 0:
                exponent = s * (k * rj - capacity * (k + d))
                total += safe_exp(exponent)
        k_start = k_clip + 1
    else:
        k_start = 0
    # geometric part: k >= k_start with w_k = k + capped
    lead = s * (
        k_start * rj + (k_start + window_offset) * rc - capacity * (k_start + d)
    )
    total += safe_exp(lead) / (1.0 - safe_exp(drift))
    return total


def mgf_violation_probability(
    delay: float,
    delta: float,
    capacity: float,
    rho_through: RateFunction,
    rho_cross: RateFunction,
    *,
    s_bounds: tuple[float, float] = (1e-4, 50.0),
    s_grid: int = 48,
) -> float:
    """Tightest MGF bound on ``P(W > delay)`` at a single node.

    Parameters
    ----------
    delay:
        The delay threshold ``d`` (slots).
    delta:
        The scheduler constant ``Delta_{j,c}`` (``0`` FIFO, ``+inf``
        BMUX, ``d*_j - d*_c`` EDF; ``-inf`` = no interfering cross
        traffic).
    capacity:
        Link rate per slot.
    rho_through, rho_cross:
        Effective-bandwidth envelopes of the two *independent*
        aggregates: ``rho(s)`` must satisfy
        ``E[e^{s A(u)}] <= e^{s u rho(s)}`` for all interval lengths
        ``u`` (e.g. ``lambda s: n * traffic.effective_bandwidth(s)``).
    s_bounds, s_grid:
        Search range and grid for the Chernoff parameter.

    Returns a probability in [0, 1] (1.0 when no feasible ``s`` exists).
    """
    check_non_negative(delay, "delay")
    check_positive(capacity, "capacity")
    if delta == -math.inf:
        rho_cross = lambda s: 0.0  # noqa: E731 - cross traffic excluded
        delta = 0.0

    def objective(s: float) -> float:
        return _tail_probability(
            s, delay, delta, capacity, rho_through, rho_cross
        )

    _, best = grid_then_golden(
        objective, s_bounds[0], s_bounds[1], grid_points=s_grid,
        log_spaced=True,
    )
    return min(1.0, best)


def mgf_delay_bound(
    epsilon: float,
    delta: float,
    capacity: float,
    rho_through: RateFunction,
    rho_cross: RateFunction,
    *,
    d_max: float = 1e6,
    s_bounds: tuple[float, float] = (1e-4, 50.0),
    s_grid: int = 48,
) -> float:
    """Smallest ``d`` with the MGF bound on ``P(W > d)`` at most ``epsilon``.

    Monotone bisection on :func:`mgf_violation_probability`.  Returns
    ``math.inf`` when the node is unstable for every Chernoff parameter.
    """
    check_positive(epsilon, "epsilon")

    def exceeds(d: float) -> float:
        p = mgf_violation_probability(
            d, delta, capacity, rho_through, rho_cross,
            s_bounds=s_bounds, s_grid=s_grid,
        )
        return 1.0 if p <= epsilon else 0.0

    if exceeds(d_max) < 0.5:
        return math.inf
    if exceeds(0.0) > 0.5:
        return 0.0
    return bisect_increasing(exceeds, 0.5, 0.0, d_max, tol=1e-9)
