"""Structured observability for the bound and simulation pipelines.

This package is the feedback loop for the ROADMAP's performance goal:
hierarchical span timers, monotonic counters, gauges, and bounded
series, recorded into an in-process :class:`MetricsRegistry` and
serialized to JSON (``--trace`` on the experiments CLI embeds the tree
in every artifact).  It is stdlib-only by design — importing it pulls
in nothing beyond ``threading``/``time``/``json``.

Instrumented modules call the **module-level** functions against the
currently active registry::

    from repro import obs

    with obs.trace("e2e.edf_fixed_point"):
        ...
        obs.add("e2e.edf_iterations")
        obs.observe("e2e.edf_residual", residual)

Tracing is **off by default**: every call is then a cheap early-out
(``trace`` returns a shared no-op span) so hot paths pay effectively
nothing — asserted by ``benchmarks/test_bench_obs.py``.  Call sites
deliberately use ``obs.<fn>(...)`` attribute access rather than
``from repro.obs import trace`` so the overhead benchmark (and tests)
can intercept the module functions.

Worker processes record into their own scoped registry and ship a
picklable :func:`snapshot` back; the parent folds it in with
:func:`merge`.  ``scoped()`` swaps the active registry for the dynamic
extent of a ``with`` block and restores the previous one on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.obs.registry import (
    NOOP_SPAN,
    SERIES_CAP,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    Span,
)

__all__ = [
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "SERIES_CAP",
    "NOOP_SPAN",
    "Span",
    "active",
    "enabled",
    "enable",
    "disable",
    "trace",
    "add",
    "set_gauge",
    "observe",
    "snapshot",
    "merge",
    "reset",
    "counter",
    "gauge",
    "series",
    "scoped",
]

_active = MetricsRegistry(enabled=False)


def active() -> MetricsRegistry:
    """The registry all module-level calls currently record into."""
    return _active


def enabled() -> bool:
    return _active.enabled()


def enable(on: bool = True) -> None:
    _active.enable(on)


def disable() -> None:
    _active.disable()


def trace(name: str) -> Span:
    return _active.trace(name)


def add(name: str, value: float = 1.0) -> None:
    _active.add(name, value)


def set_gauge(name: str, value: Any) -> None:
    _active.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    _active.observe(name, value)


def snapshot() -> dict[str, Any]:
    return _active.snapshot()


def merge(snap: Mapping[str, Any]) -> None:
    _active.merge(snap)


def reset() -> None:
    _active.reset()


def counter(name: str) -> float:
    return _active.counter(name)


def gauge(name: str) -> Any:
    return _active.gauge(name)


def series(name: str) -> list[float]:
    return _active.series(name)


@contextmanager
def scoped(enabled: bool = True) -> Iterator[MetricsRegistry]:
    """Swap in a fresh active registry for the duration of the block.

    Used by sweep workers so that each cell records into its own
    registry (later merged into the parent's) without clobbering —
    or double-counting into — whatever registry the enclosing process
    had active.
    """
    global _active
    previous = _active
    _active = MetricsRegistry(enabled=enabled)
    try:
        yield _active
    finally:
        _active = previous
