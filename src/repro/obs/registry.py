"""The metrics registry: hierarchical spans, counters, gauges, series.

A :class:`MetricsRegistry` is an in-process, thread-safe store for the
four instrument kinds of the observability layer:

* **spans** — nested wall-clock timers opened by :meth:`trace`.  Spans
  form a tree: a span entered while another is open on the same thread
  becomes its child, and repeated spans under the same parent aggregate
  into one node (count / total / min / max seconds).
* **counters** — monotonically increasing floats (:meth:`add`), e.g.
  optimizer iterations, cache hits, saturated kernel lanes.
* **gauges** — last-value-wins scalars (:meth:`set_gauge`), e.g. the
  shape of the most recent kernel batch.
* **series** — bounded append-only value lists (:meth:`observe`), e.g.
  the residual trajectory of the EDF fixed point or per-cell runtimes.

Everything serializes to a plain-dict :meth:`snapshot` (JSON- and
pickle-safe), and snapshots :meth:`merge` back into any registry —
that is how per-cell metrics recorded inside ``multiprocessing``
workers are aggregated into the parent process after the pool joins.

The registry is **disabled by default** and every mutating method
returns immediately when disabled; :meth:`trace` then hands out a
shared no-op context manager, so instrumented hot paths cost one
attribute lookup and one predictable branch (asserted to be <2% of a
representative grid's runtime by ``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any, Iterator, Mapping

#: Schema tag of serialized snapshots.
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Hard cap on the length of one series (old values are kept, new ones
#: dropped) so a runaway loop cannot grow a snapshot without bound.
SERIES_CAP = 4096


def _new_span_node() -> dict[str, Any]:
    return {
        "count": 0,
        "total_s": 0.0,
        "min_s": math.inf,
        "max_s": 0.0,
        "children": {},
    }


class _NoopSpan:
    """Shared do-nothing context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: times itself and records into the registry on exit."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._registry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        self._registry._pop(elapsed)
        return False


#: What :meth:`MetricsRegistry.trace` hands out: a live span while
#: enabled, the shared no-op otherwise.  Both close via ``with``.
Span = _Span | _NoopSpan


class MetricsRegistry:
    """Thread-safe in-process metrics store (see module docstring)."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: dict[str, dict[str, Any]] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._series: dict[str, list[float]] = {}

    # ------------------------------------------------------------------ #
    # switching
    # ------------------------------------------------------------------ #

    def enabled(self) -> bool:
        return self._enabled

    def enable(self, on: bool = True) -> None:
        self._enabled = bool(on)

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, elapsed: float) -> None:
        stack = self._stack()
        path = tuple(stack)
        stack.pop()
        with self._lock:
            children = self._spans
            node: dict[str, Any] | None = None
            for name in path:
                node = children.get(name)
                if node is None:
                    node = children[name] = _new_span_node()
                children = node["children"]
            assert node is not None
            node["count"] += 1
            node["total_s"] += elapsed
            node["min_s"] = min(node["min_s"], elapsed)
            node["max_s"] = max(node["max_s"], elapsed)

    def trace(self, name: str) -> "_Span | _NoopSpan":
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self._enabled:
            return NOOP_SPAN
        return _Span(self, name)

    # ------------------------------------------------------------------ #
    # counters / gauges / series
    # ------------------------------------------------------------------ #

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value`` (no-op while disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: Any) -> None:
        """Set gauge ``name`` (last write wins; no-op while disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name`` (capped at ``SERIES_CAP``)."""
        if not self._enabled:
            return
        with self._lock:
            series = self._series.setdefault(name, [])
            if len(series) < SERIES_CAP:
                series.append(float(value))

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    @staticmethod
    def _copy_span(node: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "count": node["count"],
            "total_s": node["total_s"],
            "min_s": node["min_s"] if node["count"] else 0.0,
            "max_s": node["max_s"],
            "children": {
                name: MetricsRegistry._copy_span(child)
                for name, child in node["children"].items()
            },
        }

    def snapshot(self) -> dict[str, Any]:
        """A deep, JSON- and pickle-serializable copy of all metrics."""
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "spans": {
                    name: self._copy_span(node)
                    for name, node in self._spans.items()
                },
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "series": {k: list(v) for k, v in self._series.items()},
            }

    def to_json(self, **kwargs: Any) -> str:
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), sort_keys=True, **kwargs)

    @staticmethod
    def _merge_span(target: dict[str, Any], source: Mapping[str, Any]) -> None:
        target["count"] += source["count"]
        target["total_s"] += source["total_s"]
        if source["count"]:
            target["min_s"] = min(target["min_s"], source["min_s"])
            target["max_s"] = max(target["max_s"], source["max_s"])
        for name, child in source.get("children", {}).items():
            node = target["children"].get(name)
            if node is None:
                node = target["children"][name] = _new_span_node()
            MetricsRegistry._merge_span(node, child)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value, series extend (up
        to the cap), and span trees merge node by node.  Merging ignores
        the enabled flag: aggregation of already-collected worker
        snapshots must work even if live collection has been switched
        off in the meantime.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, values in snapshot.get("series", {}).items():
                series = self._series.setdefault(name, [])
                room = SERIES_CAP - len(series)
                if room > 0:
                    series.extend(float(v) for v in values[:room])
            for name, node in snapshot.get("spans", {}).items():
                target = self._spans.get(name)
                if target is None:
                    target = self._spans[name] = _new_span_node()
                self._merge_span(target, node)

    def reset(self) -> None:
        """Drop every recorded metric (the enabled flag is untouched)."""
        with self._lock:
            self._spans = {}
            self._counters = {}
            self._gauges = {}
            self._series = {}

    # ------------------------------------------------------------------ #
    # introspection helpers (used by tests and the CLI summary line)
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Any:
        with self._lock:
            return self._gauges.get(name)

    def series(self, name: str) -> list[float]:
        with self._lock:
            return list(self._series.get(name, ()))

    def span_names(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._spans))

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return (
            f"MetricsRegistry({state}: {len(self._spans)} span roots, "
            f"{len(self._counters)} counters)"
        )
