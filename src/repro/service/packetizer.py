"""Packetized service: relaxing the fluid assumption (paper Sec. III).

The paper analyzes a fluid model — "we ignore that packet transmissions
cannot be interrupted ... The assumption can be relaxed at the cost of
additional notation."  This module supplies that notation, following the
classical packetization results of the network calculus:

* a **non-preemptive** scheduler can make a higher-precedence arrival
  wait for one maximal packet already in transmission: the leftover
  service curve weakens to ``[S(t) - l_max]_+``;
* an **L-packetizer** at the output (departures released only when the
  last bit of a packet has left) delays each bit by at most
  ``l_max / C`` and does not increase end-to-end delay bounds beyond
  that term.

Both effects are one-packet corrections: with the paper's parameters
(1.5 kbit packets on 100 Mbps links) they amount to 15 microseconds per
hop and justify the fluid analysis.  The corrections compose along a
path: ``H`` non-preemptive hops cost at most ``H`` maximal packets.
"""

from __future__ import annotations

from repro.service.curves import StatisticalServiceCurve
from repro.utils.validation import check_non_negative, check_positive


def packetize_service(
    curve: StatisticalServiceCurve, max_packet: float
) -> StatisticalServiceCurve:
    """The non-preemptive weakening ``[S(t) - l_max]_+`` in factored form.

    The subtraction happens on the base (the shift — pure dead time — is
    unaffected); the result is clipped at zero and hulled if needed, both
    sound (smaller curve).  The bounding function is unchanged: the
    one-packet correction is deterministic.
    """
    check_non_negative(max_packet, "max_packet")
    if max_packet == 0.0:
        return curve
    base = curve.base.translate(-max_packet).clip_nonnegative()
    if not base.is_nondecreasing():  # pragma: no cover - translate keeps shape
        base = base.nondecreasing_hull()
    return StatisticalServiceCurve(base, curve.shift, curve.bound)


def packetization_delay(max_packet: float, rate: float) -> float:
    """Worst-case extra delay of an L-packetizer: ``l_max / C``."""
    check_non_negative(max_packet, "max_packet")
    check_positive(rate, "rate")
    return max_packet / rate


def packetized_delay_penalty(
    hops: int, max_packet: float, capacity: float, leftover_rate: float
) -> float:
    """Upper bound on the total delay cost of dropping the fluid assumption
    over ``hops`` non-preemptive nodes.

    Per hop: one maximal packet of blocking served at the *leftover* rate
    (the service-curve weakening) plus the output packetizer's
    ``l_max / C``.  The sum is a conservative, simple-to-state correction
    added on top of a fluid end-to-end bound.
    """
    check_positive(capacity, "capacity")
    check_positive(leftover_rate, "leftover_rate")
    if hops < 1:
        raise ValueError("hops must be >= 1")
    per_hop = max_packet / leftover_rate + max_packet / capacity
    return hops * per_hop
