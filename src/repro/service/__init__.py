"""Service curves, deterministic and statistical (paper Sec. II-B, III-A).

The central object is :class:`StatisticalServiceCurve`: a guarantee

    ``P( D(t) < A * [S - sigma]_+ (t) ) < eps(sigma)``        (paper Eq. (5))

represented as ``S = base * delta_shift`` — a finite piecewise-linear
``base`` min-plus convolved with a pure delay ``shift``.  This factored
form represents exactly the curves of the paper's Theorem 1, which jump at
``t = theta`` (the indicator ``I(t > theta)``), and makes multi-node
convolution exact: shifts add, bases convolve.

:func:`leftover_service_curve` implements Theorem 1 — the statistical
leftover service curve of a flow at a Delta-scheduler — and
:func:`deterministic_leftover_service` its deterministic counterpart
(Eq. (19)).
"""

from repro.service.curves import (
    StatisticalServiceCurve,
    constant_rate_service,
    delay_service,
    rate_latency_service,
)
from repro.service.leftover import (
    deterministic_leftover_service,
    leftover_service_curve,
)
from repro.service.packetizer import (
    packetization_delay,
    packetize_service,
    packetized_delay_penalty,
)

__all__ = [
    "StatisticalServiceCurve",
    "constant_rate_service",
    "rate_latency_service",
    "delay_service",
    "leftover_service_curve",
    "deterministic_leftover_service",
    "packetize_service",
    "packetization_delay",
    "packetized_delay_penalty",
]
