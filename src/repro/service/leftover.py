"""Theorem 1: statistical leftover service curves for Delta-schedulers.

For a flow ``j`` at a link of capacity ``C`` shared under a Delta-scheduler
with cross flows carrying statistical sample-path envelopes
``(G_k, eps_k)``, the paper's Theorem 1 states that for every ``theta >= 0``

    ``S_j(t; theta) = [ C t - sum_{k in N_-j} G_k( t - theta
                         + Delta_{j,k}(theta) ) ]_+  I(t > theta)``

is a statistical service curve with bounding function
``eps_s(sigma) = inf_{sum sigma_k = sigma} sum_k eps_k(sigma_k)`` —
computed here in closed form for exponential bounds (Eq. (33)).

The curve is returned in the factored representation
``S = base * delta_theta`` (see :mod:`repro.service.curves`), with

    ``base(u) = [ C (u + theta) - sum_k G_k( u + Delta_{j,k}(theta) ) ]_+``

so that the jump of ``S`` at ``theta`` is preserved exactly and multi-node
convolution (Section IV) stays exact.

Handling of the shifted cross envelopes ``G_k(u + Delta_{j,k}(theta))``:

* ``Delta_{j,k}(theta) >= 0``: a left shift — exact and continuous.
* ``Delta_{j,k}(theta) < 0``: a right shift.  If the envelope has a burst
  (``G_k(0+) > 0``) the shifted envelope *jumps up* at
  ``u_k = -Delta_{j,k}(theta)``, so the raw base jumps *down* there.  A
  piecewise-linear curve cannot hold a jump, but the **nondecreasing lower
  hull** of the raw base can — and the hull is *lossless* for delay
  bounds: for a nondecreasing envelope ``G``, the Eq. (20) condition
  ``G(t) + sigma <= base(t + d')`` for all ``t`` holds iff it holds with
  ``base`` replaced by ``hull(u) = inf_{s>=u} base(s)`` (monotonicity of
  ``G`` transports the constraint to every later ``s``).  We therefore
  construct the hull exactly, as the pointwise minimum of per-region
  curves: between consecutive jump points the raw base is continuous, and
  the infimum over each region, viewed from the left, is the region curve
  flattened at its left edge and lowered by the accumulated jumps.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.algebra.functions import PiecewiseLinear
from repro.algebra.operations import pointwise_add, pointwise_min, pointwise_sub
from repro.arrivals.envelopes import DeterministicEnvelope
from repro.arrivals.statistical import (
    ExponentialBound,
    StatisticalEnvelope,
    combine_bounds,
)
from repro.scheduling.delta import DeltaScheduler
from repro.service.curves import StatisticalServiceCurve
from repro.utils.validation import check_non_negative, check_positive

FlowId = Hashable

_EPS = 1e-12


def _shift_right_continuous_part(
    curve: PiecewiseLinear, delta: float
) -> tuple[PiecewiseLinear, float]:
    """Decompose the right shift ``u -> curve(u - delta)`` into a continuous
    piecewise-linear part plus an upward step.

    Returns ``(continuous, jump)`` with
    ``curve(u - delta) = continuous(u) + jump * I(u > delta)`` for all
    ``u >= 0`` (by the convention ``curve(v) = 0`` for ``v < 0``); ``jump``
    is the envelope's burst ``curve(0)``.
    """
    burst = curve.ys[0]
    if delta == 0.0:
        # no step needed: the curve applies from u = 0 on
        return curve, 0.0
    xs = [0.0, delta] + [x + delta for x in curve.xs[1:]]
    ys = [0.0, 0.0] + [y - burst for y in curve.ys[1:]]
    continuous = PiecewiseLinear(xs, ys, curve.final_slope)
    return continuous, burst


def _hull_base(
    capacity: float,
    theta: float,
    continuous_cross: list[PiecewiseLinear],
    jumps: list[tuple[float, float]],
) -> PiecewiseLinear:
    """Exact nondecreasing hull of
    ``[ C (u + theta) - cross_cont(u) - sum_k J_k I(u > u_k) ]_+``.

    ``jumps`` is a list of ``(u_k, J_k)`` with ``u_k > 0``, ``J_k > 0``.
    """
    line = PiecewiseLinear.affine(capacity, capacity * theta)
    cont_total: PiecewiseLinear | None = None
    for curve in continuous_cross:
        cont_total = curve if cont_total is None else pointwise_add(cont_total, curve)
    raw = line if cont_total is None else pointwise_sub(line, cont_total)

    if jumps:
        # accumulate jumps at identical abscissae and sort
        merged: dict[float, float] = {}
        for u_k, j_k in jumps:
            merged[u_k] = merged.get(u_k, 0.0) + j_k
        points = sorted(merged)
        # hull = min over regions: region 0 is raw itself; region j >= 1 is
        # raw lowered by the accumulated jump and flattened left of u_(j)
        hull = raw
        accumulated = 0.0
        for u_k in points:
            accumulated += merged[u_k]
            region = raw.translate(-accumulated).flatten_left(u_k)
            hull = pointwise_min(hull, region)
        raw = hull

    clipped = raw.clip_nonnegative()
    if not clipped.is_nondecreasing():
        # cross envelopes can momentarily outrun C (steep concave pieces);
        # the hull of the dip is a smaller, hence still valid, curve
        clipped = clipped.nondecreasing_hull()
    return clipped


def leftover_service_curve(
    scheduler: DeltaScheduler,
    flow: FlowId,
    capacity: float,
    cross_envelopes: Mapping[FlowId, StatisticalEnvelope],
    theta: float,
) -> StatisticalServiceCurve:
    """Theorem 1: the statistical leftover service curve ``S_j(.; theta)``.

    Parameters
    ----------
    scheduler:
        The Delta-scheduler at the link.
    flow:
        The analyzed flow ``j`` (must *not* appear in ``cross_envelopes``).
    capacity:
        Link rate ``C``.
    cross_envelopes:
        Statistical sample-path envelopes of all other flows with traffic
        at the link.  Flows with ``Delta_{j,k} = -inf`` (lower priority
        than ``j``) are excluded automatically.
    theta:
        The free parameter of the family; larger ``theta`` trades a longer
        initial dead time for a higher curve afterwards.  The delay-bound
        computation optimizes over it (paper Sec. IV).

    Returns
    -------
    StatisticalServiceCurve
        Curve in factored form with bounding function
        ``eps_s = inf-combination of the cross eps_k`` (Eq. (33)).

    Raises
    ------
    ValueError
        If the cross-traffic envelope rate exceeds the link capacity (the
        leftover service would be empty).
    """
    check_positive(capacity, "capacity")
    check_non_negative(theta, "theta")
    if flow in cross_envelopes:
        raise ValueError(
            f"flow {flow!r} must not be part of its own cross traffic"
        )

    relevant = scheduler.cross_flows(flow, list(cross_envelopes.keys()) + [flow])
    continuous: list[PiecewiseLinear] = []
    jumps: list[tuple[float, float]] = []
    bounds: list[ExponentialBound] = []
    cross_rate = 0.0
    for k in relevant:
        envelope = cross_envelopes[k]
        cross_rate += envelope.curve.final_slope
        capped = scheduler.delta_capped(flow, k, theta)
        if capped >= 0:
            continuous.append(envelope.curve.shift_left(capped))
        else:
            cont, jump = _shift_right_continuous_part(envelope.curve, -capped)
            continuous.append(cont)
            if jump > _EPS:
                jumps.append((-capped, jump))
        bounds.append(envelope.exponential_bound())

    if cross_rate > capacity + 1e-9:
        raise ValueError(
            f"cross-traffic envelope rate {cross_rate:g} exceeds the link "
            f"capacity {capacity:g}: the leftover service is empty"
        )
    base = _hull_base(capacity, theta, continuous, jumps)
    bound = combine_bounds(bounds) if bounds else ExponentialBound(0.0, 1.0)
    return StatisticalServiceCurve(base, theta, bound)


def deterministic_leftover_service(
    scheduler: DeltaScheduler,
    flow: FlowId,
    capacity: float,
    cross_envelopes: Mapping[FlowId, DeterministicEnvelope],
    theta: float,
) -> StatisticalServiceCurve:
    """Eq. (19): the deterministic leftover service curve.

    Same construction as :func:`leftover_service_curve` with deterministic
    envelopes; the bounding function is identically zero.
    """
    statistical = {
        k: StatisticalEnvelope.deterministic(env.curve)
        for k, env in cross_envelopes.items()
    }
    return leftover_service_curve(scheduler, flow, capacity, statistical, theta)
