"""``python -m repro.service.api`` — run the bound-query server.

Prints one ``listening on http://HOST:PORT`` line once the socket is
bound (the CI smoke job and scripts parse it to discover an ephemeral
port), then serves until SIGINT/SIGTERM, shutting down cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.experiments.batch import MAX_LANES
from repro.experiments.cache import DEFAULT_CACHE_DIR
from repro.service.api.app import BoundService, ServiceConfig
from repro.service.api.coalescer import DEFAULT_WINDOW_S
from repro.service.api.http import HttpServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.api",
        description="Bound-query service: delay/backlog bounds and "
        "admission verdicts over HTTP/JSON.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks an ephemeral one (default %(default)s)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=DEFAULT_WINDOW_S,
        metavar="SECONDS",
        help="coalescing window for concurrent queries "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-lanes", type=int, default=MAX_LANES,
        help="max queries fused into one solver batch (default %(default)s)",
    )
    parser.add_argument(
        "--lru-size", type=int, default=4096,
        help="in-memory LRU capacity in entries (default %(default)s)",
    )
    parser.add_argument(
        "--lru-ttl", type=float, default=None, metavar="SECONDS",
        help="optional LRU entry TTL (default: no expiry)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="on-disk cell cache directory (default %(default)s)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="serve from the LRU and solver only",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    config = ServiceConfig(
        batch_window_s=args.batch_window,
        max_lanes=args.max_lanes,
        lru_size=args.lru_size,
        lru_ttl_s=args.lru_ttl,
        cache_dir=None if args.no_disk_cache else args.cache_dir,
    )
    server = HttpServer(
        BoundService(config), host=args.host, port=args.port
    )
    host, port = await server.start()
    print(f"listening on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await server.aclose()
    print("shutdown complete", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
