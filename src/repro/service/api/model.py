"""Query parsing and canonicalization for the bound-query service.

A :class:`BoundQuery` is the validated, normalized form of one JSON
request body.  Normalization makes the query's identity *canonical*:
defaults are filled in (the Section V traffic/capacity, quick
optimization grids), EDF deadline weights are forced to the paper
defaults for schedulers they cannot affect, and the result is frozen
into a :class:`~repro.experiments.sweep.Cell` whose
:func:`~repro.experiments.sweep.cell_key` hash keys both the in-memory
LRU and the on-disk cell cache — two requests that must produce the
same answer always share one key.

Validation failures raise :class:`QueryError`, which the HTTP layer
renders as a structured 400 (code, message, offending field) — a
malformed body is a client error, never a 500.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.experiments.config import (
    BACKENDS,
    CAPACITY,
    EPSILON,
    QUICK_GRIDS,
    SCHEDULER_MAP,
)
from repro.experiments.config import DEFAULT_BACKEND
from repro.experiments.sweep import Cell, cell_key
from repro.service.api.cells import SERVICE_CELL_FN

__all__ = ["BoundQuery", "QueryError", "PAPER_TRAFFIC"]

#: The Section V MMOO flow, as canonical (peak, p11, p22) cell params.
PAPER_TRAFFIC = (1.5, 0.989, 0.9)

#: Paper Section V EDF deadlines d*_0 = 1, d*_c = 10 as weights.
_DEFAULT_WEIGHTS = (1.0, 10.0)

#: Hard caps keeping a single query's work bounded (the generated-C
#: probe kernel is specialized up to 1024 hops; larger grids than 512
#: points buy nothing below double precision).
_MAX_HOPS = 1024
_MAX_FLOWS = 1_000_000
_MAX_GRID = 512

KINDS = ("delay", "backlog")


class QueryError(ValueError):
    """A malformed or unsupported query (rendered as HTTP 400)."""

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.field = field

    def to_json(self) -> dict[str, Any]:
        error: dict[str, Any] = {
            "code": "bad-request",
            "message": str(self),
        }
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


def _require(
    body: Mapping[str, Any], field: str, default: Any = None
) -> Any:
    value = body.get(field, default)
    if value is None:
        raise QueryError(f"missing required field {field!r}", field=field)
    return value


def _as_int(value: Any, field: str, *, lo: int, hi: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise QueryError(
            f"{field} must be an integer, got {value!r}", field=field
        )
    if not lo <= value <= hi:
        raise QueryError(
            f"{field} must be in [{lo}, {hi}], got {value}", field=field
        )
    return value


def _as_float(
    value: Any, field: str, *, lo: float, hi: float = math.inf,
    open_lo: bool = False, open_hi: bool = False,
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(
            f"{field} must be a number, got {value!r}", field=field
        )
    value = float(value)
    if not math.isfinite(value):
        raise QueryError(f"{field} must be finite", field=field)
    if (value < lo or (open_lo and value == lo)) or (
        value > hi or (open_hi and value == hi)
    ):
        bounds = f"{'(' if open_lo else '['}{lo}, {hi}{')' if open_hi else ']'}"
        raise QueryError(
            f"{field} must be in {bounds}, got {value}", field=field
        )
    return value


@dataclass(frozen=True)
class BoundQuery:
    """One validated, canonical bound query."""

    kind: str
    scheduler: str
    hops: int
    n_through: int
    n_cross: int
    epsilon: float
    traffic: tuple
    capacity: float
    deadline_weight_through: float
    deadline_weight_cross: float
    s_grid: int
    gamma_grid: int
    backend: str

    @classmethod
    def from_json(cls, body: Any) -> "BoundQuery":
        """Parse and validate a JSON request body (raises QueryError)."""
        if not isinstance(body, Mapping):
            raise QueryError(
                "request body must be a JSON object, got "
                f"{type(body).__name__}"
            )
        kind = _require(body, "kind", "delay")
        if kind not in KINDS:
            raise QueryError(
                f"kind must be one of {list(KINDS)}, got {kind!r}",
                field="kind",
            )
        scheduler = _require(body, "scheduler")
        if scheduler not in SCHEDULER_MAP:
            raise QueryError(
                f"scheduler must be one of {sorted(SCHEDULER_MAP)}, got "
                f"{scheduler!r}",
                field="scheduler",
            )
        if kind == "backlog" and scheduler == "EDF":
            raise QueryError(
                "backlog bounds are not available for EDF (the deadline "
                "fixed point is defined on the delay bound)",
                field="scheduler",
            )
        hops = _as_int(_require(body, "hops"), "hops", lo=1, hi=_MAX_HOPS)
        n_through = _as_int(
            _require(body, "n_through"), "n_through", lo=1, hi=_MAX_FLOWS
        )
        n_cross = _as_int(
            body.get("n_cross", 0), "n_cross", lo=0, hi=_MAX_FLOWS
        )
        epsilon = _as_float(
            body.get("epsilon", EPSILON), "epsilon",
            lo=0.0, hi=1.0, open_lo=True, open_hi=True,
        )
        traffic_raw = body.get("traffic", PAPER_TRAFFIC)
        if (
            not isinstance(traffic_raw, (list, tuple))
            or len(traffic_raw) != 3
        ):
            raise QueryError(
                "traffic must be a [peak, p11, p22] triple",
                field="traffic",
            )
        traffic = (
            _as_float(traffic_raw[0], "traffic.peak", lo=0.0, open_lo=True),
            _as_float(
                traffic_raw[1], "traffic.p11",
                lo=0.0, hi=1.0, open_lo=True, open_hi=True,
            ),
            _as_float(
                traffic_raw[2], "traffic.p22",
                lo=0.0, hi=1.0, open_lo=True, open_hi=True,
            ),
        )
        capacity = _as_float(
            body.get("capacity", CAPACITY), "capacity", lo=0.0, open_lo=True
        )
        if scheduler == "EDF":
            weight_through = _as_float(
                body.get("deadline_weight_through", _DEFAULT_WEIGHTS[0]),
                "deadline_weight_through", lo=0.0, open_lo=True,
            )
            weight_cross = _as_float(
                body.get("deadline_weight_cross", _DEFAULT_WEIGHTS[1]),
                "deadline_weight_cross", lo=0.0, open_lo=True,
            )
        else:
            # canonicalize: weights cannot affect non-EDF answers, so
            # pinning them keeps the cache key independent of them
            weight_through, weight_cross = _DEFAULT_WEIGHTS
        s_grid = _as_int(
            body.get("s_grid", QUICK_GRIDS["s_grid"]), "s_grid",
            lo=2, hi=_MAX_GRID,
        )
        gamma_grid = _as_int(
            body.get("gamma_grid", QUICK_GRIDS["gamma_grid"]), "gamma_grid",
            lo=2, hi=_MAX_GRID,
        )
        backend = body.get("backend", DEFAULT_BACKEND)
        if backend not in BACKENDS:
            raise QueryError(
                f"backend must be one of {list(BACKENDS)}, got {backend!r}",
                field="backend",
            )
        return cls(
            kind=kind,
            scheduler=scheduler,
            hops=hops,
            n_through=n_through,
            n_cross=n_cross,
            epsilon=epsilon,
            traffic=traffic,
            capacity=capacity,
            deadline_weight_through=weight_through,
            deadline_weight_cross=weight_cross,
            s_grid=s_grid,
            gamma_grid=gamma_grid,
            backend=backend,
        )

    def params(self) -> dict[str, Any]:
        """The canonical cell parameters of this query."""
        return {
            "kind": self.kind,
            "scheduler": self.scheduler,
            "hops": self.hops,
            "n_through": self.n_through,
            "n_cross": self.n_cross,
            "epsilon": self.epsilon,
            "traffic": self.traffic,
            "capacity": self.capacity,
            "deadline_weight_through": self.deadline_weight_through,
            "deadline_weight_cross": self.deadline_weight_cross,
            "s_grid": self.s_grid,
            "gamma_grid": self.gamma_grid,
            "backend": self.backend,
        }

    def cell(self) -> Cell:
        """This query as a sweep cell (the unit of caching and batching)."""
        return Cell.make(SERVICE_CELL_FN, **self.params())

    def key(self) -> str:
        """The canonical content hash shared by the LRU and disk caches."""
        return cell_key(self.cell())
