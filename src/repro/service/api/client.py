"""Clients for the bound service (used by tests, CI smoke, and benches).

:class:`ServiceClient` is a small synchronous wrapper over
:class:`http.client.HTTPConnection` — one persistent connection, JSON
in/out.  :class:`AsyncServiceClient` is its asyncio twin over
``asyncio.open_connection``, for callers that need many concurrent
in-flight requests (the load benchmark drives >=1000 of them).

Both parse response bodies with :func:`json.loads`, which accepts the
non-strict ``Infinity`` the server emits for infeasible bounds and
round-trips finite floats bitwise.  A non-2xx response raises
:class:`ServiceError` carrying the status and the server's structured
``{"error": {...}}`` payload.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response (carries the structured error body)."""

    def __init__(self, status: int, payload: Any):
        error = (
            payload.get("error", {}) if isinstance(payload, dict) else {}
        )
        message = error.get("message", f"HTTP {status}")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.code = error.get("code")


def _check(status: int, payload: Any) -> Any:
    if not 200 <= status < 300:
        raise ServiceError(status, payload)
    return payload


class ServiceClient:
    """Synchronous bound-service client over one persistent connection."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 60.0
    ):
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(
        self, method: str, path: str, body: Any | None = None
    ) -> tuple[int, Any]:
        """One request; returns ``(status, parsed_json_body)``."""
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        self._conn.request(method, path, body=data, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None

    def bounds(self, query: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/bounds``; the bound row (raises on error status)."""
        return _check(*self.request("POST", "/v1/bounds", query))

    def admissible(self, query: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/admissible``; the verdict (raises on error status)."""
        return _check(*self.request("POST", "/v1/admissible", query))

    def healthz(self) -> dict[str, Any]:
        return _check(*self.request("GET", "/v1/healthz"))

    def metrics(self) -> dict[str, Any]:
        return _check(*self.request("GET", "/v1/metrics"))

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio bound-service client: one connection, sequential requests.

    For concurrency, open one client per task (connections are cheap on
    loopback) — requests on a single client are serialized by a lock.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self, method: str, path: str, body: Any | None = None
    ) -> tuple[int, Any]:
        data = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: service\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("ascii")
        async with self._lock:
            self._writer.write(head + data)
            await self._writer.drain()
            status_line = await self._reader.readline()
            if not status_line:
                raise ConnectionError("server closed the connection")
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await self._reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            raw = await self._reader.readexactly(length) if length else b""
        return status, json.loads(raw) if raw else None

    async def bounds(self, query: dict[str, Any]) -> dict[str, Any]:
        return _check(*await self.request("POST", "/v1/bounds", query))

    async def admissible(self, query: dict[str, Any]) -> dict[str, Any]:
        return _check(*await self.request("POST", "/v1/admissible", query))

    async def healthz(self) -> dict[str, Any]:
        return _check(*await self.request("GET", "/v1/healthz"))

    async def metrics(self) -> dict[str, Any]:
        return _check(*await self.request("GET", "/v1/metrics"))

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
