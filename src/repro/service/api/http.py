"""Minimal asyncio HTTP/1.1 front-end for the bound service.

Stdlib-only by design (the service must run in CI with no new runtime
dependencies): a small hand-rolled HTTP/1.1 handler over
``asyncio.start_server`` — request line, headers, ``Content-Length``
bodies, persistent connections — serving exactly four routes:

========  =================  ==========================================
method    path               handler
========  =================  ==========================================
``POST``  ``/v1/bounds``     :meth:`BoundService.bounds`
``POST``  ``/v1/admissible`` :meth:`BoundService.admissible`
``GET``   ``/v1/healthz``    :meth:`BoundService.healthz`
``GET``   ``/v1/metrics``    :meth:`BoundService.metrics`
========  =================  ==========================================

Every response body is JSON.  Errors are structured, never bare: a
malformed request yields ``{"error": {"code", "message", ...}}`` with
the right 4xx status, and only a genuine service bug produces a 500.
Bound values serialize through :func:`json.dumps`, whose float
round-trip is exact (``repr``-based) — the JSON a client reads back
is bitwise the solver's answer; infeasible bounds appear as the
(non-strict, but ``json.loads``-accepted) ``Infinity``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.api.app import BoundService
from repro.service.api.model import QueryError

__all__ = ["HttpServer", "MAX_BODY_BYTES"]

#: Request bodies above this are rejected with 413 (a bound query is a
#: few hundred bytes; anything megabyte-sized is not a query).
MAX_BODY_BYTES = 1 << 20

#: Per-read timeout: a stalled or half-open client gets a 408 and its
#: connection closed instead of pinning a handler task forever.
READ_TIMEOUT_S = 30.0

_MAX_HEADER_BYTES = 16 << 10

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """An error response decided during request parsing/routing."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.body = {"error": {"code": code, "message": message}}


class HttpServer:
    """Serves one :class:`BoundService` over asyncio sockets.

    ``port=0`` binds an ephemeral port (the test harness relies on
    this); the bound address is available as :attr:`host`/:attr:`port`
    after :meth:`start`.
    """

    def __init__(
        self,
        service: BoundService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=2048
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def aclose(self) -> None:
        """Stop accepting, drop connections, close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close live client transports so their handler tasks see EOF
        # and exit on their own; cancelling them instead would leak
        # noisy CancelledErrors through the stream protocol's done
        # callback at loop teardown.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=5.0)
        await self.service.aclose()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(
                        writer, exc.status, exc.body, keep_alive=False
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload = await self._dispatch(
                        method, path, body
                    )
                except _HttpError as exc:
                    status, payload = exc.status, exc.body
                except QueryError as exc:
                    status, payload = 400, exc.to_json()
                except Exception as exc:  # noqa: BLE001 -- boundary: a handler bug must become a 500, not kill the connection loop
                    self.service.registry.add("service.errors.internal")
                    status, payload = 500, {
                        "error": {
                            "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    }
                await self._respond(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes | None] | None:
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            raise _HttpError(408, "timeout", "request line not received")
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            raise _HttpError(
                400, "bad-request-line",
                f"malformed request line: {line[:80]!r}",
            )
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                raise _HttpError(408, "timeout", "headers not received")
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _HttpError(413, "headers-too-large", "header block too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body: bytes | None = None
        if method.upper() in ("POST", "PUT"):
            length_raw = headers.get("content-length")
            if length_raw is None:
                raise _HttpError(
                    411, "length-required",
                    "POST requires a Content-Length header",
                )
            try:
                length = int(length_raw)
            except ValueError:
                raise _HttpError(
                    400, "bad-content-length",
                    f"Content-Length is not an integer: {length_raw!r}",
                )
            if length < 0:
                raise _HttpError(
                    400, "bad-content-length", "Content-Length is negative"
                )
            if length > MAX_BODY_BYTES:
                raise _HttpError(
                    413, "payload-too-large",
                    f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                raise _HttpError(408, "timeout", "body not received")
            except asyncio.IncompleteReadError:
                raise _HttpError(
                    400, "truncated-body",
                    "connection closed before Content-Length bytes",
                )
        return method.upper(), path, headers, body

    async def _dispatch(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[str, Any]]:
        path = path.split("?", 1)[0]
        if path == "/v1/bounds":
            self._require_method(method, "POST", path)
            return 200, await self.service.bounds(self._parse_json(body))
        if path == "/v1/admissible":
            self._require_method(method, "POST", path)
            return 200, await self.service.admissible(
                self._parse_json(body)
            )
        if path == "/v1/healthz":
            self._require_method(method, "GET", path)
            return 200, self.service.healthz()
        if path == "/v1/metrics":
            self._require_method(method, "GET", path)
            return 200, self.service.metrics()
        raise _HttpError(404, "not-found", f"no route for {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(
                405, "method-not-allowed",
                f"{path} accepts {expected}, not {method}",
            )

    @staticmethod
    def _parse_json(body: bytes | None) -> Any:
        if body is None or not body.strip():
            raise _HttpError(
                400, "empty-body", "expected a JSON request body"
            )
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, "bad-json", f"body is not valid JSON: {exc}")

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
