"""The service's sweep cell: one bound query as a pure, cacheable cell.

Every service query is normalized into a
:class:`~repro.experiments.sweep.Cell` naming :func:`bound_query_cell`,
so a query's canonical identity — and with it the key of the in-memory
LRU *and* of the on-disk content-keyed cell cache — is exactly
:func:`repro.experiments.sweep.cell_key` of its parameters.  A bound
computed by the service warms the same cache entries a sweep run would
read, and vice versa.

:func:`bound_query_plan` is the cell's batch planner (registered in
:mod:`repro.experiments.batch`): delay queries plan onto the
:mod:`repro.network.lanes` engine (``"mmoo"`` for FIFO/BMUX/SP,
``"edf"`` for the deadline fixed point), so concurrent queries fuse
into one broadcasted kernel sweep; backlog queries have no lane family
yet and decline, falling back to singleton execution — the planner
counts these under ``batch.fallback_cells.planner_declined``.

Both the cell function and the planner produce answers through the very
same solver entry points as a direct call into
:mod:`repro.network.e2e` / :mod:`repro.network.backlog`, and the lane
engine mirrors the per-cell searches bitwise, so a served answer is
bitwise-identical to the corresponding direct computation.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.batch import CellPlan, edf_diagnostics
from repro.experiments.config import DEFAULT_BACKEND, SCHEDULER_MAP
from repro.network.backlog import BacklogResult, e2e_backlog_bound_mmoo
from repro.network.e2e import (
    E2EResult,
    EDFBound,
    e2e_delay_bound_edf,
    e2e_delay_bound_mmoo,
)
from repro.network.lanes import EDFLaneSpec, LaneSpec
from repro.arrivals.mmoo import MMOOParameters

__all__ = [
    "SERVICE_CELL_FN",
    "bound_query_cell",
    "bound_query_plan",
]

#: The registered cell function of every service query.
SERVICE_CELL_FN = "repro.service.api.cells:bound_query_cell"


def _delay_row(
    scheduler: str, hops: int, result: E2EResult, delta: float
) -> dict:
    return {
        "kind": "delay",
        "scheduler": scheduler,
        "hops": hops,
        "delta": delta,
        "delay": result.delay,
        "sigma": result.sigma,
        "gamma": result.gamma,
        "alpha": result.alpha,
        "x": result.x,
        "thetas": list(result.thetas),
        "feasible": result.feasible,
        "method": result.method,
    }


def _edf_payload(scheduler: str, hops: int, bound: EDFBound) -> dict:
    """The EDF answer payload; shared by the cell and the batched path."""
    row = _delay_row(scheduler, hops, bound.result, bound.delta)
    row["edf"] = edf_diagnostics(bound)
    return {"rows": [row], "diagnostics": dict(row["edf"])}


def _mmoo_payload(
    scheduler: str, hops: int, delta: float, result: E2EResult
) -> dict:
    """The FIFO/BMUX/SP answer payload; shared with the batched path."""
    return {"rows": [_delay_row(scheduler, hops, result, delta)], "diagnostics": {}}


def _backlog_payload(
    scheduler: str, hops: int, delta: float, result: BacklogResult
) -> dict:
    return {
        "rows": [
            {
                "kind": "backlog",
                "scheduler": scheduler,
                "hops": hops,
                "delta": delta,
                "backlog": result.backlog,
                "sigma": result.sigma,
                "gamma": result.gamma,
                "alpha": result.alpha,
                "feasible": result.feasible,
            }
        ],
        "diagnostics": {},
    }


def bound_query_cell(
    *,
    kind: str,
    scheduler: str,
    hops: int,
    n_through: int,
    n_cross: int,
    epsilon: float,
    traffic: tuple,
    capacity: float,
    deadline_weight_through: float,
    deadline_weight_cross: float,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """One bound query — pure in its params, hence cacheable and batchable.

    ``kind`` selects the bound (``"delay"`` or ``"backlog"``);
    ``scheduler`` is a :data:`~repro.experiments.config.SCHEDULER_MAP`
    name (FIFO/BMUX/EDF/SP).  The deadline weights only enter for EDF
    (queries normalize them to the paper defaults otherwise, keeping
    the cache key canonical).
    """
    peak, p11, p22 = traffic
    mmoo = MMOOParameters(peak, p11, p22)
    _, delta, _ = SCHEDULER_MAP[scheduler]
    grid = {"s_grid": s_grid, "gamma_grid": gamma_grid, "backend": backend}
    if kind == "backlog":
        backlog = e2e_backlog_bound_mmoo(
            mmoo, n_through, n_cross, hops, capacity, delta, epsilon, **grid
        )
        return _backlog_payload(scheduler, hops, delta, backlog)
    if scheduler == "EDF":
        bound = e2e_delay_bound_edf(
            mmoo, n_through, n_cross, hops, capacity, epsilon,
            deadline_weight_through=deadline_weight_through,
            deadline_weight_cross=deadline_weight_cross,
            **grid,
        )
        return _edf_payload(scheduler, hops, bound)
    result = e2e_delay_bound_mmoo(
        mmoo, n_through, n_cross, hops, capacity, delta, epsilon, **grid
    )
    return _mmoo_payload(scheduler, hops, delta, result)


def bound_query_plan(params: dict) -> CellPlan | None:
    """Batch plan of one service query (see :mod:`repro.experiments.batch`).

    Returns ``None`` for backlog queries — there is no backlog lane
    family yet, so they run as singleton fallback batches (counted by
    the planner under ``batch.fallback_cells.planner_declined``).
    """
    if params["kind"] != "delay":
        return None
    scheduler = params["scheduler"]
    hops = params["hops"]
    peak, p11, p22 = params["traffic"]
    mmoo = MMOOParameters(peak, p11, p22)
    _, delta, _ = SCHEDULER_MAP[scheduler]
    grid: dict[str, Any] = {
        "s_grid": params["s_grid"],
        "gamma_grid": params["gamma_grid"],
        "backend": params.get("backend", DEFAULT_BACKEND),
    }
    if scheduler == "EDF":
        return CellPlan(
            kind="edf",
            spec=EDFLaneSpec(
                mmoo, params["n_through"], params["n_cross"], hops,
                params["capacity"], params["epsilon"],
                deadline_weight_through=params["deadline_weight_through"],
                deadline_weight_cross=params["deadline_weight_cross"],
                **grid,
            ),
            build=lambda bound: _edf_payload(scheduler, hops, bound),
        )
    return CellPlan(
        kind="mmoo",
        spec=LaneSpec(
            mmoo, params["n_through"], params["n_cross"], hops,
            params["capacity"], delta, params["epsilon"], **grid,
        ),
        build=lambda result: _mmoo_payload(scheduler, hops, delta, result),
    )
