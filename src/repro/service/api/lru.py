"""In-memory LRU front-cache for served bound answers.

Sits in front of the content-keyed on-disk
:class:`~repro.experiments.cache.CellCache`: both are keyed by the same
canonical :func:`~repro.experiments.sweep.cell_key` hash, so the LRU is
a pure acceleration layer — evicting an entry can cost a disk read,
never a wrong answer.

The cache is size-bounded (entry count) and optionally TTL-bounded.
Expiry uses an injectable monotonic clock so tests can expire entries
without sleeping.  All operations take a single lock; payloads are
returned as-is (callers must not mutate them — the service treats
payloads as frozen once computed).

Hits, misses, and evictions are counted on an injectable
:class:`~repro.obs.MetricsRegistry` (``service.lru_hit`` /
``service.lru_miss`` / ``service.lru_evict``), so ``/v1/metrics``
exposes the hit ratio directly.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.obs import MetricsRegistry

__all__ = ["LRUCache"]


class LRUCache:
    """A thread-safe, size- and TTL-bounded LRU mapping key -> payload."""

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._registry = registry
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.add(name)

    def get(self, key: str) -> Any | None:
        """The cached payload, or ``None`` on miss/expiry (which evicts)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count("service.lru_miss")
                return None
            stored_at, payload = entry
            if (
                self.ttl_s is not None
                and self._clock() - stored_at > self.ttl_s
            ):
                del self._entries[key]
                self._count("service.lru_evict")
                self._count("service.lru_miss")
                return None
            self._entries.move_to_end(key)
            self._count("service.lru_hit")
            return payload

    def put(self, key: str, payload: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), payload)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._count("service.lru_evict")

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` if present; returns whether it was."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._count("service.lru_evict")
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # membership without touching recency or counters (diagnostics)
        with self._lock:
            return key in self._entries
