"""Bound-query service: async batched admission control over HTTP/JSON.

The operational face of the paper's analysis: a long-running process
that answers "does this flow fit on this path at this epsilon?" on
demand.  The ROADMAP's "millions of users" direction needs tens of
thousands of bound queries per second from one process; three layers
make that possible without touching the solver mathematics:

* a shared in-memory **LRU front-cache** (:mod:`repro.service.api.lru`)
  keyed by the same canonical cell-params hash as the on-disk
  :class:`~repro.experiments.cache.CellCache`, so warm queries never
  reach the solver and cold answers are shared with the sweep pipeline;
* a **batch coalescer** (:mod:`repro.service.api.coalescer`) that
  collects the queries arriving inside a short window (default ~2 ms)
  or up to a lane cap, plans them through the cross-cell batch planner
  of :mod:`repro.experiments.batch`, and solves whole groups as one
  broadcasted kernel call via :mod:`repro.network.lanes` — answers are
  bitwise-identical to single-query solver calls;
* a **zero-heavy-dependency asyncio HTTP/1.1 server**
  (:mod:`repro.service.api.http`) exposing ``POST /v1/bounds``,
  ``POST /v1/admissible``, ``GET /v1/healthz``, and ``GET /v1/metrics``
  (a :mod:`repro.obs` snapshot, so the metrics endpoint doubles as the
  service's telemetry).

Run it with ``python -m repro.service.api --port 8080``; the matching
client helper lives in :mod:`repro.service.api.client`.
"""

from repro.service.api.app import BoundService, ServiceConfig
from repro.service.api.cells import (
    SERVICE_CELL_FN,
    bound_query_cell,
    bound_query_plan,
)
from repro.service.api.coalescer import BatchCoalescer
from repro.service.api.http import HttpServer
from repro.service.api.lru import LRUCache
from repro.service.api.model import BoundQuery, QueryError

__all__ = [
    "BoundService",
    "ServiceConfig",
    "BatchCoalescer",
    "HttpServer",
    "LRUCache",
    "BoundQuery",
    "QueryError",
    "SERVICE_CELL_FN",
    "bound_query_cell",
    "bound_query_plan",
]
