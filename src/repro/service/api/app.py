"""The bound service core: query -> caches -> coalescer -> answer.

:class:`BoundService` is transport-agnostic (the HTTP layer in
:mod:`repro.service.api.http` is a thin adapter over it) and owns the
full answer path of one query:

1. parse/validate into a canonical :class:`~repro.service.api.model.BoundQuery`;
2. probe the in-memory LRU, then the on-disk
   :class:`~repro.experiments.cache.CellCache` — both keyed by the same
   :func:`~repro.experiments.sweep.cell_key` hash, so the service shares
   warm entries with the sweep pipeline;
3. on a full miss, submit the cell to the
   :class:`~repro.service.api.coalescer.BatchCoalescer` and write the
   answer back through both cache layers.

The service keeps its own always-on :class:`~repro.obs.MetricsRegistry`
(separate from the process-global default-off one): request latency,
in-flight gauge, cache-layer counters, and the merged planner/solver
snapshots of every flush.  Its snapshot is the ``/v1/metrics`` body.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.experiments.batch import MAX_LANES
from repro.experiments.cache import DEFAULT_CACHE_DIR, CellCache
from repro.obs import MetricsRegistry
from repro.service.api.coalescer import DEFAULT_WINDOW_S, BatchCoalescer
from repro.service.api.lru import LRUCache
from repro.service.api.model import BoundQuery, QueryError

__all__ = ["ServiceConfig", "BoundService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (CLI flags map 1:1 onto these)."""

    batch_window_s: float = DEFAULT_WINDOW_S
    max_lanes: int = MAX_LANES
    lru_size: int = 4096
    lru_ttl_s: float | None = None
    cache_dir: str | None = DEFAULT_CACHE_DIR


class BoundService:
    """Answers bound/admission queries through the cache + batch stack.

    ``clock``/``sleep`` are the determinism hooks: ``clock`` feeds the
    LRU's TTL expiry, ``sleep`` the coalescer's batch window.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] | None = None,
    ):
        self.config = config or ServiceConfig()
        self.registry = MetricsRegistry(enabled=True)
        self.lru = LRUCache(
            self.config.lru_size,
            ttl_s=self.config.lru_ttl_s,
            clock=clock,
            registry=self.registry,
        )
        self.disk_cache = (
            CellCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self.coalescer = BatchCoalescer(
            window_s=self.config.batch_window_s,
            max_lanes=self.config.max_lanes,
            registry=self.registry,
            sleep=sleep,
        )
        self._inflight = 0
        self._started_at = time.time()

    async def aclose(self) -> None:
        await self.coalescer.aclose()

    def parse(self, body: Any) -> BoundQuery:
        """Validate a JSON body (raises :class:`QueryError` -> HTTP 400)."""
        return BoundQuery.from_json(body)

    async def answer(self, query: BoundQuery) -> dict[str, Any]:
        """The full bound answer of one query: row + provenance.

        The returned dict is the query's result row (bitwise-identical
        to a direct solver call) plus ``key`` (the canonical cell hash)
        and ``cached`` (``"lru"``, ``"disk"``, or ``None`` for a fresh
        solve).
        """
        start = time.perf_counter()
        self._inflight += 1
        self.registry.set_gauge("service.inflight", self._inflight)
        try:
            key = query.key()
            payload = self.lru.get(key)
            cached: str | None = "lru"
            if payload is None and self.disk_cache is not None:
                payload = self.disk_cache.get(key)
                if payload is not None:
                    cached = "disk"
                    self.registry.add("service.disk_hit")
                    self.lru.put(key, payload)
            if payload is None:
                cached = None
                self.registry.add("service.disk_miss")
                payload = await self.coalescer.submit(query.cell())
                self.lru.put(key, payload)
                if self.disk_cache is not None:
                    self.disk_cache.put(key, payload)
            row = dict(payload["rows"][0])
            row["key"] = key
            row["cached"] = cached
            return row
        finally:
            self._inflight -= 1
            self.registry.set_gauge("service.inflight", self._inflight)
            self.registry.observe(
                "service.request_latency", time.perf_counter() - start
            )

    async def bounds(self, body: Any) -> dict[str, Any]:
        """``POST /v1/bounds``: the bound row of one query."""
        self.registry.add("service.requests.bounds")
        return await self.answer(self.parse(body))

    async def admissible(self, body: Any) -> dict[str, Any]:
        """``POST /v1/admissible``: schedulability verdict of one query.

        The body is a bound query plus a ``target`` (max tolerable
        delay in ms, or backlog in kbit for ``kind="backlog"``).  The
        verdict is sound with respect to the paper's bounds: admissible
        only when the bound is feasible (finite) and within target.
        """
        self.registry.add("service.requests.admissible")
        if not isinstance(body, dict):
            raise QueryError("request body must be a JSON object")
        target_raw = body.get("target")
        if not isinstance(target_raw, (int, float)) or isinstance(
            target_raw, bool
        ):
            raise QueryError(
                "target must be a number (max delay in ms, or backlog in "
                "kbit for kind='backlog')",
                field="target",
            )
        target = float(target_raw)
        query = self.parse({k: v for k, v in body.items() if k != "target"})
        row = await self.answer(query)
        bound = row["delay"] if query.kind == "delay" else row["backlog"]
        admissible = bool(row["feasible"]) and bound <= target
        self.registry.add(
            "service.verdicts.admitted"
            if admissible
            else "service.verdicts.rejected"
        )
        return {
            "admissible": admissible,
            "kind": query.kind,
            "bound": bound,
            "target": target,
            "feasible": bool(row["feasible"]),
            "key": row["key"],
            "cached": row["cached"],
        }

    def healthz(self) -> dict[str, Any]:
        """``GET /v1/healthz``: liveness + a little identity."""
        return {
            "status": "ok",
            "uptime_s": time.time() - self._started_at,
            "lru_entries": len(self.lru),
            "inflight": self._inflight,
        }

    def metrics(self) -> dict[str, Any]:
        """``GET /v1/metrics``: the service registry snapshot."""
        return self.registry.snapshot()
