"""Batch coalescer: fuse concurrent bound queries into lane batches.

Queries that miss both caches arrive here as
:class:`~repro.experiments.sweep.Cell` records.  Instead of solving each
one alone, the coalescer holds the first miss for a short window
(default ~2 ms) so the queries arriving concurrently pile up, then
plans the whole set through the cross-cell batch planner of
:mod:`repro.experiments.batch` — compatible queries (same lane family
and backend) fuse into one broadcasted kernel call via
:mod:`repro.network.lanes`, capped at ``max_lanes`` per batch.  The
lane engine mirrors the per-cell searches bitwise, so a coalesced
answer is identical to the single-query one; the win is purely
throughput.

Determinism hooks: the wait is performed by an injectable ``sleep``
coroutine function (default :func:`asyncio.sleep`), so tests drive the
window with a manual gate instead of wall-clock sleeps.  Duplicate
in-flight queries (same cell key) share one solve and each waiter gets
the payload.

Solver work runs on a dedicated **single-worker** thread pool: batches
execute under ``obs.scoped(enabled=True)`` — which swaps the
process-global registry — so at most one scoped extent may be open at
a time.  Each flush's snapshot (planner counters such as
``batch.fallback_cells.*``, lane/solver spans) is merged into the
service registry, and per-batch cell counts land in
``service.batch_occupancy`` — the metrics endpoint shows exactly how
well queries are fusing.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable

from repro import obs
from repro.experiments.batch import MAX_LANES, execute_batch, plan_batches
from repro.experiments.sweep import Cell, SweepSpec, cell_key
from repro.obs import MetricsRegistry

__all__ = ["BatchCoalescer", "solve_spec"]

#: Default coalescing window: long enough that a burst of concurrent
#: requests lands in one flush, short enough to be invisible next to a
#: cold solve (milliseconds) or a warm hit (microseconds, never waits).
DEFAULT_WINDOW_S = 0.002


def solve_spec(
    spec: SweepSpec, max_lanes: int
) -> tuple[list[dict], list[int], dict]:
    """Plan and solve all cells of ``spec`` (runs on the worker thread).

    Returns ``(payloads_in_grid_order, batch_occupancies, snapshot)``.
    Top-level so the executor can name it in tracebacks; runs under a
    scoped metrics registry so the planner's and solver's counters come
    back in the snapshot.
    """
    with obs.scoped(enabled=True) as registry:
        batches = plan_batches(spec, max_lanes=max_lanes)
        payloads: dict[int, dict] = {}
        occupancies: list[int] = []
        for batch in batches:
            for index, payload in zip(batch.indices, execute_batch(batch)):
                payloads[index] = payload
            occupancies.append(len(batch.indices))
        snapshot = registry.snapshot()
    return (
        [payloads[i] for i in range(len(spec.cells))],
        occupancies,
        snapshot,
    )


class BatchCoalescer:
    """Collects concurrent cell queries and solves them as lane batches.

    Single-event-loop object: :meth:`submit` must be awaited from the
    loop the coalescer was created on.  ``sleep`` is awaited once per
    flush with the window length; injecting a manual gate makes the
    window fully controllable in tests.
    """

    def __init__(
        self,
        *,
        window_s: float = DEFAULT_WINDOW_S,
        max_lanes: int = MAX_LANES,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], Awaitable[None]] | None = None,
    ):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        self.window_s = window_s
        self.max_lanes = max_lanes
        self._registry = registry
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="bound-solver"
        )
        # key -> (cell, futures awaiting it), insertion-ordered
        self._pending: dict[str, tuple[Cell, list[asyncio.Future]]] = {}
        self._timer: asyncio.Task | None = None
        self._flushes: set[asyncio.Task] = set()
        self._closed = False

    async def submit(self, cell: Cell) -> dict:
        """Solve ``cell`` (coalesced with concurrent peers); its payload.

        Duplicate submissions of the same cell while one is pending
        share a single solve.  Raises whatever the solver raised for
        the cell's batch.
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        key = cell_key(cell)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = self._pending.get(key)
        if entry is not None:
            entry[1].append(future)
        else:
            self._pending[key] = (cell, [future])
            if len(self._pending) >= self.max_lanes:
                self._flush_now()
            elif self._timer is None:
                self._timer = asyncio.create_task(self._window())
        return await future

    async def _window(self) -> None:
        try:
            await self._sleep(self.window_s)
        except asyncio.CancelledError:
            return
        self._timer = None
        self._flush_now()

    def _flush_now(self) -> None:
        """Move the pending set into a flush task (event-loop thread)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        cells = tuple(cell for cell, _ in pending.values())
        waiters = [futures for _, futures in pending.values()]
        spec = SweepSpec.build("service", cells)
        task = asyncio.create_task(self._run_flush(spec, waiters))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _run_flush(
        self, spec: SweepSpec, waiters: list[list[asyncio.Future]]
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            payloads, occupancies, snapshot = await loop.run_in_executor(
                self._pool, solve_spec, spec, self.max_lanes
            )
        except Exception as exc:
            for futures in waiters:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        if self._registry is not None:
            self._registry.merge(snapshot)
            for occupancy in occupancies:
                self._registry.observe("service.batch_occupancy", occupancy)
        for futures, payload in zip(waiters, payloads):
            for future in futures:
                if not future.done():
                    future.set_result(payload)

    async def flush(self) -> None:
        """Flush any pending queries now and wait for in-flight solves."""
        self._flush_now()
        while self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)

    async def aclose(self) -> None:
        """Flush, drain, and release the worker thread."""
        if self._closed:
            return
        self._closed = True
        await self.flush()
        self._pool.shutdown(wait=True)

    @property
    def pending_count(self) -> int:
        """Distinct cells currently waiting for the window (tests)."""
        return len(self._pending)
