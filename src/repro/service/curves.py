"""The service-curve representation ``S = base * delta_shift``.

Statistical service curves in the sense of the paper's Eq. (5) carry an
exponential bounding function ``eps(sigma)``; the deterministic case
(Eq. (3)) is embedded with the identically-zero bounding function.

The factored representation exists because the curves of Theorem 1 are of
the form ``f(t) I(t > theta)`` with ``f(theta+) > 0`` — they *jump* at
``theta``.  A plain piecewise-linear function cannot hold an upward jump,
but the min-plus factorization ``S = base * delta_theta`` (paper Eq. (35):
``S^h = S-tilde * delta_theta``) represents it exactly:

    ``S(t) = 0`` for ``t <= shift``, and ``base(t - shift)`` beyond.

Convolution of two such curves is ``(base1 * base2) * delta_{s1+s2}`` —
shifts add, bases convolve (associativity/commutativity of ``*``).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.algebra.functions import PiecewiseLinear
from repro.algebra.minplus import convolve, horizontal_deviation
from repro.arrivals.statistical import (
    ExponentialBound,
    StatisticalEnvelope,
    combine_bounds,
)
from repro.utils.validation import check_non_negative


class StatisticalServiceCurve:
    """A statistical service curve ``S = base * delta_shift`` with bound.

    Parameters
    ----------
    base:
        Finite piecewise-linear part; must be nonnegative and
        nondecreasing.  ``base(0) > 0`` encodes a jump of ``S`` at
        ``shift``.
    shift:
        Pure-delay component ``delta_shift`` (>= 0).
    bound:
        Exponential bounding function ``eps(sigma)``; the deterministic
        embedding uses prefactor 0.
    """

    __slots__ = ("_base", "_shift", "_bound")

    def __init__(
        self,
        base: PiecewiseLinear,
        shift: float = 0.0,
        bound: ExponentialBound | None = None,
    ) -> None:
        check_non_negative(shift, "shift")
        if base.has_cutoff:
            raise ValueError("the base of a service curve must be finite")
        if not base.is_nondecreasing():
            raise ValueError("a service curve must be nondecreasing")
        if base(0.0) < -1e-12:
            raise ValueError("a service curve must be nonnegative")
        self._base = base
        self._shift = float(shift)
        self._bound = bound if bound is not None else ExponentialBound(0.0, 1.0)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> PiecewiseLinear:
        """The finite piecewise-linear factor."""
        return self._base

    @property
    def shift(self) -> float:
        """The pure-delay factor (``delta_shift``)."""
        return self._shift

    @property
    def bound(self) -> ExponentialBound:
        """The bounding function ``eps(sigma)`` of Eq. (5)."""
        return self._bound

    @property
    def long_term_rate(self) -> float:
        """Asymptotic service rate."""
        return self._base.final_slope

    def is_deterministic(self) -> bool:
        """True for a deterministic (never violated) guarantee."""
        return self._bound.is_deterministic()

    # ------------------------------------------------------------------ #
    # evaluation and algebra
    # ------------------------------------------------------------------ #

    def __call__(self, t: float) -> float:
        """Evaluate ``S(t)``; 0 at and before the shift (the indicator)."""
        if t <= self._shift:
            return 0.0
        return self._base(t - self._shift)

    def convolve(self, other: "StatisticalServiceCurve") -> "StatisticalServiceCurve":
        """Min-plus convolution of two service curves (curves only).

        Note: combining the *bounding functions* across nodes requires the
        per-hop rate-degradation construction of [6] (implemented in
        :mod:`repro.network.convolution`); this method combines the bounds
        with a plain union bound, which is only valid in the deterministic
        case or for single-``t`` statements.  The network analysis does not
        call this method for statistical curves.
        """
        base = convolve(self._base, other._base)
        bound = combine_bounds([self._bound, other._bound])
        return StatisticalServiceCurve(base, self._shift + other._shift, bound)

    def delay_bound(self, envelope: StatisticalEnvelope, sigma: float) -> float:
        """Smallest ``d`` with ``G(t) + sigma <= S(t + d)`` for all t >= 0.

        This is the ``d(sigma)`` of the paper's Eq. (20); combined with the
        bounding functions via Eq. (21) it yields the probabilistic delay
        bound of Eq. (22) (see :func:`repro.singlenode.delay_bound`).
        """
        check_non_negative(sigma, "sigma")
        shifted_env = envelope.curve.add_constant(sigma)
        inner = horizontal_deviation(shifted_env, self._base)
        if math.isinf(inner):
            return math.inf
        return self._shift + inner

    def epsilon(self, sigma: float) -> float:
        """Violation probability at slack ``sigma`` (clipped to [0, 1])."""
        return self._bound.probability(sigma)

    def __repr__(self) -> str:
        kind = "deterministic" if self.is_deterministic() else "statistical"
        return (
            f"StatisticalServiceCurve({kind}, shift={self._shift:g}, "
            f"rate={self.long_term_rate:g})"
        )


def constant_rate_service(rate: float) -> StatisticalServiceCurve:
    """Deterministic service curve of a constant-rate link ``S(t) = C t``."""
    return StatisticalServiceCurve(PiecewiseLinear.constant_rate(rate))


def rate_latency_service(rate: float, latency: float) -> StatisticalServiceCurve:
    """Deterministic rate-latency service curve ``R [t - T]_+``."""
    return StatisticalServiceCurve(PiecewiseLinear.rate_latency(rate, latency))


def delay_service(d: float) -> StatisticalServiceCurve:
    """Deterministic pure-delay service curve ``delta_d`` (paper Eq. (4)).

    Represented with an *unbounded-rate* base: traffic is fully delivered
    ``d`` after arrival.  We encode it as a steep base; for exact
    pure-delay semantics use the factored form in convolutions (the shift
    carries the delay).
    """
    check_non_negative(d, "d")
    return StatisticalServiceCurve(_steep_base(), d)


def _steep_base() -> PiecewiseLinear:
    """A practically-infinite-rate base used by :func:`delay_service`."""
    return PiecewiseLinear.constant_rate(1e12)


def as_callable(curve: StatisticalServiceCurve) -> Callable[[float], float]:
    """Plain callable view of a service curve (for plotting/tests)."""
    return curve
