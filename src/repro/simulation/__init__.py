"""Discrete-time network simulator (empirical validation substrate).

The paper is purely analytical; this package provides the closest
synthetic equivalent of a measurement testbed: a slotted fluid simulator
matching the discrete-time model of Section IV.  Time advances in unit
slots; each flow contributes a fluid chunk per slot; every node is a
work-conserving link of capacity ``C`` per slot whose backlog is drained
in scheduler-precedence order (locally FIFO within each flow).

Schedulers: FIFO, static priority (and BMUX as its special case), EDF —
the Delta-schedulers analyzed by the paper — plus GPS, which is *not* a
Delta-scheduler and is included for empirical contrast.

The validation experiments check that simulated delay quantiles stay below
the analytic bounds at the corresponding violation probability.
"""

from repro.simulation.schedulers import (
    EDFPolicy,
    FIFOPolicy,
    GPSPolicy,
    SchedulerPolicy,
    StaticPriorityPolicy,
    bmux_policy,
)
from repro.simulation.node import Link
from repro.simulation.network import (
    DagNetwork,
    DagResult,
    TandemNetwork,
    TandemResult,
    default_policy_factory,
)
from repro.simulation.metrics import (
    BacklogRecorder,
    DelayRecorder,
    order_statistics_ci,
)
from repro.simulation.vectorized import (
    VECTORIZED_SCHEDULERS,
    delays_between,
    run_tandem_vectorized,
    run_topology_vectorized,
)
from repro.simulation.engine import (
    ENGINES,
    SimulationConfig,
    TrialResult,
    resolve_topology_engine,
    sample_topology_arrivals,
    simulate_tandem_mmoo,
    simulate_tandem_mmoo_trials,
    simulate_topology_mmoo,
    spawn_trial_seeds,
)
from repro.simulation.rare import (
    RareEstimate,
    RareTrialResult,
    TiltedMMOO,
    estimate_tail,
    estimate_tail_from_arrays,
    simulate_tandem_mmoo_rare,
    solve_lundberg_tilt,
    suggest_rare_slots,
)

__all__ = [
    "SchedulerPolicy",
    "FIFOPolicy",
    "StaticPriorityPolicy",
    "EDFPolicy",
    "GPSPolicy",
    "bmux_policy",
    "Link",
    "DagNetwork",
    "DagResult",
    "TandemNetwork",
    "TandemResult",
    "default_policy_factory",
    "DelayRecorder",
    "BacklogRecorder",
    "order_statistics_ci",
    "VECTORIZED_SCHEDULERS",
    "delays_between",
    "run_tandem_vectorized",
    "run_topology_vectorized",
    "ENGINES",
    "SimulationConfig",
    "TrialResult",
    "resolve_topology_engine",
    "sample_topology_arrivals",
    "simulate_tandem_mmoo",
    "simulate_tandem_mmoo_trials",
    "simulate_topology_mmoo",
    "spawn_trial_seeds",
    "TiltedMMOO",
    "RareTrialResult",
    "RareEstimate",
    "estimate_tail",
    "estimate_tail_from_arrays",
    "simulate_tandem_mmoo_rare",
    "solve_lundberg_tilt",
    "suggest_rare_slots",
]
