"""Scheduler policies for the simulator.

Two families:

* **Precedence policies** (:class:`FIFOPolicy`,
  :class:`StaticPriorityPolicy`, :class:`EDFPolicy`) tag each arriving
  chunk with a scalar; the link drains its backlog in increasing tag order
  (ties: node-arrival slot, then sequence number — locally FIFO).  These
  are exactly the Delta-schedulers of the paper: the tag difference
  between two flows' simultaneous arrivals is the constant
  ``Delta_{j,k}``.

* **GPS** (:class:`GPSPolicy`) shares the slot capacity among backlogged
  flows in proportion to their weights (fluid water-filling).  GPS is
  *not* a Delta-scheduler (paper Sec. III); the link implements it with a
  different drain routine.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Hashable, Mapping

from repro.simulation.chunk import Chunk

FlowId = Hashable


class SchedulerPolicy(ABC):
    """Assigns precedence tags to arriving chunks."""

    name: str = "policy"

    #: GPS-style policies are drained by weight sharing, not by tag order.
    is_precedence_based: bool = True

    @abstractmethod
    def tag(self, chunk: Chunk, slot: int) -> float:
        """Precedence value for a chunk arriving at ``slot`` (lower wins)."""

    def delta(self, j: FlowId, k: FlowId) -> float:
        """The implied ``Delta_{j,k}`` (for cross-checks against the
        analysis); ``NaN`` for non-Delta schedulers."""
        return math.nan


class FIFOPolicy(SchedulerPolicy):
    """First-in-first-out: tag = arrival slot (``Delta = 0``)."""

    name = "FIFO"

    def tag(self, chunk: Chunk, slot: int) -> float:
        return float(slot)

    def delta(self, j: FlowId, k: FlowId) -> float:
        return 0.0


class StaticPriorityPolicy(SchedulerPolicy):
    """Static priority; larger priority value = served first.

    The tag is ``-priority`` scaled far above the slot range so priority
    always dominates; within a level the heap's (arrival, seq) tie-break
    gives FIFO.
    """

    name = "SP"

    def __init__(self, priorities: Mapping[FlowId, float]) -> None:
        if not priorities:
            raise ValueError("priorities must not be empty")
        self._priorities = dict(priorities)

    def tag(self, chunk: Chunk, slot: int) -> float:
        return -float(self._priorities[chunk.flow])

    def delta(self, j: FlowId, k: FlowId) -> float:
        pj, pk = self._priorities[j], self._priorities[k]
        if pk < pj:
            return -math.inf
        if pk == pj:
            return 0.0
        return math.inf


def bmux_policy(low_priority_flow: FlowId, flows: list[FlowId]) -> StaticPriorityPolicy:
    """Blind multiplexing: ``low_priority_flow`` below everyone else."""
    priorities = {flow: 1.0 for flow in flows}
    priorities[low_priority_flow] = 0.0
    policy = StaticPriorityPolicy(priorities)
    policy.name = "BMUX"
    return policy


class EDFPolicy(SchedulerPolicy):
    """Earliest deadline first: tag = arrival slot + per-flow deadline.

    Realizes ``Delta_{j,k} = d*_j - d*_k``.
    """

    name = "EDF"

    def __init__(self, deadlines: Mapping[FlowId, float]) -> None:
        if not deadlines:
            raise ValueError("deadlines must not be empty")
        for flow, d in deadlines.items():
            if d < 0 or not math.isfinite(d):
                raise ValueError(f"deadline of {flow!r} must be finite >= 0")
        self._deadlines = dict(deadlines)

    def tag(self, chunk: Chunk, slot: int) -> float:
        return float(slot) + self._deadlines[chunk.flow]

    def delta(self, j: FlowId, k: FlowId) -> float:
        return self._deadlines[j] - self._deadlines[k]


class GPSPolicy(SchedulerPolicy):
    """Generalized processor sharing with per-flow weights.

    Included as the canonical *non*-Delta-scheduler: the share a flow
    receives depends on the random set of currently backlogged flows, so
    no constants ``Delta_{j,k}`` describe its precedence (paper Sec. III).
    """

    name = "GPS"
    is_precedence_based = False

    def __init__(self, weights: Mapping[FlowId, float]) -> None:
        if not weights:
            raise ValueError("weights must not be empty")
        for flow, w in weights.items():
            if w <= 0 or not math.isfinite(w):
                raise ValueError(f"weight of {flow!r} must be finite > 0")
        self.weights = dict(weights)

    def tag(self, chunk: Chunk, slot: int) -> float:
        # GPS ignores tags; keep locally-FIFO order within each flow queue
        return float(slot)
