"""Importance sampling for rare delay events via exponential tilting.

The validation figures compare analytic bounds against simulated delay
quantiles, which caps the reachable violation probability at roughly
``1/slots`` per trial — epsilon ~ 1e-3 with the defaults.  Real
admission-control SLOs live at 1e-6..1e-9, where naive Monte Carlo needs
billions of sample paths.  This module estimates ``P(delay > bound)``
directly with a change of measure on the MMOO modulating chains:

1.  **Tilted chain** (:class:`TiltedMMOO`).  Exponentially twisting the
    two-state kernel ``T`` with the emission vector gives
    ``T_s(i, j) = T(i, j) e^{s r_j}`` whose spectral radius is
    ``exp(s * eb(s))`` — ``eb`` is exactly
    :meth:`repro.arrivals.mmoo.MMOOParameters.effective_bandwidth`.  The
    Doob h-transform of the twisted kernel is again an MMOO chain with
    ``p11~ = p11 / lam`` and ``p22~ = p22 e^{s P} / lam``, so the
    event-driven interval sampler applies unchanged.  At the Lundberg
    tilt ``s*`` (:func:`solve_lundberg_tilt`) the tilted aggregate rate
    crosses the link capacity and backlog drifts *up*.

2.  **Tilt until hit** (Siegmund's algorithm).  Statically tilting the
    whole horizon makes the likelihood-ratio variance exponential in the
    horizon.  Instead each trial samples tilted chains only until the
    stopping time ``tau`` — the first slot where a FIFO-proxy total
    system backlog reaches ``L = capacity * (threshold - margin)`` — and
    re-samples the rest of the horizon from the *base* chains given the
    per-flow states at ``tau``.  Because ``tau`` is a stopping time of
    the arrival filtration, the log likelihood ratio over ``[0, tau]``
    alone makes the weighted estimator unbiased for any margin; the
    margin only has to be large enough that every path with
    ``delay > threshold`` crosses ``L`` first (one slot of backlog per
    hop covers the fluid discretization, hence the ``hops + 1``
    default).

3.  **Weighted estimator** (:func:`estimate_tail`).  Each trial yields
    the exceedance fraction of the through-traffic delay mass and a
    weight ``w = exp(llr)``; the tail estimate is ``mean(w * f)`` with
    an asymptotic and a bootstrap-percentile 95% CI, plus the
    variance-reduction factor versus a Bernoulli naive trial of the same
    probability.

Both simulation engines consume the stitched aggregate arrival arrays,
so the estimator works for every scheduler the engines support.  The
scheme shines when the threshold is *deep* (several slots beyond the
bulk of the delay distribution); in the bulk the weights are
heavy-tailed and naive sampling is the right tool — the validation
layer picks the method per epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import intervals_to_aggregate, mmoo_on_intervals
from repro.simulation.engine import SimulationConfig, _policy_factory
from repro.simulation.network import TandemNetwork, TandemResult
from repro.simulation.vectorized import _serve_fifo, run_tandem_vectorized
from repro.utils.numeric import bisect_increasing, safe_exp
from repro.utils.validation import check_int, check_positive

#: Extra slots beyond the expected hitting time in :func:`suggest_rare_slots`,
#: so the post-hit episode fully plays out at the base measure.
_HORIZON_PADDING = 200


@dataclass(frozen=True)
class TiltedMMOO:
    """An exponentially tilted MMOO chain and its change-of-measure data.

    Attributes
    ----------
    base:
        The original (sampling-target) chain.
    tilt:
        The tilt parameter ``s > 0``.
    params:
        The tilted chain — again a valid :class:`MMOOParameters`, so the
        event-driven sampler runs on it unchanged.
    log_radius:
        ``log lam(s) = s * eb(s)``, the log spectral radius of the
        twisted kernel.
    """

    base: MMOOParameters
    tilt: float
    params: MMOOParameters
    log_radius: float

    @classmethod
    def from_tilt(cls, base: MMOOParameters, tilt: float) -> "TiltedMMOO":
        """Construct the tilted chain for tilt ``s`` from the MGF machinery.

        The twisted kernel's Perron eigenvalue is
        ``lam = exp(s * eb(s))`` with ``eb`` the effective bandwidth; the
        h-transformed transition probabilities are ``p11 / lam`` and
        ``p22 * e^{s P} / lam``.  The result is a stochastic matrix
        whenever the base chain is bursty (``p12 + p21 <= 1``), which
        holds for every utilization the paper considers.
        """
        check_positive(tilt, "tilt")
        log_radius = tilt * base.effective_bandwidth(tilt)
        lam = safe_exp(log_radius)
        p11 = base.p11 / lam
        p22 = base.p22 * safe_exp(tilt * base.peak) / lam
        try:
            params = MMOOParameters(peak=base.peak, p11=p11, p22=p22)
        except ValueError as exc:
            raise ValueError(
                f"tilt {tilt:g} does not yield a valid MMOO chain for "
                f"{base!r} (needs a bursty base chain): {exc}"
            ) from exc
        return cls(base=base, tilt=tilt, params=params, log_radius=log_radius)

    @property
    def transition_log_ratios(self) -> tuple[float, float, float, float]:
        """``log(p_ij / p~_ij)`` for (11, 12, 21, 22) — the LLR atoms."""
        b, t = self.base, self.params
        return (
            math.log(b.p11 / t.p11),
            math.log(b.p12 / t.p12),
            math.log(b.p21 / t.p21),
            math.log(b.p22 / t.p22),
        )


def solve_lundberg_tilt(
    traffic: MMOOParameters,
    n_flows: int,
    capacity: float,
    *,
    tol: float = 1e-10,
) -> float:
    """The Lundberg tilt ``s*``: ``n_flows * eb(s*) = capacity``.

    At ``s*`` the tilted aggregate mean rate exceeds the link capacity,
    so backlog drifts upward and hitting a deep level takes linear
    instead of exponential time.  ``n_flows`` is the *total* flow count
    feeding one link (through + cross).
    """
    check_int(n_flows, "n_flows", minimum=1)
    check_positive(capacity, "capacity")
    if n_flows * traffic.peak <= capacity:
        raise ValueError(
            f"aggregate peak rate {n_flows * traffic.peak:g} never exceeds "
            f"capacity {capacity:g}; backlog cannot build and the delay "
            "tail probability is zero"
        )
    if n_flows * traffic.mean_rate >= capacity:
        raise ValueError(
            f"aggregate mean rate {n_flows * traffic.mean_rate:g} meets or "
            f"exceeds capacity {capacity:g}; the system is unstable and "
            "has no Lundberg tilt"
        )
    high = 1.0
    while n_flows * traffic.effective_bandwidth(high) < capacity:
        high *= 2.0
    return bisect_increasing(
        lambda s: n_flows * traffic.effective_bandwidth(s),
        capacity,
        1e-12,
        high,
        tol=tol,
    )


def window_transition_counts(
    starts: np.ndarray, ends: np.ndarray, n_flows: int, upto: int
) -> tuple[int, int, int, int]:
    """Aggregate transition counts ``(n11, n12, n21, n22)`` over ``[0, upto)``.

    Computed from the interval representation of ``n_flows`` chains: an
    interval starting at ``t >= 1`` is one OFF→ON transition, an interval
    ending before the window edge is one ON→OFF transition, and every
    interior ON slot pair is one ON→ON transition; the OFF→OFF count is
    the remainder of the ``n_flows * (upto - 1)`` transition pairs.
    """
    keep = starts < upto
    clipped_starts = starts[keep]
    clipped_ends = np.minimum(ends[keep], upto)
    n12 = int(np.count_nonzero(clipped_starts >= 1))
    n21 = int(np.count_nonzero(clipped_ends < upto))
    n22 = int(np.sum(clipped_ends - clipped_starts - 1))
    n11 = n_flows * (upto - 1) - n12 - n21 - n22
    return n11, n12, n21, n22


def window_log_likelihood_ratio(
    tilted: TiltedMMOO,
    starts: np.ndarray,
    ends: np.ndarray,
    n_flows: int,
    upto: int,
) -> float:
    """``log dP/dQ`` of ``n_flows`` chain paths over slots ``[0, upto)``.

    Transitions only: the initial slot-0 states are drawn from the base
    law under both measures, so they cancel.
    """
    n11, n12, n21, n22 = window_transition_counts(starts, ends, n_flows, upto)
    r11, r12, r21, r22 = tilted.transition_log_ratios
    return n11 * r11 + n12 * r12 + n21 * r21 + n22 * r22


def states_at(
    flows: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    slot: int,
    n_flows: int,
) -> np.ndarray:
    """Per-flow ON/OFF states at ``slot``, recovered from the intervals."""
    on = np.zeros(n_flows, dtype=bool)
    inside = (starts <= slot) & (slot < ends)
    on[flows[inside]] = True
    return on


def suggest_rare_slots(
    tilted: TiltedMMOO,
    n_flows: int,
    capacity: float,
    threshold: float,
) -> int:
    """Horizon long enough to hit ``capacity * threshold`` and drain.

    Expected hitting time under the tilted drift, plus the threshold
    itself (the exceeding bits still need to traverse) and fixed padding
    for the base-measure epilogue.
    """
    drift = n_flows * tilted.params.mean_rate - capacity
    if drift <= 0:
        raise ValueError(
            f"tilted aggregate rate {n_flows * tilted.params.mean_rate:g} "
            f"does not exceed capacity {capacity:g}; raise the tilt"
        )
    return int(capacity * threshold / drift + threshold + _HORIZON_PADDING)


@dataclass(frozen=True)
class RareTrialResult:
    """One importance-sampled trial.

    Attributes
    ----------
    seed:
        The trial's RNG seed.
    log_weight:
        ``log dP/dQ`` of the sampled prefix ``[0, tau]``.
    tau:
        The stopping slot (``slots - 1`` when the proxy never crossed).
    result:
        The scheduler simulation on the stitched sample path.
    """

    seed: int
    log_weight: float
    tau: int
    result: TandemResult

    def weighted_exceed_fraction(self, threshold: float) -> float:
        """``w * f``: the trial's contribution to ``P(delay > threshold)``."""
        fraction = self.result.through_delays.exceed_fraction(threshold)
        if fraction == 0.0:
            return 0.0
        return safe_exp(self.log_weight) * fraction


def default_margin(hops: int) -> float:
    """Stopping-level safety margin in delay slots: one per hop plus one.

    Every path with end-to-end delay beyond ``threshold`` must carry at
    least ``capacity * (threshold - hops - 1)`` of total backlog at some
    slot, so stopping that far below the event boundary keeps the
    estimator's weights bounded while staying out of the bulk.
    """
    return float(hops + 1)


def simulate_tandem_mmoo_rare(
    config: SimulationConfig,
    threshold: float,
    *,
    tilted: TiltedMMOO | None = None,
    margin: float | None = None,
) -> RareTrialResult:
    """Run one tilt-until-hit trial of ``config`` for level ``threshold``.

    Mirrors :func:`repro.simulation.engine.simulate_tandem_mmoo` — same
    topology, same schedulers, same engines — but samples the through
    and cross aggregates from the tilted chain until the stopping time
    and returns the trial's log likelihood-ratio weight alongside the
    simulation result.  ``threshold`` is the delay level (in slots) the
    estimator targets; ``config.slots`` should come from
    :func:`suggest_rare_slots` unless a specific horizon is wanted.
    """
    check_positive(threshold, "threshold")
    n_flows_link = config.n_through + config.n_cross
    if tilted is None:
        tilted = TiltedMMOO.from_tilt(
            config.traffic,
            solve_lundberg_tilt(config.traffic, n_flows_link, config.capacity),
        )
    if margin is None:
        margin = default_margin(config.hops)
    level = config.capacity * max(threshold - margin, 1.0)
    n_slots = config.slots

    rng = np.random.default_rng(config.seed)
    counts = [config.n_through] + [config.n_cross] * config.hops
    sampled = []
    with obs.trace("rare.sample_tilted"):
        for n_flows in counts:
            if n_flows == 0:
                sampled.append(None)
                continue
            initial = rng.random(n_flows) < config.traffic.on_probability
            flows, starts, ends = mmoo_on_intervals(
                tilted.params, n_flows, n_slots, rng, initial_on=initial
            )
            arrivals = intervals_to_aggregate(
                starts, ends, n_slots, config.traffic.peak
            )
            sampled.append((flows, starts, ends, arrivals))

    tau = _stopping_slot(sampled, config, level)

    log_weight = 0.0
    stitched: list[np.ndarray] = []
    tail_slots = n_slots - tau - 1
    with obs.trace("rare.stitch_base_tail"):
        for n_flows, agg in zip(counts, sampled):
            if agg is None:
                stitched.append(np.zeros(n_slots))
                continue
            flows, starts, ends, arrivals = agg
            log_weight += window_log_likelihood_ratio(
                tilted, starts, ends, n_flows, tau + 1
            )
            if tail_slots > 0:
                on_tau = states_at(flows, starts, ends, tau, n_flows)
                # one base-kernel step into slot tau+1, then the
                # event-driven sampler resumes from those states
                step = rng.random(n_flows)
                on_next = np.where(
                    on_tau,
                    step < config.traffic.p22,
                    step < config.traffic.p12,
                )
                _, tail_starts, tail_ends = mmoo_on_intervals(
                    config.traffic, n_flows, tail_slots, rng,
                    initial_on=on_next,
                )
                tail = intervals_to_aggregate(
                    tail_starts, tail_ends, tail_slots, config.traffic.peak
                )
                arrivals = np.concatenate([arrivals[: tau + 1], tail])
            stitched.append(arrivals)

    with obs.trace(f"rare.run.{config.engine}"):
        if config.engine == "vectorized":
            result = run_tandem_vectorized(
                stitched[0],
                stitched[1:],
                capacity=config.capacity,
                scheduler=config.scheduler,
                edf_deadline_through=config.edf_deadline_through,
                edf_deadline_cross=config.edf_deadline_cross,
            )
        else:
            network = TandemNetwork(
                config.capacity,
                config.hops,
                _policy_factory(config),
                preemptive=config.preemptive,
                packet_size=config.packet_size,
            )
            result = network.run(stitched[0], stitched[1:])
    if obs.enabled():
        obs.add("rare.trials")
        obs.observe("rare.tau", float(tau))
    return RareTrialResult(
        seed=config.seed, log_weight=log_weight, tau=tau, result=result
    )


def _stopping_slot(
    sampled: list[tuple | None], config: SimulationConfig, level: float
) -> int:
    """First slot where the FIFO-proxy total system backlog reaches
    ``level`` (the last slot when it never does).

    The proxy chains the closed-form FIFO node recursion over the hops;
    per-slot backlog at slot ``t`` depends only on arrivals up to ``t``,
    so the crossing slot is a stopping time of the arrival filtration —
    the property the likelihood-ratio clipping relies on.  For non-FIFO
    schedulers the proxy still bounds where total backlog can build
    (work-conserving links serve identical aggregate fluid), it only
    stops being the exact per-bit delay map.
    """
    n_slots = config.slots
    through = sampled[0][3] if sampled[0] is not None else np.zeros(n_slots)
    total_backlog = np.zeros(n_slots)
    node_in = through
    for hop in range(config.hops):
        cross_agg = sampled[1 + hop]
        cross = (
            cross_agg[3] if cross_agg is not None else np.zeros(n_slots)
        )
        through_dep, _, backlog = _serve_fifo(
            node_in[:n_slots], cross, config.capacity
        )
        total_backlog += backlog[:n_slots]
        node_in = np.concatenate([[0.0], through_dep])
    crossed = np.nonzero(total_backlog >= level)[0]
    return int(crossed[0]) if len(crossed) else n_slots - 1


@dataclass(frozen=True)
class RareEstimate:
    """Weighted tail estimate with 95% confidence intervals.

    Attributes
    ----------
    probability:
        ``mean(w_i * f_i)`` — unbiased for ``P(delay > threshold)``.
    std_error:
        Asymptotic standard error ``std(w * f) / sqrt(n)``.
    ci_low, ci_high:
        Asymptotic 95% normal interval, clipped below at 0.
    boot_ci_low, boot_ci_high:
        Bootstrap percentile 95% interval (robust to the skewed weight
        distribution of importance sampling).
    n_trials:
        Trials aggregated.
    hit_rate:
        Fraction of trials with a nonzero exceedance.
    variance_reduction:
        ``p(1-p) / var(w * f)`` — how many naive Bernoulli trials one
        weighted trial is worth.  ``inf`` when every trial agrees.
    log_weight_std:
        Spread of the log weights; values beyond ~3 signal an
        over-tilted or bulk-threshold run whose estimate is unreliable.
    """

    probability: float
    std_error: float
    ci_low: float
    ci_high: float
    boot_ci_low: float
    boot_ci_high: float
    n_trials: int
    hit_rate: float
    variance_reduction: float
    log_weight_std: float

    @property
    def rel_half_width(self) -> float:
        """95% CI half-width relative to the estimate (``inf`` at 0)."""
        if self.probability <= 0.0:
            return math.inf
        return 1.96 * self.std_error / self.probability


def estimate_tail(
    trials: Sequence[RareTrialResult],
    threshold: float,
    *,
    bootstrap_resamples: int = 1000,
    bootstrap_seed: int = 0,
) -> RareEstimate:
    """Aggregate weighted trials into a tail-probability estimate.

    The bootstrap is seeded for reproducibility; the artifact records
    both interval flavors so consumers can prefer the percentile one
    when the weight distribution is visibly skewed.
    """
    if not trials:
        raise ValueError("estimate_tail needs at least one trial")
    return estimate_tail_from_arrays(
        [t.log_weight for t in trials],
        [t.result.through_delays.exceed_fraction(threshold) for t in trials],
        bootstrap_resamples=bootstrap_resamples,
        bootstrap_seed=bootstrap_seed,
    )


def estimate_tail_from_arrays(
    log_weights: Sequence[float],
    exceed_fractions: Sequence[float],
    *,
    bootstrap_resamples: int = 1000,
    bootstrap_seed: int = 0,
) -> RareEstimate:
    """:func:`estimate_tail` on pre-extracted per-trial arrays.

    The experiments layer stores trials as JSON rows (log weight and
    exceedance fraction per trial) so cached sweep cells stay cheap;
    this entry point re-aggregates them without the simulation objects.
    """
    log_weights = np.asarray(log_weights, dtype=float)
    fractions = np.asarray(exceed_fractions, dtype=float)
    if log_weights.size == 0 or log_weights.shape != fractions.shape:
        raise ValueError(
            "log_weights and exceed_fractions must be equal-length and "
            "non-empty"
        )
    values = np.zeros_like(fractions)
    hits = fractions > 0.0
    values[hits] = np.exp(log_weights[hits]) * fractions[hits]
    n = len(values)
    probability = float(values.mean())
    std_error = float(values.std() / math.sqrt(n))
    variance = float(values.var())
    if variance > 0.0 and 0.0 < probability < 1.0:
        variance_reduction = probability * (1.0 - probability) / variance
    else:
        variance_reduction = math.inf
    rng = np.random.default_rng(bootstrap_seed)
    resample_means = values[
        rng.integers(0, n, size=(bootstrap_resamples, n))
    ].mean(axis=1)
    boot_low, boot_high = np.percentile(resample_means, [2.5, 97.5])
    if obs.enabled():
        obs.add("rare.trials_spent", float(n))
        if math.isfinite(variance_reduction):
            obs.set_gauge("rare.variance_reduction", variance_reduction)
    return RareEstimate(
        probability=probability,
        std_error=std_error,
        ci_low=max(0.0, probability - 1.96 * std_error),
        ci_high=probability + 1.96 * std_error,
        boot_ci_low=float(boot_low),
        boot_ci_high=float(boot_high),
        n_trials=n,
        hit_rate=float(np.mean(values > 0.0)),
        variance_reduction=variance_reduction,
        log_weight_std=float(log_weights.std()),
    )
