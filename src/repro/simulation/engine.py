"""High-level simulation entry point for the paper's MMOO workloads.

:func:`simulate_tandem_mmoo` wires together the MMOO sample-path
generators, the Fig. 1 tandem topology and a scheduler family, and returns
the measured through-traffic delay distribution — one call per
(scheduler, utilization, path length) cell of a validation experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Literal, Sequence

import numpy as np

from repro import obs
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import mmoo_aggregate_arrivals
from repro.simulation.network import (
    DagNetwork,
    DagResult,
    TandemNetwork,
    TandemResult,
)
from repro.simulation.schedulers import (
    EDFPolicy,
    FIFOPolicy,
    GPSPolicy,
    SchedulerPolicy,
    StaticPriorityPolicy,
    bmux_policy,
)
from repro.simulation.vectorized import (
    VECTORIZED_SCHEDULERS,
    run_tandem_vectorized,
    run_topology_vectorized,
)
from repro.topology.model import Topology
from repro.utils.validation import check_int, check_positive

SchedulerName = Literal["fifo", "bmux", "edf", "sp", "gps"]
EngineName = Literal["chunk", "vectorized"]

#: Available simulation engines: the exact chunk-level simulator and the
#: vectorized fluid fast path (see :mod:`repro.simulation.vectorized`).
ENGINES = ("chunk", "vectorized")


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a tandem MMOO simulation run.

    Attributes
    ----------
    traffic:
        The per-flow MMOO parameters (paper defaults: 1.5 kbit peak).
    n_through, n_cross:
        Flow counts of the through and per-node cross aggregates.
    hops:
        Path length ``H``.
    capacity:
        Link rate per slot (kbit per ms at the paper's units).
    slots:
        Number of arrival slots to simulate.
    scheduler:
        One of ``"fifo"``, ``"bmux"``, ``"edf"``, ``"sp"``, ``"gps"``.
    preemptive:
        ``False`` switches the links to the non-preemptive packet model
        (a started chunk finishes first and departs whole); requires a
        precedence-based scheduler.
    packet_size:
        Split each slot's aggregate arrivals into packets of this size
        (e.g. the MMOO peak emission 1.5 kbit) before offering them.
    edf_deadline_through, edf_deadline_cross:
        Per-node EDF deadline offsets (slots); only used for ``"edf"``.
    gps_weight_through, gps_weight_cross:
        GPS weights; only used for ``"gps"``.
    seed:
        RNG seed for reproducibility.
    """

    traffic: MMOOParameters
    n_through: int
    n_cross: int
    hops: int
    capacity: float
    slots: int
    scheduler: SchedulerName = "fifo"
    edf_deadline_through: float = 1.0
    edf_deadline_cross: float = 10.0
    gps_weight_through: float = 1.0
    gps_weight_cross: float = 1.0
    seed: int = 0
    preemptive: bool = True
    packet_size: float | None = None
    engine: EngineName = "chunk"

    def __post_init__(self) -> None:
        check_int(self.n_through, "n_through", minimum=1)
        check_int(self.n_cross, "n_cross", minimum=0)
        check_int(self.hops, "hops", minimum=1)
        check_int(self.slots, "slots", minimum=1)
        check_positive(self.capacity, "capacity")
        if self.scheduler not in ("fifo", "bmux", "edf", "sp", "gps"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if not self.preemptive and self.scheduler == "gps":
            raise ValueError("GPS is inherently preemptive (fluid)")
        if self.packet_size is not None and self.packet_size <= 0:
            raise ValueError("packet_size must be > 0")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r} (one of {ENGINES})")
        if self.engine == "vectorized":
            if self.scheduler not in VECTORIZED_SCHEDULERS:
                raise ValueError(
                    f"the vectorized engine supports {VECTORIZED_SCHEDULERS}; "
                    f"use engine='chunk' for {self.scheduler!r}"
                )
            if not self.preemptive:
                raise ValueError(
                    "the vectorized engine models preemptive fluid links; "
                    "use engine='chunk' for the non-preemptive packet model"
                )
            if self.packet_size is not None:
                raise ValueError(
                    "the vectorized engine has no packet granularity; "
                    "use engine='chunk' with packet_size"
                )


def _policy_factory(config: SimulationConfig):
    def factory(through_id: str, cross_id: str) -> SchedulerPolicy:
        if config.scheduler == "fifo":
            return FIFOPolicy()
        if config.scheduler == "bmux":
            return bmux_policy(through_id, [through_id, cross_id])
        if config.scheduler == "sp":
            # through traffic strictly prioritized (the BMUX mirror image)
            return StaticPriorityPolicy({through_id: 1.0, cross_id: 0.0})
        if config.scheduler == "edf":
            return EDFPolicy(
                {
                    through_id: config.edf_deadline_through,
                    cross_id: config.edf_deadline_cross,
                }
            )
        return GPSPolicy(
            {
                through_id: config.gps_weight_through,
                cross_id: config.gps_weight_cross,
            }
        )

    return factory


def simulate_tandem_mmoo(config: SimulationConfig) -> TandemResult:
    """Run one tandem simulation and return the measured delays.

    The through aggregate and each node's cross aggregate are independent
    sets of MMOO flows drawn from ``config.traffic`` with stationary
    initial states.  Both engines consume the same sampled arrival
    arrays, so for a given seed they simulate the same sample path.
    """
    with obs.trace("simulation.sample_arrivals"):
        rng = np.random.default_rng(config.seed)
        through = mmoo_aggregate_arrivals(
            config.traffic, config.n_through, config.slots, rng
        )
        cross_rows = []
        for _ in range(config.hops):
            if config.n_cross > 0:
                cross_rows.append(
                    mmoo_aggregate_arrivals(
                        config.traffic, config.n_cross, config.slots, rng
                    )
                )
            else:
                cross_rows.append(np.zeros(config.slots))
    start = time.perf_counter()
    with obs.trace(f"simulation.run.{config.engine}"):
        if config.engine == "vectorized":
            result = run_tandem_vectorized(
                through,
                cross_rows,
                capacity=config.capacity,
                scheduler=config.scheduler,
                edf_deadline_through=config.edf_deadline_through,
                edf_deadline_cross=config.edf_deadline_cross,
            )
        else:
            network = TandemNetwork(
                config.capacity,
                config.hops,
                _policy_factory(config),
                preemptive=config.preemptive,
                packet_size=config.packet_size,
            )
            result = network.run(through, cross_rows)
    if obs.enabled():
        elapsed = time.perf_counter() - start
        obs.add(f"simulation.{config.engine}.runs")
        obs.add(f"simulation.{config.engine}.slots", config.slots)
        if elapsed > 0.0:
            obs.observe(
                f"simulation.{config.engine}.slots_per_s",
                config.slots / elapsed,
            )
    return result


def resolve_topology_engine(
    topology: Topology,
    engine: str,
    *,
    preemptive: bool = True,
    packet_size: float | None = None,
) -> str:
    """Resolve an engine selector for a topology simulation.

    ``"auto"`` picks the vectorized fast path whenever it applies — a
    line (tandem) topology with a vectorized scheduler, or an all-FIFO
    DAG — and the chunk engine otherwise.  An explicit ``"vectorized"``
    raises if the topology/scheduler combination has no vectorized
    implementation.
    """
    if engine not in ("auto",) + ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (one of {('auto',) + ENGINES})"
        )
    fluid = preemptive and packet_size is None
    tandem = topology.as_tandem()
    vectorizable = fluid and (
        (tandem is not None and tandem.scheduler in VECTORIZED_SCHEDULERS)
        or all(n.scheduler == "fifo" for n in topology.nodes)
    )
    if engine == "auto":
        return "vectorized" if vectorizable else "chunk"
    if engine == "vectorized" and not vectorizable:
        raise ValueError(
            "the vectorized engine covers line topologies with schedulers "
            f"{VECTORIZED_SCHEDULERS} and all-FIFO DAGs (preemptive fluid "
            "only); use engine='chunk' for this topology"
        )
    return engine


def sample_topology_arrivals(
    topology: Topology,
    traffic: MMOOParameters,
    slots: int,
    seed: int,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Sample per-route and per-node-cross MMOO arrival arrays.

    One RNG stream seeded at ``seed`` draws every route aggregate in
    route declaration order, then every node-local cross aggregate in
    node declaration order (nodes with ``n_cross = 0`` consume no
    draws).  For a :meth:`Topology.line` this is exactly the draw order
    of :func:`simulate_tandem_mmoo` — same seed, same sample path.
    """
    check_int(slots, "slots", minimum=1)
    rng = np.random.default_rng(seed)
    route_arrivals = {
        route.name: mmoo_aggregate_arrivals(
            traffic, route.n_flows, slots, rng
        )
        for route in topology.routes
    }
    cross_arrivals = {}
    for node in topology.nodes:
        if node.n_cross > 0:
            cross_arrivals[node.name] = mmoo_aggregate_arrivals(
                traffic, node.n_cross, slots, rng
            )
        else:
            cross_arrivals[node.name] = np.zeros(slots)
    return route_arrivals, cross_arrivals


def simulate_topology_mmoo(
    topology: Topology,
    traffic: MMOOParameters,
    slots: int,
    seed: int,
    *,
    engine: str = "auto",
    preemptive: bool = True,
    packet_size: float | None = None,
    record_backlog: bool = False,
) -> DagResult:
    """Run one feed-forward topology simulation with MMOO workloads.

    Each route and each node's local cross descriptor becomes an
    independent MMOO aggregate (see :func:`sample_topology_arrivals`);
    node schedulers come from the topology's :class:`NodeSpec`\\ s.  For
    a line topology this reproduces :func:`simulate_tandem_mmoo`
    byte-for-byte on either engine; general DAGs run the topological
    chunk loop or, when all nodes are FIFO, the vectorized DAG engine.
    """
    resolved = resolve_topology_engine(
        topology, engine, preemptive=preemptive, packet_size=packet_size
    )
    with obs.trace("simulation.sample_arrivals"):
        route_arrivals, cross_arrivals = sample_topology_arrivals(
            topology, traffic, slots, seed
        )
    start = time.perf_counter()
    with obs.trace(f"simulation.run.{resolved}"):
        tandem = topology.as_tandem()
        if resolved == "vectorized" and tandem is not None:
            route = topology.routes[0]
            cross_rows = [
                cross_arrivals[n.name] for n in topology.nodes
            ]
            tandem_result = run_tandem_vectorized(
                route_arrivals[route.name],
                cross_rows,
                capacity=tandem.capacity,
                scheduler=tandem.scheduler,
                edf_deadline_through=tandem.edf_deadline_through,
                edf_deadline_cross=tandem.edf_deadline_cross,
                record_backlog=record_backlog,
            )
            result = _tandem_to_dag(tandem_result, topology)
        elif resolved == "vectorized":
            result = run_topology_vectorized(
                topology, route_arrivals, cross_arrivals,
                record_backlog=record_backlog,
            )
        else:
            network = DagNetwork(
                topology, preemptive=preemptive, packet_size=packet_size
            )
            result = network.run(
                route_arrivals, cross_arrivals,
                record_backlog=record_backlog,
            )
    if obs.enabled():
        elapsed = time.perf_counter() - start
        obs.add(f"simulation.{resolved}.runs")
        obs.add(f"simulation.{resolved}.slots", slots)
        if elapsed > 0.0:
            obs.observe(
                f"simulation.{resolved}.slots_per_s", slots / elapsed
            )
    return result


def _tandem_to_dag(result: TandemResult, topology: Topology) -> DagResult:
    """Repackage a tandem fast-path result under the topology's names."""
    route = topology.routes[0]
    names = [node.name for node in topology.nodes]
    return DagResult(
        route_delays={route.name: result.through_delays},
        cross_delays=dict(zip(names, result.cross_delays)),
        node_backlogs=dict(zip(names, result.node_backlogs)),
        slots=result.slots,
        topology=topology,
    )


def spawn_trial_seeds(root_seed: int, n_trials: int) -> tuple[int, ...]:
    """Independent per-trial seeds spawned from a root ``SeedSequence``.

    Deterministic in ``(root_seed, n_trials)`` and prefix-stable: the
    first ``k`` seeds of ``n_trials = m >= k`` equal the seeds of
    ``n_trials = k``, so raising the trial count only *adds* trials —
    cached trial cells of a previous, smaller run stay valid.
    """
    check_int(n_trials, "n_trials", minimum=1)
    state = np.random.SeedSequence(root_seed).generate_state(
        n_trials, dtype=np.uint64
    )
    return tuple(int(s) for s in state)


@dataclass(frozen=True)
class TrialResult:
    """One Monte Carlo trial: the seed it ran under and its measurements."""

    seed: int
    result: TandemResult


def _simulate_trial(args: tuple[SimulationConfig, int]) -> TrialResult:
    """Top-level trial runner (picklable for process-pool executors)."""
    config, seed = args
    return TrialResult(seed=seed, result=simulate_tandem_mmoo(replace(config, seed=seed)))


def simulate_tandem_mmoo_trials(
    config: SimulationConfig,
    n_trials: int,
    *,
    executor: object | None = None,
) -> list[TrialResult]:
    """Run ``n_trials`` independent simulations of ``config``.

    Per-trial seeds come from :func:`spawn_trial_seeds` rooted at
    ``config.seed``; ``executor`` may be anything with a
    ``map(fn, iterable)`` method (e.g. the experiments layer's
    ``SerialExecutor`` / ``ParallelExecutor``) and defaults to an
    in-process loop.
    """
    seeds = spawn_trial_seeds(config.seed, n_trials)
    jobs = [(config, seed) for seed in seeds]
    if executor is None:
        return [_simulate_trial(job) for job in jobs]
    mapper: Callable[..., Sequence[TrialResult]] = executor.map  # type: ignore[attr-defined]
    return list(mapper(_simulate_trial, jobs))
