"""Tandem networks in the paper's Fig. 1 topology.

A through flow traverses ``H`` identical links; fresh cross traffic joins
at each node and leaves right after it.  Store-and-forward timing: fluid
served at node ``h`` in slot ``t`` arrives at node ``h+1`` in slot
``t + 1`` (a conservative +1-per-hop with respect to the analysis' fluid
cut-through convention; validation comparisons account for it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.simulation.chunk import Chunk
from repro.simulation.metrics import BacklogRecorder, DelayRecorder
from repro.simulation.node import Link
from repro.simulation.schedulers import SchedulerPolicy
from repro.utils.validation import check_int

FlowId = Hashable

THROUGH = "through"


def cross_flow_id(node_index: int) -> str:
    """Flow identifier of the cross aggregate joining at node ``node_index``."""
    return f"cross{node_index}"


@dataclass
class TandemResult:
    """Collected measurements of a tandem run."""

    through_delays: DelayRecorder
    node_backlogs: tuple[BacklogRecorder, ...]
    cross_delays: tuple[DelayRecorder, ...]
    slots: int
    hops: int


class TandemNetwork:
    """The Fig. 1 topology: ``hops`` links, per-node fresh cross traffic.

    Parameters
    ----------
    capacity:
        Per-slot link rate (same at each node).
    policy_factory:
        Called once per node with the node's flow identifiers
        ``(THROUGH, cross_flow_id(h))`` and must return the node's
        :class:`SchedulerPolicy`.
    hops:
        Path length ``H``.
    """

    def __init__(
        self,
        capacity: float,
        hops: int,
        policy_factory: Callable[[str, str], SchedulerPolicy],
        *,
        preemptive: bool = True,
        packet_size: float | None = None,
    ) -> None:
        self.hops = check_int(hops, "hops", minimum=1)
        self.capacity = float(capacity)
        self.preemptive = bool(preemptive)
        if packet_size is not None and packet_size <= 0:
            raise ValueError("packet_size must be > 0")
        self.packet_size = packet_size
        self.links = [
            Link(
                capacity,
                policy_factory(THROUGH, cross_flow_id(h)),
                preemptive=preemptive,
            )
            for h in range(hops)
        ]

    def _offer(self, link: Link, flow, amount: float, origin: int, slot: int) -> None:
        """Offer ``amount`` as one chunk, or as packets of ``packet_size``."""
        if self.packet_size is None:
            link.offer(Chunk(flow, amount, origin), slot)
            return
        remaining = amount
        while remaining > 1e-12:
            piece = min(self.packet_size, remaining)
            link.offer(Chunk(flow, piece, origin), slot)
            remaining -= piece

    def run(
        self,
        through_arrivals: Sequence[float],
        cross_arrivals: Sequence[Sequence[float]],
        *,
        drain: bool = True,
        record_backlog: bool = False,
    ) -> TandemResult:
        """Simulate the tandem on per-slot arrival arrays.

        Parameters
        ----------
        through_arrivals:
            ``through_arrivals[t]`` = through fluid entering node 1 at
            slot ``t``.
        cross_arrivals:
            ``cross_arrivals[h][t]`` = cross fluid entering node ``h+1``
            at slot ``t``; must have ``hops`` rows.
        drain:
            Keep simulating (without new arrivals) until all through
            traffic has left the network, so every bit's delay is
            measured.
        record_backlog:
            Collect per-slot backlog samples at every node.
        """
        through = np.asarray(through_arrivals, dtype=float)
        cross = [np.asarray(row, dtype=float) for row in cross_arrivals]
        if len(cross) != self.hops:
            raise ValueError(
                f"need {self.hops} cross arrival rows, got {len(cross)}"
            )
        n_slots = len(through)
        if any(len(row) != n_slots for row in cross):
            raise ValueError("all arrival arrays must have equal length")

        through_rec = DelayRecorder()
        cross_recs = tuple(DelayRecorder() for _ in range(self.hops))
        backlog_recs = tuple(BacklogRecorder() for _ in range(self.hops))

        # chunks in flight toward node h at the next slot
        in_transit: list[list[Chunk]] = [[] for _ in range(self.hops)]
        slot = 0
        pending = 0.0  # through fluid still inside the network
        while slot < n_slots or pending > 1e-6:
            if drain is False and slot >= n_slots:
                break
            # fresh external arrivals; cross traffic is offered first so
            # FIFO ties within a slot resolve *against* the through flow —
            # the adversarial convention under which greedy envelope
            # patterns attain the worst-case bounds (Theorem 2), and a
            # conservative one for validating probabilistic bounds
            if slot < n_slots:
                for h in range(self.hops):
                    if cross[h][slot] > 0:
                        self._offer(
                            self.links[h], cross_flow_id(h),
                            float(cross[h][slot]), slot, slot,
                        )
                if through[slot] > 0:
                    self._offer(
                        self.links[0], THROUGH, float(through[slot]), slot, slot
                    )
                    pending += float(through[slot])
            # forwarded arrivals from the previous slot
            for h in range(self.hops):
                for chunk in in_transit[h]:
                    self.links[h].offer(chunk, slot)
                in_transit[h] = []
            # serve every link
            for h, link in enumerate(self.links):
                departed = link.advance(slot)
                for chunk in departed:
                    if chunk.flow == THROUGH:
                        if h + 1 < self.hops:
                            in_transit[h + 1].append(
                                Chunk(THROUGH, chunk.size, chunk.origin_slot)
                            )
                        else:
                            through_rec.record(
                                slot - chunk.origin_slot, chunk.size
                            )
                            pending -= chunk.size
                    else:
                        cross_recs[h].record(slot - chunk.origin_slot, chunk.size)
                if record_backlog:
                    backlog_recs[h].record(link.backlog())
            slot += 1
            if slot > n_slots + 1_000_000:  # pragma: no cover - safety valve
                raise RuntimeError("simulation failed to drain")

        return TandemResult(
            through_rec, backlog_recs, cross_recs, n_slots, self.hops
        )
