"""Feed-forward networks of store-and-forward links (chunk engine).

The general simulator is :class:`DagNetwork`: a slot loop in topological
order over any validated :class:`repro.topology.Topology` — routes
traverse their node sequences, node-local cross traffic joins at each
node and leaves right after it.  The paper's Fig. 1 tandem is the
degenerate line case, kept as the thin :class:`TandemNetwork` wrapper
with its original interface (and bit-for-bit its original behavior).

Store-and-forward timing: fluid served at a node in slot ``t`` arrives
at the next node of its route in slot ``t + 1`` — a conservative
``+1``-slot-per-hop with respect to the analysis' fluid cut-through
convention, so under light load an ``H``-hop route sees exactly
``H - 1`` slots of end-to-end delay (validation comparisons allow this
slack).

Within one slot the offer order is fixed — and for a line topology
identical to the historical tandem loop: first every node's local cross
traffic (in topological order), then each route's external arrivals at
its first node (in route declaration order), then the chunks forwarded
from the previous slot (per node, in topological order).  Cross traffic
before through traffic is the adversarial convention under which greedy
envelope patterns attain the worst-case bounds (Theorem 2), and a
conservative one for validating probabilistic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.simulation.chunk import Chunk
from repro.simulation.metrics import BacklogRecorder, DelayRecorder
from repro.simulation.node import Link
from repro.simulation.schedulers import (
    EDFPolicy,
    FIFOPolicy,
    GPSPolicy,
    SchedulerPolicy,
    StaticPriorityPolicy,
)
from repro.topology.model import NodeSpec, Topology
from repro.utils.validation import check_int

FlowId = Hashable

THROUGH = "through"

#: Fluid below this threshold counts as drained.
_DRAIN_EPS = 1e-6


def cross_flow_id(node_index: int) -> str:
    """Flow identifier of the cross aggregate joining at node ``node_index``
    of a tandem (the historical naming, kept for tandem compatibility)."""
    return f"cross{node_index}"


def dag_cross_flow_id(node_name: str) -> str:
    """Default flow identifier of the cross aggregate local to a DAG node."""
    return f"cross:{node_name}"


#: Signature of a :class:`DagNetwork` policy factory: called once per
#: node with the node's spec, the identifiers of the routes crossing it
#: (in route declaration order), and its local cross identifier.
DagPolicyFactory = Callable[
    [NodeSpec, tuple[str, ...], str], SchedulerPolicy
]


def default_policy_factory(
    spec: NodeSpec, route_ids: tuple[str, ...], cross_id: str
) -> SchedulerPolicy:
    """Build the node's policy from its :attr:`NodeSpec.scheduler`.

    Route aggregates all share the "through" role (BMUX de-prioritizes
    them, SP prioritizes them, EDF gives them the through deadline, GPS
    the through weight); the node-local cross aggregate takes the cross
    role.  For a single route this reproduces the historical tandem
    policies exactly.
    """
    if spec.scheduler == "fifo":
        return FIFOPolicy()
    if spec.scheduler == "bmux":
        priorities = {route: 0.0 for route in route_ids}
        priorities[cross_id] = 1.0
        policy = StaticPriorityPolicy(priorities)
        policy.name = "BMUX"
        return policy
    if spec.scheduler == "sp":
        priorities = {route: 1.0 for route in route_ids}
        priorities[cross_id] = 0.0
        return StaticPriorityPolicy(priorities)
    if spec.scheduler == "edf":
        deadlines = {route: spec.edf_deadline_through for route in route_ids}
        deadlines[cross_id] = spec.edf_deadline_cross
        return EDFPolicy(deadlines)
    weights = {route: spec.gps_weight_through for route in route_ids}
    weights[cross_id] = spec.gps_weight_cross
    return GPSPolicy(weights)


@dataclass
class DagResult:
    """Collected measurements of a feed-forward network run.

    Delay recorders are keyed by route name (end-to-end) and by node
    name (the node-local cross aggregate served there); backlog
    recorders by node name.
    """

    route_delays: dict[str, DelayRecorder]
    cross_delays: dict[str, DelayRecorder]
    node_backlogs: dict[str, BacklogRecorder]
    slots: int
    topology: Topology


@dataclass(frozen=True)
class TandemResult:
    """Collected measurements of a tandem run.

    Frozen: instances cross the process-pool boundary in
    :func:`repro.simulation.engine.simulate_tandem_mmoo_trials` (lint
    rule RPR004), so they must stay immutable value objects.
    """

    through_delays: DelayRecorder
    node_backlogs: tuple[BacklogRecorder, ...]
    cross_delays: tuple[DelayRecorder, ...]
    slots: int
    hops: int


class DagNetwork:
    """A feed-forward network of store-and-forward links.

    Parameters
    ----------
    topology:
        The validated node/route DAG to instantiate.
    policy_factory:
        Called once per node (in declaration order) with
        ``(spec, route_ids, cross_id)``; defaults to
        :func:`default_policy_factory`, which reads
        :attr:`NodeSpec.scheduler`.
    preemptive:
        ``False`` switches every link to the non-preemptive packet model.
    packet_size:
        Split each slot's external arrivals into packets of this size.
    cross_id:
        Naming hook mapping a node name to its local cross-flow
        identifier (default :func:`dag_cross_flow_id`).  Route names and
        cross identifiers must not collide.
    """

    def __init__(
        self,
        topology: Topology,
        policy_factory: DagPolicyFactory | None = None,
        *,
        preemptive: bool = True,
        packet_size: float | None = None,
        cross_id: Callable[[str], str] | None = None,
    ) -> None:
        self.topology = topology
        self.preemptive = bool(preemptive)
        if packet_size is not None and packet_size <= 0:
            raise ValueError("packet_size must be > 0")
        self.packet_size = packet_size
        factory = policy_factory or default_policy_factory
        cross_id = cross_id or dag_cross_flow_id
        self._cross_ids = {n.name: cross_id(n.name) for n in topology.nodes}
        route_names = {route.name for route in topology.routes}
        collisions = route_names & set(self._cross_ids.values())
        if collisions:
            raise ValueError(
                f"route name(s) collide with cross-flow identifiers: "
                f"{sorted(collisions)}"
            )
        self._order = topology.topological_order()
        # per node: the routes crossing it, in route declaration order
        self._route_ids = {
            n.name: tuple(
                r.name for r in topology.routes if n.name in r.path
            )
            for n in topology.nodes
        }
        # (node, route) -> the route's next node, or None at its last hop
        self._next_hop: dict[tuple[str, str], str | None] = {}
        for route in topology.routes:
            for here, nxt in zip(route.path, route.path[1:]):
                self._next_hop[(here, route.name)] = nxt
            self._next_hop[(route.path[-1], route.name)] = None
        self.links = {
            n.name: Link(
                n.capacity,
                factory(n, self._route_ids[n.name], self._cross_ids[n.name]),
                preemptive=preemptive,
            )
            for n in topology.nodes
        }

    def _offer(
        self, link: Link, flow: FlowId, amount: float, origin: int, slot: int
    ) -> None:
        """Offer ``amount`` as one chunk, or as packets of ``packet_size``."""
        if self.packet_size is None:
            link.offer(Chunk(flow, amount, origin), slot)
            return
        remaining = amount
        while remaining > 1e-12:
            piece = min(self.packet_size, remaining)
            link.offer(Chunk(flow, piece, origin), slot)
            remaining -= piece

    def run(
        self,
        route_arrivals: Mapping[str, Sequence[float]],
        cross_arrivals: Mapping[str, Sequence[float]] | None = None,
        *,
        drain: bool = True,
        record_backlog: bool = False,
    ) -> DagResult:
        """Simulate the network on per-slot arrival arrays.

        Parameters
        ----------
        route_arrivals:
            ``route_arrivals[name][t]`` = fluid of route ``name``
            entering its first node at slot ``t``; one entry per route.
        cross_arrivals:
            ``cross_arrivals[node][t]`` = node-local cross fluid entering
            ``node`` at slot ``t``; nodes may be omitted (no cross).
        drain:
            Keep simulating (without new arrivals) until every route's
            traffic has left the network, so every bit's end-to-end
            delay is measured.
        record_backlog:
            Collect per-slot backlog samples at every node.
        """
        routes = {
            r.name: np.asarray(route_arrivals[r.name], dtype=float)
            if r.name in route_arrivals
            else None
            for r in self.topology.routes
        }
        missing = [name for name, row in routes.items() if row is None]
        if missing:
            raise ValueError(f"missing arrival rows for route(s) {missing}")
        cross_arrivals = cross_arrivals or {}
        unknown = set(cross_arrivals) - set(self._cross_ids)
        if unknown:
            raise ValueError(
                f"cross arrivals reference unknown node(s) {sorted(unknown)}"
            )
        cross = {
            name: np.asarray(row, dtype=float)
            for name, row in cross_arrivals.items()
        }
        lengths = {len(row) for row in routes.values()}
        lengths |= {len(row) for row in cross.values()}
        if len(lengths) != 1:
            raise ValueError("all arrival arrays must have equal length")
        n_slots = lengths.pop()
        check_int(n_slots, "slots", minimum=1)

        route_recs = {r.name: DelayRecorder() for r in self.topology.routes}
        cross_recs = {n.name: DelayRecorder() for n in self.topology.nodes}
        backlog_recs = {n.name: BacklogRecorder() for n in self.topology.nodes}

        # chunks in flight toward each node at the next slot
        in_transit: dict[str, list[Chunk]] = {name: [] for name in self._order}
        first_node = {r.name: r.path[0] for r in self.topology.routes}
        slot = 0
        pending = 0.0  # route fluid still inside the network
        while slot < n_slots or pending > _DRAIN_EPS:
            if drain is False and slot >= n_slots:
                break
            # fresh external arrivals; every node's local cross traffic
            # first (topological order), then the route arrivals (route
            # declaration order) — see the module docstring
            if slot < n_slots:
                for name in self._order:
                    row = cross.get(name)
                    if row is not None and row[slot] > 0:
                        self._offer(
                            self.links[name], self._cross_ids[name],
                            float(row[slot]), slot, slot,
                        )
                for route_name, row in routes.items():
                    if row[slot] > 0:
                        self._offer(
                            self.links[first_node[route_name]], route_name,
                            float(row[slot]), slot, slot,
                        )
                        pending += float(row[slot])
            # forwarded arrivals from the previous slot
            for name in self._order:
                for chunk in in_transit[name]:
                    self.links[name].offer(chunk, slot)
                in_transit[name] = []
            # serve every link
            for name in self._order:
                link = self.links[name]
                departed = link.advance(slot)
                for chunk in departed:
                    nxt = self._next_hop.get((name, chunk.flow), None)
                    if nxt is not None:
                        in_transit[nxt].append(
                            Chunk(chunk.flow, chunk.size, chunk.origin_slot)
                        )
                    elif chunk.flow in route_recs:
                        route_recs[chunk.flow].record(
                            slot - chunk.origin_slot, chunk.size
                        )
                        pending -= chunk.size
                    else:
                        cross_recs[name].record(
                            slot - chunk.origin_slot, chunk.size
                        )
                if record_backlog:
                    backlog_recs[name].record(link.backlog())
            slot += 1
            if slot > n_slots + 1_000_000:  # pragma: no cover - safety valve
                raise RuntimeError("simulation failed to drain")

        return DagResult(
            route_delays=route_recs,
            cross_delays=cross_recs,
            node_backlogs=backlog_recs,
            slots=n_slots,
            topology=self.topology,
        )


class TandemNetwork:
    """The Fig. 1 topology: ``hops`` links, per-node fresh cross traffic.

    A thin wrapper over :class:`DagNetwork` on a line topology whose
    nodes are named ``"0" .. "H-1"`` and whose cross flows keep the
    historical identifiers ``cross0 .. cross{H-1}``; the slot loop,
    offer order, and recorders are byte-for-byte those of the original
    hard-wired tandem.

    Parameters
    ----------
    capacity:
        Per-slot link rate (same at each node).
    policy_factory:
        Called once per node with the node's flow identifiers
        ``(THROUGH, cross_flow_id(h))`` and must return the node's
        :class:`SchedulerPolicy`.
    hops:
        Path length ``H``.
    """

    def __init__(
        self,
        capacity: float,
        hops: int,
        policy_factory: Callable[[str, str], SchedulerPolicy],
        *,
        preemptive: bool = True,
        packet_size: float | None = None,
    ) -> None:
        self.hops = check_int(hops, "hops", minimum=1)
        self.capacity = float(capacity)
        self.preemptive = bool(preemptive)
        topology = Topology.line(
            self.hops, capacity=self.capacity, n_through=1, n_cross=1,
            route_name=THROUGH,
        )
        self._dag = DagNetwork(
            topology,
            lambda spec, route_ids, cross_id: policy_factory(
                route_ids[0], cross_id
            ),
            preemptive=preemptive,
            packet_size=packet_size,
            cross_id=lambda name: cross_flow_id(int(name)),
        )
        self.packet_size = self._dag.packet_size
        self.links = [self._dag.links[str(h)] for h in range(self.hops)]

    def run(
        self,
        through_arrivals: Sequence[float],
        cross_arrivals: Sequence[Sequence[float]],
        *,
        drain: bool = True,
        record_backlog: bool = False,
    ) -> TandemResult:
        """Simulate the tandem on per-slot arrival arrays.

        Parameters
        ----------
        through_arrivals:
            ``through_arrivals[t]`` = through fluid entering node 1 at
            slot ``t``.
        cross_arrivals:
            ``cross_arrivals[h][t]`` = cross fluid entering node ``h+1``
            at slot ``t``; must have ``hops`` rows.
        drain:
            Keep simulating (without new arrivals) until all through
            traffic has left the network, so every bit's delay is
            measured.
        record_backlog:
            Collect per-slot backlog samples at every node.
        """
        cross = list(cross_arrivals)
        if len(cross) != self.hops:
            raise ValueError(
                f"need {self.hops} cross arrival rows, got {len(cross)}"
            )
        result = self._dag.run(
            {THROUGH: through_arrivals},
            {str(h): cross[h] for h in range(self.hops)},
            drain=drain,
            record_backlog=record_backlog,
        )
        return TandemResult(
            through_delays=result.route_delays[THROUGH],
            node_backlogs=tuple(
                result.node_backlogs[str(h)] for h in range(self.hops)
            ),
            cross_delays=tuple(
                result.cross_delays[str(h)] for h in range(self.hops)
            ),
            slots=result.slots,
            hops=self.hops,
        )
