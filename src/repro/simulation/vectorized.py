"""Vectorized fluid fast path for the tandem simulator.

The chunk simulator (:mod:`repro.simulation.network`) moves Python
``Chunk`` objects through per-node heaps — exact, but far too slow for
multi-trial Monte Carlo validation.  This module evolves the same
store-and-forward tandem dynamics on whole ``(slots,)`` numpy arrays:

* the aggregate service of a work-conserving link comes from the
  Lindley/Reich recursion in closed form (a running minimum over the
  cumulative-arrival deficit), vectorized with ``np.minimum.accumulate``;
* per-flow service splits follow from the scheduler: strict priority
  (SP/BMUX) isolates the high-priority flow behind its own Lindley
  recursion, FIFO attributes the served prefix of the arrival-ordered
  fluid stream with a vectorized ``searchsorted``, and EDF drains
  slot-granularity deadline buckets (one amortized-O(1) pointer sweep);
* end-to-end delays fall out of comparing the cumulative entry and exit
  curves of the through flow — within a flow every scheduler here is
  locally FIFO, so the k-th unit of fluid to enter is the k-th to leave.

Tie-breaking matches the chunk simulator exactly: within a slot, cross
traffic is offered before through traffic, and an EDF bucket serves the
flow with the earlier node arrival first.  Cross-validation tests check
both engines agree within one slot on every scheduler and path length.

GPS is not representable: its service split depends on the random set of
backlogged flows (it is not a Delta-scheduler), so GPS stays on the
chunk engine.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.simulation.metrics import BacklogRecorder, DelayRecorder
from repro.simulation.network import DagResult, TandemResult
from repro.topology.model import Topology

#: Fluid smaller than this is treated as zero (matches the chunk engine).
_MASS_EPS = 1e-9

#: Schedulers the vectorized engine implements.
VECTORIZED_SCHEDULERS = ("fifo", "bmux", "sp", "edf")


def aggregate_service(arrivals: np.ndarray, capacity: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-slot aggregate departures and backlog of a work-conserving link.

    Arrivals land at the beginning of each slot; up to ``capacity`` fluid
    is served within it.  The backlog after slot ``t`` is the Lindley
    recursion ``q_t = max(0, q_{t-1} + a_t - c)``, evaluated in closed
    form as the deficit ``A_t - c (t+1)`` minus its running minimum
    (clipped at zero) — one vectorized scan instead of a Python loop.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    n = len(arrivals)
    cum = np.cumsum(arrivals)
    deficit = cum - capacity * np.arange(1, n + 1)
    backlog = deficit - np.minimum(np.minimum.accumulate(deficit), 0.0)
    backlog = np.maximum(backlog, 0.0)
    departed_cum = np.maximum.accumulate(np.minimum(cum - backlog, cum))
    departures = np.diff(departed_cum, prepend=0.0)
    return departures, backlog


def _split_fifo(
    through: np.ndarray, cross: np.ndarray, departed_cum: np.ndarray
) -> np.ndarray:
    """Cumulative through-flow departures of a FIFO link.

    FIFO serves fluid in arrival-slot order with cross before through
    within a slot (the chunk engine's offer order), so the fluid served
    by the end of slot ``t`` is exactly the first ``D_t`` units of that
    ordered stream; the through share of any prefix is read off the
    cumulative arrival curves with one ``searchsorted``.
    """
    total_cum = np.cumsum(through + cross)
    through_cum = np.cumsum(through)
    prefix = np.minimum(departed_cum, total_cum)
    slot = np.searchsorted(total_cum, prefix, side="left")
    slot = np.minimum(slot, len(total_cum) - 1)
    before_total = np.where(slot > 0, total_cum[slot - 1], 0.0)
    before_through = np.where(slot > 0, through_cum[slot - 1], 0.0)
    within = np.clip(prefix - before_total - cross[slot], 0.0, through[slot])
    return np.maximum.accumulate(before_through + within)


def _split_fifo_multi(
    flows: list[np.ndarray], departed_cum: np.ndarray
) -> list[np.ndarray]:
    """Cumulative per-flow departures of a FIFO link with ``k`` inputs.

    Generalizes :func:`_split_fifo` to any number of flows: ``flows``
    lists the per-slot arrival arrays in within-slot precedence order
    (offered earlier = served earlier within a slot), and each flow's
    share of the served prefix subtracts the boundary-slot arrivals of
    every flow ahead of it.  For ``flows = [cross, through]`` the second
    entry reproduces :func:`_split_fifo` exactly.
    """
    total_cum = np.cumsum(np.sum(flows, axis=0))
    prefix = np.minimum(departed_cum, total_cum)
    slot = np.searchsorted(total_cum, prefix, side="left")
    slot = np.minimum(slot, len(total_cum) - 1)
    before_total = np.where(slot > 0, total_cum[slot - 1], 0.0)
    offset = np.zeros(len(departed_cum))
    out = []
    for flow in flows:
        flow_cum = np.cumsum(flow)
        before_flow = np.where(slot > 0, flow_cum[slot - 1], 0.0)
        within = np.clip(
            prefix - before_total - offset, 0.0, flow[slot]
        )
        out.append(np.maximum.accumulate(before_flow + within))
        offset = offset + flow[slot]
    return out


def _serve_priority(
    through: np.ndarray,
    cross: np.ndarray,
    capacity: float,
    *,
    through_high: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Strict preemptive priority: SP (through high) or BMUX (through low).

    The high-priority flow never sees the other, so its departures are
    its own Lindley recursion at full capacity; the low-priority flow
    gets the remainder of the work-conserving aggregate.
    """
    total_dep, backlog = aggregate_service(through + cross, capacity)
    high = through if through_high else cross
    high_dep, _ = aggregate_service(high, capacity)
    low_dep = np.maximum(total_dep - high_dep, 0.0)
    if through_high:
        return high_dep, low_dep, backlog
    return low_dep, high_dep, backlog


def _serve_fifo(
    through: np.ndarray, cross: np.ndarray, capacity: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """FIFO service split of one link."""
    total_dep, backlog = aggregate_service(through + cross, capacity)
    through_dep_cum = _split_fifo(through, cross, np.cumsum(total_dep))
    through_dep = np.diff(through_dep_cum, prepend=0.0)
    cross_dep = np.maximum(total_dep - through_dep, 0.0)
    return through_dep, cross_dep, backlog


def _serve_edf(
    through: np.ndarray,
    cross: np.ndarray,
    capacity: float,
    deadline_through: int,
    deadline_cross: int,
    record_backlog: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """EDF service via slot-granularity deadline buckets.

    Fluid arriving at slot ``t`` carries the integer tag ``t + d`` of its
    flow; each slot drains the lowest-tagged backlog first.  Buckets are
    per (tag, flow); within a tag the flow that arrived earlier — the one
    with the *larger* deadline offset — is served first, with cross ahead
    of through on exact ties, matching the chunk engine's heap order.
    The head pointer only moves forward between arrivals, so the sweep is
    amortized O(slots + buckets).
    """
    n = len(through)
    max_off = max(deadline_through, deadline_cross)
    horizon = n + max_off + 1
    eps = _MASS_EPS
    # Plain Python lists/floats: the per-slot sweep does scalar work only,
    # where list indexing is several times faster than numpy item access.
    # Flows are relabeled (first, second) by within-tag service order once,
    # so the hot loop carries no per-iteration tie-break branching.
    if deadline_cross >= deadline_through:  # cross served first on tag ties
        f_in, f_off = cross.tolist(), deadline_cross
        s_in, s_off = through.tolist(), deadline_through
    else:
        f_in, f_off = through.tolist(), deadline_through
        s_in, s_off = cross.tolist(), deadline_cross
    f_bucket = [0.0] * horizon
    s_bucket = [0.0] * horizon
    f_dep = [0.0] * n
    s_dep = [0.0] * n
    backlog = [0.0] * n
    head = horizon
    f_q = 0.0
    s_q = 0.0
    for t in range(n):
        a = f_in[t]
        b = s_in[t]
        if f_q + s_q <= eps and a + b <= capacity:
            # empty queue, arrivals fit in one slot: serve them directly
            # without touching the bucket arrays at all
            if a > 0.0:
                f_dep[t] = a
            if b > 0.0:
                s_dep[t] = b
            continue  # backlog[t] stays 0
        if a > 0.0:
            tag = t + f_off
            f_bucket[tag] += a
            f_q += a
            if tag < head:
                head = tag
        if b > 0.0:
            tag = t + s_off
            s_bucket[tag] += b
            s_q += b
            if tag < head:
                head = tag
        total = f_q + s_q
        if total <= eps:
            continue  # backlog[t] stays 0
        budget = capacity
        if total <= budget:
            # full drain: everything departs this slot; dirty buckets all
            # lie in [head, t + max_off], cleared by slice assignment
            f_dep[t] = f_q
            s_dep[t] = s_q
            end = t + max_off + 1
            zeros = [0.0] * (end - head)
            f_bucket[head:end] = zeros
            s_bucket[head:end] = zeros
            f_q = s_q = 0.0
            head = horizon
            continue
        while True:
            while head < horizon and f_bucket[head] <= eps and s_bucket[head] <= eps:
                head += 1
            if head >= horizon:  # only epsilon dust left anywhere
                f_q = s_q = 0.0
                break
            served = f_bucket[head]
            if served > 0.0:
                if served > budget:
                    f_bucket[head] = served - budget
                    f_dep[t] += budget
                    f_q -= budget
                    break
                f_bucket[head] = 0.0
                f_dep[t] += served
                f_q -= served
                budget -= served
                if budget <= eps:
                    break
            served = s_bucket[head]
            if served > 0.0:
                if served > budget:
                    s_bucket[head] = served - budget
                    s_dep[t] += budget
                    s_q -= budget
                    break
                s_bucket[head] = 0.0
                s_dep[t] += served
                s_q -= served
                budget -= served
                if budget <= eps:
                    break
        if record_backlog:
            backlog[t] = (f_q if f_q > 0.0 else 0.0) + (
                s_q if s_q > 0.0 else 0.0
            )
    if deadline_cross >= deadline_through:
        return np.asarray(s_dep), np.asarray(f_dep), np.asarray(backlog)
    return np.asarray(f_dep), np.asarray(s_dep), np.asarray(backlog)


def delays_between(entry: np.ndarray, exit: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Size-weighted delays between a cumulative entry and exit curve.

    ``entry[s]`` is the fluid entering at slot ``s`` and ``exit[t]`` the
    fluid leaving at slot ``t`` of the *same* locally-FIFO flow, so the
    k-th unit in equals the k-th unit out.  Merging the two cumulative
    step curves yields constant-delay mass segments; returns integer
    delays and their masses.

    The merge is a single ``searchsorted`` scatter, and each mark's entry
    and exit slot fall out of the merge bookkeeping itself: the slot where
    a curve reaches a mark equals the number of that curve's points
    strictly below it, read off the running counts at the start of the
    mark's run of equal values.
    """
    entry_cum = np.cumsum(entry)
    exit_cum = np.cumsum(exit)
    total = min(entry_cum[-1], exit_cum[-1])
    n_entry = len(entry_cum)
    n_exit = len(exit_cum)
    m = n_entry + n_exit
    marks = np.empty(m)
    is_exit = np.zeros(m, dtype=bool)
    # side="right" puts exit points after equal entry points, so within a
    # run of equal values all entry points come first
    pos = np.searchsorted(entry_cum, exit_cum, side="right") + np.arange(n_exit)
    is_exit[pos] = True
    marks[pos] = exit_cum
    marks[~is_exit] = entry_cum
    index = np.arange(m)
    new_run = np.empty(m, dtype=bool)
    new_run[0] = True
    new_run[1:] = marks[1:] > marks[:-1]
    run_start = np.maximum.accumulate(np.where(new_run, index, 0))
    exit_below = np.cumsum(is_exit)  # exit points among marks[0..k]
    entry_below = index + 1 - exit_below
    before = np.maximum(run_start - 1, 0)
    entered = np.where(run_start > 0, entry_below[before], 0)
    exited = np.where(run_start > 0, exit_below[before], 0)
    entered = np.minimum(entered, n_entry - 1)
    exited = np.minimum(exited, n_exit - 1)
    weights = np.diff(marks, prepend=0.0)
    keep = (
        (weights > _MASS_EPS)
        & (marks > _MASS_EPS)
        & (marks <= total + _MASS_EPS)
    )
    if not np.any(keep):
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    delays = np.maximum(exited[keep] - entered[keep], 0)
    return delays, weights[keep]


def _delay_recorder(entry: np.ndarray, exit: np.ndarray) -> DelayRecorder:
    delays, weights = delays_between(entry, exit)
    return DelayRecorder.from_arrays(delays, weights)


def _drain_padding(arrivals: np.ndarray, capacity: float) -> int:
    """Zero slots to append so a link fully drains within the horizon."""
    _, backlog = aggregate_service(arrivals, capacity)
    if backlog[-1] <= _MASS_EPS:
        return 0
    return int(math.ceil(backlog[-1] / capacity)) + 1


def _check_edf_deadline(value: float, name: str) -> int:
    if value < 0 or not float(value).is_integer():
        raise ValueError(
            f"the vectorized EDF engine uses slot-granularity deadline "
            f"buckets; {name} must be a non-negative integer, got {value!r}"
        )
    return int(value)


def run_tandem_vectorized(
    through_arrivals: np.ndarray,
    cross_arrivals: list[np.ndarray],
    *,
    capacity: float,
    scheduler: str,
    edf_deadline_through: float = 1.0,
    edf_deadline_cross: float = 10.0,
    record_backlog: bool = False,
) -> TandemResult:
    """Simulate the Fig. 1 tandem on arrival arrays, fully vectorized.

    Same topology and timing as :meth:`TandemNetwork.run` with ``drain``
    on: ``hops = len(cross_arrivals)`` store-and-forward links of rate
    ``capacity``, fresh cross traffic at every node, and every bit of
    through (and cross) traffic followed to departure.  Returns a
    :class:`TandemResult` whose recorders match the chunk engine's
    within one slot.
    """
    if scheduler not in VECTORIZED_SCHEDULERS:
        raise ValueError(
            f"the vectorized engine supports {VECTORIZED_SCHEDULERS}, "
            f"got {scheduler!r} (use the chunk engine instead)"
        )
    if capacity <= 0:
        raise ValueError("capacity must be > 0")
    through = np.asarray(through_arrivals, dtype=float)
    cross = [np.asarray(row, dtype=float) for row in cross_arrivals]
    hops = len(cross)
    if hops < 1:
        raise ValueError("need at least one cross arrival row (one hop)")
    n_slots = len(through)
    if any(len(row) != n_slots for row in cross):
        raise ValueError("all arrival arrays must have equal length")
    if scheduler == "edf":
        d_through = _check_edf_deadline(edf_deadline_through, "edf_deadline_through")
        d_cross = _check_edf_deadline(edf_deadline_cross, "edf_deadline_cross")

    if obs.enabled():
        obs.add("simulation.vectorized.calls")
        obs.add(f"simulation.vectorized.{scheduler}_calls")
        obs.add("simulation.vectorized.hop_slots", hops * n_slots)
    cross_recorders = []
    backlog_recorders = []
    node_input = through
    for h in range(hops):
        length = len(node_input)
        cross_row = np.zeros(length)
        cross_row[:n_slots] = cross[h]
        pad = _drain_padding(node_input + cross_row, capacity)
        if pad:
            node_input = np.concatenate([node_input, np.zeros(pad)])
            cross_row = np.concatenate([cross_row, np.zeros(pad)])
        if scheduler == "fifo":
            through_dep, cross_dep, backlog = _serve_fifo(
                node_input, cross_row, capacity
            )
        elif scheduler in ("sp", "bmux"):
            through_dep, cross_dep, backlog = _serve_priority(
                node_input, cross_row, capacity, through_high=(scheduler == "sp")
            )
        else:
            through_dep, cross_dep, backlog = _serve_edf(
                node_input, cross_row, capacity, d_through, d_cross,
                record_backlog=record_backlog,
            )
        cross_recorders.append(_delay_recorder(cross_row, cross_dep))
        if record_backlog:
            backlog_recorders.append(BacklogRecorder.from_samples(backlog))
        else:
            backlog_recorders.append(BacklogRecorder())
        # store-and-forward: fluid served in slot t reaches the next node
        # at slot t + 1
        node_input = np.concatenate([[0.0], through_dep])

    exit_curve = node_input  # final departures, already shifted by one slot
    # undo the trailing shift so exit slots are the actual service slots
    through_delays = _delay_recorder(through, exit_curve[1:])
    return TandemResult(
        through_delays=through_delays,
        node_backlogs=tuple(backlog_recorders),
        cross_delays=tuple(cross_recorders),
        slots=n_slots,
        hops=hops,
    )


def run_topology_vectorized(
    topology: Topology,
    route_arrivals: dict[str, np.ndarray],
    cross_arrivals: dict[str, np.ndarray] | None = None,
    *,
    record_backlog: bool = False,
) -> DagResult:
    """Simulate an all-FIFO feed-forward topology, fully vectorized.

    Nodes are processed in topological order; each link's aggregate
    service comes from the Lindley closed form and the per-flow split
    from :func:`_split_fifo_multi`, with the chunk engine's within-slot
    precedence (node-local cross first, then route arrivals entering
    here in declaration order, then forwarded streams by upstream
    topological position).  Departure order *within* one upstream slot
    is attributed by that precedence rather than by the chunk heap's
    exact interleaving, so the two engines agree within one slot (the
    same cross-engine convention the tandem fast path documents); a
    line topology run through :func:`run_tandem_vectorized` instead is
    byte-identical to the chunk engine's tandem.

    Only FIFO nodes are supported: multi-class priority or EDF splits
    across many routes have no closed-form attribution here — use the
    chunk engine (:class:`repro.simulation.network.DagNetwork`) for
    those topologies.
    """
    not_fifo = [n.name for n in topology.nodes if n.scheduler != "fifo"]
    if not_fifo:
        raise ValueError(
            f"run_topology_vectorized supports FIFO nodes only; node(s) "
            f"{not_fifo} use other schedulers (use the chunk engine)"
        )
    routes = {
        r.name: np.asarray(route_arrivals[r.name], dtype=float)
        for r in topology.routes
        if r.name in route_arrivals
    }
    missing = [r.name for r in topology.routes if r.name not in routes]
    if missing:
        raise ValueError(f"missing arrival rows for route(s) {missing}")
    cross = {
        name: np.asarray(row, dtype=float)
        for name, row in (cross_arrivals or {}).items()
    }
    unknown = set(cross) - {n.name for n in topology.nodes}
    if unknown:
        raise ValueError(
            f"cross arrivals reference unknown node(s) {sorted(unknown)}"
        )
    lengths = {len(row) for row in routes.values()}
    lengths |= {len(row) for row in cross.values()}
    if len(lengths) != 1:
        raise ValueError("all arrival arrays must have equal length")
    n_slots = lengths.pop()

    order = topology.topological_order()
    topo_index = {name: i for i, name in enumerate(order)}
    route_index = {r.name: i for i, r in enumerate(topology.routes)}
    prev_hop: dict[tuple[str, str], str] = {}
    next_hop: dict[tuple[str, str], str | None] = {}
    for route in topology.routes:
        for here, nxt in zip(route.path, route.path[1:]):
            prev_hop[(nxt, route.name)] = here
            next_hop[(here, route.name)] = nxt
        next_hop[(route.path[-1], route.name)] = None

    if obs.enabled():
        obs.add("simulation.vectorized.topology_calls")
        obs.add(
            "simulation.vectorized.hop_slots", len(topology.nodes) * n_slots
        )

    route_recs: dict[str, DelayRecorder] = {}
    cross_recs = {n.name: DelayRecorder() for n in topology.nodes}
    backlog_recs = {n.name: BacklogRecorder() for n in topology.nodes}
    # each route's current input stream (in the receiving node's local
    # slot time, already shifted when forwarded)
    stream: dict[str, np.ndarray] = {}

    for name in order:
        node = topology.node(name)
        # (precedence-ordered) input parts of this node
        parts: list[tuple[str, str, np.ndarray]] = []
        if name in cross:
            parts.append(("cross", name, cross[name]))
        external = [
            r for r in topology.routes
            if r.path[0] == name and r.name in routes
        ]
        for route in external:
            stream[route.name] = routes[route.name]
            parts.append(("route", route.name, routes[route.name]))
        arriving = sorted(
            (
                r.name
                for r in topology.routes
                if (name, r.name) in prev_hop
            ),
            key=lambda rn: (topo_index[prev_hop[(name, rn)]], route_index[rn]),
        )
        for route_name in arriving:
            parts.append(("route", route_name, stream[route_name]))
        if not parts:
            continue  # node carries no traffic at all
        length = max(len(arr) for _, _, arr in parts)
        padded = [
            np.concatenate([arr, np.zeros(length - len(arr))])
            if len(arr) < length
            else arr
            for _, _, arr in parts
        ]
        total = np.sum(padded, axis=0)
        pad = _drain_padding(total, node.capacity)
        if pad:
            padded = [np.concatenate([arr, np.zeros(pad)]) for arr in padded]
            total = np.concatenate([total, np.zeros(pad)])
        total_dep, backlog = aggregate_service(total, node.capacity)
        dep_cums = _split_fifo_multi(padded, np.cumsum(total_dep))
        if record_backlog:
            backlog_recs[name] = BacklogRecorder.from_samples(backlog)
        for (kind, flow_name, _), dep_cum in zip(parts, dep_cums):
            dep = np.diff(dep_cum, prepend=0.0)
            if kind == "cross":
                cross_recs[name] = _delay_recorder(cross[name], dep)
            elif next_hop[(name, flow_name)] is not None:
                # store-and-forward: served fluid reaches the next node
                # one slot later
                stream[flow_name] = np.concatenate([[0.0], dep])
            else:
                route_recs[flow_name] = _delay_recorder(
                    routes[flow_name], dep
                )
    for route in topology.routes:
        route_recs.setdefault(route.name, DelayRecorder())
    return DagResult(
        route_delays=route_recs,
        cross_delays=cross_recs,
        node_backlogs=backlog_recs,
        slots=n_slots,
        topology=topology,
    )
