"""Measurement collectors for the simulator.

Delays are recorded *size-weighted*: a chunk of 3 kbit delayed by 5 slots
contributes 3 units of mass at delay 5.  This matches the virtual-delay
process ``W(t)`` of the analysis, where every bit of traffic has a delay.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_probability


class DelayRecorder:
    """Size-weighted empirical delay distribution."""

    def __init__(self) -> None:
        self._delays: list[float] = []
        self._weights: list[float] = []

    @classmethod
    def from_arrays(
        cls, delays: Sequence[float], weights: Sequence[float]
    ) -> "DelayRecorder":
        """Build a recorder from parallel delay/weight arrays (the
        vectorized engine's bulk path).

        Equal delays are merged and zero-weight entries dropped, so the
        recorder holds one entry per distinct delay regardless of how
        many mass segments produced it.
        """
        delays = np.asarray(delays)
        weights = np.asarray(weights, dtype=float)
        if delays.shape != weights.shape:
            raise ValueError("delays and weights must have equal length")
        recorder = cls()
        if delays.size == 0:
            return recorder
        if float(delays.min()) < 0:
            raise ValueError("delays must be >= 0")
        if np.issubdtype(delays.dtype, np.integer):
            # integer delays (the vectorized engine's slot delays): a
            # bincount beats the sort-based unique by a wide margin
            mass = np.bincount(delays, weights=weights)
            nonzero = np.nonzero(mass > 0)[0]
            recorder._delays = nonzero.astype(float).tolist()
            recorder._weights = mass[nonzero].tolist()
            return recorder
        unique, inverse = np.unique(delays.astype(float), return_inverse=True)
        mass = np.zeros(len(unique))
        np.add.at(mass, inverse, weights)
        keep = mass > 0
        recorder._delays = unique[keep].tolist()
        recorder._weights = mass[keep].tolist()
        return recorder

    def record(self, delay: float, size: float) -> None:
        """Add ``size`` units of traffic that experienced ``delay`` slots."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if size <= 0:
            return
        self._delays.append(float(delay))
        self._weights.append(float(size))

    @property
    def total_mass(self) -> float:
        """Total traffic recorded."""
        return float(sum(self._weights))

    def count(self) -> int:
        """Number of recorded chunks."""
        return len(self._delays)

    def max(self) -> float:
        """Largest observed delay (0 if nothing recorded)."""
        return max(self._delays, default=0.0)

    def mean(self) -> float:
        """Size-weighted mean delay."""
        if not self._delays:
            return 0.0
        d = np.asarray(self._delays)
        w = np.asarray(self._weights)
        return float(np.average(d, weights=w))

    def quantile(self, p: float) -> float:
        """Size-weighted ``p``-quantile of the delay distribution."""
        check_probability(p, "p")
        if not self._delays:
            return 0.0
        order = np.argsort(self._delays)
        d = np.asarray(self._delays)[order]
        w = np.asarray(self._weights)[order]
        cum = np.cumsum(w)
        target = p * cum[-1]
        index = int(np.searchsorted(cum, target, side="left"))
        return float(d[min(index, len(d) - 1)])

    def exceed_fraction(self, threshold: float) -> float:
        """Fraction of traffic (by size) delayed strictly more than
        ``threshold`` — the empirical ``P(W > threshold)``."""
        if not self._delays:
            return 0.0
        d = np.asarray(self._delays)
        w = np.asarray(self._weights)
        return float(w[d > threshold].sum() / w.sum())


def order_statistics_ci(
    samples: Sequence[float], *, p: float = 0.5, confidence: float = 0.95
) -> tuple[float, float]:
    """Distribution-free confidence interval for the ``p``-quantile.

    Uses the classical order-statistics construction: with ``B`` the
    number of samples below the true quantile, ``B ~ Binomial(n, p)``,
    so ranks ``l`` and ``u`` chosen from the binomial tails give
    ``P(X_(l) <= q_p <= X_(u)) >= confidence``.  Ranks are conservative
    (rounded outward); with a single sample the interval degenerates to
    that sample.  Typical use: the per-trial delay quantiles of a Monte
    Carlo validation run, ``p = 0.5`` for a CI on their median.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    ordered = sorted(float(x) for x in samples)
    n = len(ordered)
    if n == 0:
        raise ValueError("need at least one sample")
    if n == 1:
        return ordered[0], ordered[0]
    alpha = 1.0 - confidence
    # cdf[k] = P(Binomial(n, p) <= k)
    pmf = [math.comb(n, k) * p**k * (1.0 - p) ** (n - k) for k in range(n + 1)]
    cdf = list(np.cumsum(pmf))
    lower = 1
    for k in range(1, n + 1):
        if cdf[k - 1] <= alpha / 2.0:
            lower = k
        else:
            break
    upper = n
    for k in range(n, 0, -1):
        if 1.0 - cdf[k - 1] <= alpha / 2.0:
            upper = k
        else:
            break
    if upper < lower:
        lower, upper = 1, n
    return ordered[lower - 1], ordered[upper - 1]


class BacklogRecorder:
    """Per-slot backlog samples of a link."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BacklogRecorder":
        """Build a recorder from a per-slot backlog array."""
        recorder = cls()
        recorder._samples = [float(s) for s in np.asarray(samples, dtype=float)]
        if recorder._samples and min(recorder._samples) < 0:
            raise ValueError("backlog must be >= 0")
        return recorder

    def record(self, backlog: float) -> None:
        if backlog < 0:
            raise ValueError("backlog must be >= 0")
        self._samples.append(float(backlog))

    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def max(self) -> float:
        return max(self._samples, default=0.0)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(self._samples))

    def quantile(self, p: float) -> float:
        check_probability(p, "p")
        if not self._samples:
            return 0.0
        return float(np.quantile(self._samples, p))
