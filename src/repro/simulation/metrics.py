"""Measurement collectors for the simulator.

Delays are recorded *size-weighted*: a chunk of 3 kbit delayed by 5 slots
contributes 3 units of mass at delay 5.  This matches the virtual-delay
process ``W(t)`` of the analysis, where every bit of traffic has a delay.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_probability


class DelayRecorder:
    """Size-weighted empirical delay distribution."""

    def __init__(self) -> None:
        self._delays: list[float] = []
        self._weights: list[float] = []

    def record(self, delay: float, size: float) -> None:
        """Add ``size`` units of traffic that experienced ``delay`` slots."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if size <= 0:
            return
        self._delays.append(float(delay))
        self._weights.append(float(size))

    @property
    def total_mass(self) -> float:
        """Total traffic recorded."""
        return float(sum(self._weights))

    def count(self) -> int:
        """Number of recorded chunks."""
        return len(self._delays)

    def max(self) -> float:
        """Largest observed delay (0 if nothing recorded)."""
        return max(self._delays, default=0.0)

    def mean(self) -> float:
        """Size-weighted mean delay."""
        if not self._delays:
            return 0.0
        d = np.asarray(self._delays)
        w = np.asarray(self._weights)
        return float(np.average(d, weights=w))

    def quantile(self, p: float) -> float:
        """Size-weighted ``p``-quantile of the delay distribution."""
        check_probability(p, "p")
        if not self._delays:
            return 0.0
        order = np.argsort(self._delays)
        d = np.asarray(self._delays)[order]
        w = np.asarray(self._weights)[order]
        cum = np.cumsum(w)
        target = p * cum[-1]
        index = int(np.searchsorted(cum, target, side="left"))
        return float(d[min(index, len(d) - 1)])

    def exceed_fraction(self, threshold: float) -> float:
        """Fraction of traffic (by size) delayed strictly more than
        ``threshold`` — the empirical ``P(W > threshold)``."""
        if not self._delays:
            return 0.0
        d = np.asarray(self._delays)
        w = np.asarray(self._weights)
        return float(w[d > threshold].sum() / w.sum())


class BacklogRecorder:
    """Per-slot backlog samples of a link."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, backlog: float) -> None:
        if backlog < 0:
            raise ValueError("backlog must be >= 0")
        self._samples.append(float(backlog))

    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def max(self) -> float:
        return max(self._samples, default=0.0)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(self._samples))

    def quantile(self, p: float) -> float:
        check_probability(p, "p")
        if not self._samples:
            return 0.0
        return float(np.quantile(self._samples, p))
