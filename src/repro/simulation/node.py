"""A buffered link with a work-conserving scheduler.

Model: time advances in unit slots.  All chunks offered in slot ``t``
arrive at the beginning of the slot; the link then drains up to
``capacity`` fluid during the slot.  Fluid served in slot ``t`` departs at
the end of slot ``t`` (its delay at the node is ``t - node_arrival``).

Two drain modes:

* precedence policies: a heap ordered by ``(tag, node_arrival, seq)``;
* GPS: per-flow FIFO queues drained by weighted water-filling.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Hashable

from repro.simulation.chunk import Chunk
from repro.simulation.schedulers import GPSPolicy, SchedulerPolicy
from repro.utils.validation import check_positive

FlowId = Hashable

_SIZE_EPS = 1e-9


class Link:
    """A single node: capacity per slot plus a scheduler policy.

    Parameters
    ----------
    capacity:
        Fluid served per slot.
    policy:
        Scheduling policy (precedence-based or GPS).
    preemptive:
        With the default ``True``, service always goes to the highest-
        precedence backlog (the paper's fluid assumption).  With
        ``False``, a chunk once started is finished before any other —
        the non-preemptive packet model: a higher-precedence arrival can
        be blocked by at most one chunk (packet) in transmission.
    """

    def __init__(
        self,
        capacity: float,
        policy: SchedulerPolicy,
        *,
        preemptive: bool = True,
    ) -> None:
        check_positive(capacity, "capacity")
        self.capacity = float(capacity)
        self.policy = policy
        self.preemptive = bool(preemptive)
        self._seq = 0
        # non-preemptive state: the chunk pinned to the server and its
        # remaining unserved fluid (the chunk departs whole on completion
        # — L-packetizer semantics)
        self._in_service: tuple[Chunk, float] | None = None
        if policy.is_precedence_based:
            self._heap: list[tuple[tuple, Chunk]] = []
        else:
            if not isinstance(policy, GPSPolicy):
                raise TypeError(
                    "non-precedence policies other than GPS are not supported"
                )
            if not self.preemptive:
                raise ValueError("GPS is inherently preemptive (fluid)")
            self._queues: dict[FlowId, deque[Chunk]] = {}

    # ------------------------------------------------------------------ #
    # arrivals
    # ------------------------------------------------------------------ #

    def offer(self, chunk: Chunk, slot: int) -> None:
        """Accept a chunk arriving at the beginning of ``slot``."""
        if chunk.size <= _SIZE_EPS:
            return
        chunk.node_arrival = slot
        chunk.tag = self.policy.tag(chunk, slot)
        chunk.seq = self._seq
        self._seq += 1
        if self.policy.is_precedence_based:
            heapq.heappush(self._heap, (chunk.sort_key(), chunk))
        else:
            self._queues.setdefault(chunk.flow, deque()).append(chunk)

    # ------------------------------------------------------------------ #
    # service
    # ------------------------------------------------------------------ #

    def backlog(self) -> float:
        """Total fluid currently queued (including a chunk in service)."""
        in_service = self._in_service[1] if self._in_service else 0.0
        if self.policy.is_precedence_based:
            return in_service + sum(chunk.size for _, chunk in self._heap)
        return in_service + sum(c.size for q in self._queues.values() for c in q)

    def advance(self, slot: int) -> list[Chunk]:
        """Serve one slot; returns the chunks (or parts) departing at the
        end of ``slot``."""
        if self.policy.is_precedence_based:
            return self._advance_precedence()
        return self._advance_gps()

    def _advance_precedence(self) -> list[Chunk]:
        if self.preemptive:
            return self._advance_preemptive()
        return self._advance_nonpreemptive()

    def _advance_preemptive(self) -> list[Chunk]:
        budget = self.capacity
        departed: list[Chunk] = []
        while budget > _SIZE_EPS and self._heap:
            key, chunk = self._heap[0]
            if chunk.size <= budget + _SIZE_EPS:
                heapq.heappop(self._heap)
                budget -= chunk.size
                departed.append(chunk)
            else:
                # partial service; the remainder keeps its precedence and
                # can be overtaken next slot (fluid model)
                departed.append(chunk.split(budget))
                budget = 0.0
        return departed

    def _advance_nonpreemptive(self) -> list[Chunk]:
        """Packet model: a started chunk finishes before any other is
        served, and it departs *whole* on completion (L-packetizer)."""
        budget = self.capacity
        departed: list[Chunk] = []
        while budget > _SIZE_EPS:
            if self._in_service is None:
                if not self._heap:
                    break
                _, chunk = heapq.heappop(self._heap)
                self._in_service = (chunk, chunk.size)
            chunk, remaining = self._in_service
            if remaining <= budget + _SIZE_EPS:
                budget -= remaining
                self._in_service = None
                departed.append(chunk)  # departs whole at completion
            else:
                self._in_service = (chunk, remaining - budget)
                budget = 0.0
        return departed

    def _advance_gps(self) -> list[Chunk]:
        assert isinstance(self.policy, GPSPolicy)
        weights = self.policy.weights
        departed: list[Chunk] = []
        budget = self.capacity
        # water-filling: repeatedly share the remaining budget among the
        # still-backlogged flows in proportion to their weights
        while budget > _SIZE_EPS:
            active = [f for f, q in self._queues.items() if q]
            if not active:
                break
            total_weight = sum(weights[f] for f in active)
            leftover = 0.0
            for flow in active:
                share = budget * weights[flow] / total_weight
                queue = self._queues[flow]
                while share > _SIZE_EPS and queue:
                    head = queue[0]
                    if head.size <= share + _SIZE_EPS:
                        share -= head.size
                        departed.append(queue.popleft())
                    else:
                        departed.append(head.split(share))
                        share = 0.0
                leftover += share  # unused share of an emptied flow
            served = budget - leftover
            if served <= _SIZE_EPS:
                break
            budget = leftover
        return departed
