"""The fluid unit moved through the simulator.

A :class:`Chunk` is the traffic a flow injects in one slot (or the part of
it still backlogged).  Chunks may be split by partial service; the split
inherits the original timestamps so delays stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

FlowId = Hashable


@dataclass
class Chunk:
    """A (possibly partial) slot's worth of fluid from one flow.

    Attributes
    ----------
    flow:
        Owning flow identifier.
    size:
        Remaining fluid in this chunk (> 0).
    origin_slot:
        Slot in which the fluid entered the *network* (for end-to-end
        delay).
    node_arrival:
        Slot in which it arrived at the *current* node (for local FIFO
        order and EDF deadlines).
    tag:
        Scheduler precedence value, assigned by the policy on arrival at
        each node (e.g. the EDF deadline); lower = served earlier.
    seq:
        Per-node arrival sequence number breaking ties deterministically
        (and enforcing locally-FIFO order within a flow).
    """

    flow: FlowId
    size: float
    origin_slot: int
    node_arrival: int = 0
    tag: float = 0.0
    seq: int = 0

    def split(self, amount: float) -> "Chunk":
        """Serve ``amount`` of this chunk: returns the served part and
        shrinks ``self`` in place."""
        if amount <= 0 or amount > self.size + 1e-12:
            raise ValueError(f"cannot split {amount} from a chunk of {self.size}")
        served = Chunk(
            self.flow, amount, self.origin_slot, self.node_arrival, self.tag, self.seq
        )
        self.size -= amount
        return served

    def sort_key(self) -> tuple:
        """Heap ordering: precedence tag, then locally-FIFO arrival order."""
        return (self.tag, self.node_arrival, self.seq)
