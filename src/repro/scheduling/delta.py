"""The Delta-scheduler abstraction (paper Definition 1).

A Delta-scheduler over a flow set ``N`` is described by constants
``Delta_{j,k} in [-inf, +inf]``: an arrival from flow ``j`` at time ``t``
has precedence over all arrivals from flow ``k`` occurring after
``t + Delta_{j,k}``.  Equivalently, only flow-``k`` traffic arriving no
later than ``t + Delta_{j,k}`` can delay the tagged arrival.

Sign conventions (from the paper's examples):

* ``Delta_{j,k} = 0``      — FIFO order between j and k;
* ``Delta_{j,k} = -inf``   — flow k *never* has precedence over j
  (k is lower priority; k drops out of j's delay analysis);
* ``Delta_{j,k} = +inf``   — flow k *always* has precedence over j
  (k is higher priority);
* ``Delta_{j,k} = d*_j - d*_k`` — EDF with per-flow deadlines.

Every locally-FIFO Delta-scheduler has ``Delta_{j,j} = 0``.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping

FlowId = Hashable


class DeltaScheduler:
    """Base class: a scheduler described by a Delta matrix.

    Subclasses implement :meth:`delta`.  All derived quantities used by the
    analysis — the capped ``Delta_{j,k}(y) = min(Delta_{j,k}, y)`` of
    Eq. (7) and the relevant flow sets ``N_j`` / ``N_{-j}`` — are provided
    here.
    """

    name = "delta"

    def delta(self, j: FlowId, k: FlowId) -> float:
        """The precedence constant ``Delta_{j,k}`` (may be ``+-inf``)."""
        raise NotImplementedError

    def delta_capped(self, j: FlowId, k: FlowId, y: float) -> float:
        """``Delta_{j,k}(y) = min(Delta_{j,k}, y)`` (paper Eq. (7))."""
        return min(self.delta(j, k), y)

    def relevant_flows(self, j: FlowId, flows: Iterable[FlowId]) -> list[FlowId]:
        """``N_j``: flows that can affect the delay of flow ``j``
        (those with ``Delta_{j,k} > -inf``), including ``j`` itself."""
        return [k for k in flows if self.delta(j, k) > -math.inf]

    def cross_flows(self, j: FlowId, flows: Iterable[FlowId]) -> list[FlowId]:
        """``N_{-j} = N_j \\ {j}``: relevant cross flows."""
        return [k for k in self.relevant_flows(j, flows) if k != j]

    def validate_locally_fifo(self, flows: Iterable[FlowId]) -> None:
        """Check ``Delta_{j,j} = 0`` for every flow (locally FIFO)."""
        for j in flows:
            if self.delta(j, j) != 0.0:
                raise ValueError(
                    f"{self.name}: Delta[{j!r},{j!r}] = {self.delta(j, j)} "
                    "violates the locally-FIFO requirement Delta_jj = 0"
                )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class _FIFO(DeltaScheduler):
    """First-in-first-out: ``Delta_{j,k} = 0`` for all flows."""

    name = "FIFO"

    def delta(self, j: FlowId, k: FlowId) -> float:
        return 0.0


def FIFO() -> DeltaScheduler:
    """FIFO scheduling: only earlier arrivals have precedence
    (``Delta_{j,k} = 0`` for all ``j, k``)."""
    return _FIFO()


class StaticPriority(DeltaScheduler):
    """Static priority (SP) with FIFO inside each priority level.

    Parameters
    ----------
    priorities:
        Maps each flow to a numeric priority level; **larger values mean
        higher priority**.  Flows missing from the map raise ``KeyError``
        when queried.

    The Delta matrix is the paper's: ``-inf`` when ``k`` has lower priority
    than ``j``, ``0`` for equal priority, ``+inf`` when ``k`` has higher
    priority.
    """

    name = "SP"

    def __init__(self, priorities: Mapping[FlowId, float]) -> None:
        if not priorities:
            raise ValueError("priorities must not be empty")
        self._priorities = dict(priorities)

    def priority_of(self, flow: FlowId) -> float:
        """The priority level of ``flow`` (larger = higher priority)."""
        return self._priorities[flow]

    def delta(self, j: FlowId, k: FlowId) -> float:
        pj, pk = self._priorities[j], self._priorities[k]
        if pk < pj:
            return -math.inf
        if pk == pj:
            return 0.0
        return math.inf


class _BMUX(DeltaScheduler):
    """Blind multiplexing from the perspective of one low-priority flow."""

    name = "BMUX"

    def __init__(self, low_priority_flow: FlowId) -> None:
        self._low = low_priority_flow

    @property
    def low_priority_flow(self) -> FlowId:
        return self._low

    def delta(self, j: FlowId, k: FlowId) -> float:
        if j == k:
            return 0.0
        if j == self._low:
            return math.inf  # everyone else always has precedence over j
        if k == self._low:
            return -math.inf  # j never yields to the low-priority flow
        return 0.0  # among the others: FIFO (irrelevant for the analysis)


def BMUX(low_priority_flow: FlowId) -> DeltaScheduler:
    """Blind multiplexing: the analyzed flow is treated as if it had lower
    priority than all cross traffic (``Delta_{j,k} = +inf`` for ``k != j``).

    BMUX yields the largest delays of any work-conserving locally-FIFO
    scheduler and therefore serves as the reference benchmark (paper
    Sec. III).
    """
    return _BMUX(low_priority_flow)


class EDF(DeltaScheduler):
    """Earliest-Deadline-First with per-flow a priori delay constraints.

    Each flow ``k`` carries a deadline offset ``d*_k``; an arrival at ``t``
    is tagged ``t + d*_k`` and service is by increasing tag.  Hence
    ``Delta_{j,k} = d*_j - d*_k`` (paper Sec. III): traffic of a flow with
    a *larger* deadline than ``j`` only has precedence if it arrived
    sufficiently earlier.
    """

    name = "EDF"

    def __init__(self, deadlines: Mapping[FlowId, float]) -> None:
        if not deadlines:
            raise ValueError("deadlines must not be empty")
        for flow, d in deadlines.items():
            if d < 0 or not math.isfinite(d):
                raise ValueError(
                    f"deadline of flow {flow!r} must be finite and >= 0, got {d}"
                )
        self._deadlines = dict(deadlines)

    def deadline_of(self, flow: FlowId) -> float:
        """The a priori delay constraint ``d*`` of ``flow``."""
        return self._deadlines[flow]

    def delta(self, j: FlowId, k: FlowId) -> float:
        return self._deadlines[j] - self._deadlines[k]


class CustomDelta(DeltaScheduler):
    """A Delta-scheduler given by an explicit matrix.

    Parameters
    ----------
    matrix:
        ``matrix[(j, k)] = Delta_{j,k}``.  Missing diagonal entries default
        to 0 (locally FIFO); missing off-diagonal entries default to
        ``default`` (0, i.e. FIFO order, unless overridden).
    """

    name = "custom"

    def __init__(
        self,
        matrix: Mapping[tuple[FlowId, FlowId], float],
        *,
        default: float = 0.0,
        name: str = "custom",
    ) -> None:
        self._matrix = dict(matrix)
        self._default = default
        self.name = name
        for (j, k), value in self._matrix.items():
            if j == k and value != 0.0:
                raise ValueError(
                    f"Delta[{j!r},{j!r}] = {value} violates locally-FIFO"
                )
            if math.isnan(value):
                raise ValueError(f"Delta[{j!r},{k!r}] must not be NaN")

    def delta(self, j: FlowId, k: FlowId) -> float:
        if j == k:
            return self._matrix.get((j, k), 0.0)
        return self._matrix.get((j, k), self._default)
