"""Deterministic schedulability for Delta-schedulers (paper Theorem 2).

For a buffered link of capacity ``C`` carrying flows with deterministic
envelopes ``E_k`` under a Delta-scheduler, the delay of flow ``j`` never
exceeds ``d`` if (paper Eq. (24))::

    sup_{t > 0}  sum_{k in N_j} E_k( t + Delta_{j,k}(d) )  -  C t   <=   C d

with ``Delta_{j,k}(d) = min(Delta_{j,k}, d)``.  Theorem 2: the condition is
also *necessary* when the envelopes are concave — the adversarial greedy
arrival pattern of the proof (every flow sends exactly its envelope) forces
a violation whenever the condition fails.  This recovers the classical
exact schedulability conditions for FIFO, SP, and EDF.

The supremum is computed exactly: the inner function is piecewise linear
in ``t``, so it suffices to examine envelope breakpoints (shifted by the
capped deltas) plus the asymptotic slope.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

import numpy as np

from repro.arrivals.envelopes import DeterministicEnvelope
from repro.scheduling.delta import DeltaScheduler
from repro.utils.validation import check_int, check_non_negative, check_positive

FlowId = Hashable

_TOL = 1e-9


def _right_value(envelope: DeterministicEnvelope, u: float) -> float:
    """Right-limit evaluation ``E(u+)``: envelopes may jump at 0.

    The supremum over ``t > 0`` must account for the burst that becomes
    visible immediately after an envelope "turns on", so points where some
    shifted envelope argument equals 0 are evaluated from the right.
    """
    if u < 0:
        return 0.0
    return envelope.curve(u)  # curve(0) is the burst = right limit at 0


def schedulability_margin(
    scheduler: DeltaScheduler,
    envelopes: Mapping[FlowId, DeterministicEnvelope],
    capacity: float,
    flow: FlowId,
    delay: float,
) -> float:
    """Exact value of ``sup_{t>0} [ sum_k E_k(t + Delta_{j,k}(d)) - Ct ] - Cd``.

    Negative (or zero) means the condition of Eq. (24) holds; positive
    means it is violated.  Returns ``math.inf`` when the link is overloaded
    by the relevant flows (long-term rates exceed ``C``).
    """
    check_positive(capacity, "capacity")
    check_non_negative(delay, "delay")
    if flow not in envelopes:
        raise KeyError(f"flow {flow!r} has no envelope")
    relevant = scheduler.relevant_flows(flow, envelopes.keys())
    shifts = {k: scheduler.delta_capped(flow, k, delay) for k in relevant}

    total_rate = sum(envelopes[k].rate for k in relevant)
    if total_rate > capacity + _TOL:
        return math.inf

    # candidate times: for each envelope breakpoint x of flow k, the shifted
    # abscissa t = x - shift_k, plus the "turn-on" points t = -shift_k
    candidates = {0.0}
    for k in relevant:
        shift = shifts[k]
        for x in envelopes[k].curve.xs:
            if x - shift > 0:
                candidates.add(x - shift)
        if -shift > 0:
            candidates.add(-shift)
    # a probe beyond the last breakpoint (slopes are constant there; with
    # total_rate <= C the tail is nonincreasing, so this is conservative)
    candidates.add(max(candidates) + 1.0)

    worst = -math.inf
    for t in sorted(candidates):
        value = sum(_right_value(envelopes[k], t + shifts[k]) for k in relevant)
        worst = max(worst, value - capacity * t)
    return worst - capacity * delay


def deterministic_schedulability(
    scheduler: DeltaScheduler,
    envelopes: Mapping[FlowId, DeterministicEnvelope],
    capacity: float,
    flow: FlowId,
    delay: float,
) -> bool:
    """Does flow ``flow`` meet the worst-case delay bound ``delay``?

    Evaluates the paper's Eq. (24).  Sufficient for arbitrary envelopes;
    necessary and sufficient for concave envelopes (Theorem 2).  The
    tolerance is relative to the link capacity, matching the convergence
    tolerance of :func:`min_feasible_delay` so a returned minimal delay
    always satisfies its own condition.
    """
    margin = schedulability_margin(scheduler, envelopes, capacity, flow, delay)
    return margin <= _TOL * max(1.0, capacity)


def min_feasible_delay(
    scheduler: DeltaScheduler,
    envelopes: Mapping[FlowId, DeterministicEnvelope],
    capacity: float,
    flow: FlowId,
    *,
    max_iter: int = 200,
    tol: float = 1e-9,
) -> float:
    """Smallest delay bound ``d`` satisfying Eq. (24) for ``flow``.

    Uses the monotone fixed-point iteration

        ``d_{n+1} = (1/C) sup_{t>0} [ sum_k E_k(t + Delta_{j,k}(d_n)) - Ct ]_+``

    starting from ``d_0 = 0``.  The right-hand side is nondecreasing in
    ``d_n`` (the caps ``min(Delta, d)`` grow with ``d``), so the iteration
    increases monotonically to the least fixed point, which is the smallest
    feasible delay.  Returns ``math.inf`` for an overloaded link.
    """
    check_positive(capacity, "capacity")
    relevant = scheduler.relevant_flows(flow, envelopes.keys())
    if sum(envelopes[k].rate for k in relevant) > capacity + _TOL:
        return math.inf

    d = 0.0
    for _ in range(check_int(max_iter, "max_iter", minimum=1)):
        margin = schedulability_margin(scheduler, envelopes, capacity, flow, d)
        if margin <= tol * max(1.0, capacity):
            return d
        d_next = d + margin / capacity
        if d_next - d <= tol:
            return d_next
        d = d_next
    raise RuntimeError(
        f"min_feasible_delay did not converge within {max_iter} iterations"
    )


def adversarial_arrivals(
    envelope: DeterministicEnvelope, n_slots: int
) -> np.ndarray:
    """Greedy arrival pattern of the Theorem 2 necessity proof.

    Returns per-slot increments so that the cumulative arrivals trace the
    envelope exactly: ``A(t) = E(t)`` for integer ``t`` (each flow sends as
    much as its envelope ever allows).  Feeding these to the simulator
    realizes the worst case for concave envelopes.
    """
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    values = [envelope(t) for t in range(n_slots + 1)]
    increments = np.diff(values)
    if np.any(increments < -1e-12):
        raise ValueError("envelope must be nondecreasing")
    return np.maximum(increments, 0.0)
