"""Delta-schedulers (paper Definition 1) and schedulability (Theorem 2).

A **Delta-scheduler** is a work-conserving, locally-FIFO scheduling
algorithm whose precedence relation is fully captured by constants
``Delta_{j,k}``: an arrival of flow ``j`` at time ``t`` has precedence over
every arrival of flow ``k`` after ``t + Delta_{j,k}``.

Members implemented here:

* :func:`FIFO` — ``Delta = 0`` everywhere;
* :class:`StaticPriority` — ``Delta in {-inf, 0, +inf}`` by priority level;
* :func:`BMUX` — blind multiplexing, the analyzed flow at lowest priority;
* :class:`EDF` — ``Delta_{j,k} = d*_j - d*_k`` from per-flow deadlines;
* :class:`CustomDelta` — arbitrary user-supplied matrices.

GPS / fair queueing is *not* a Delta-scheduler (its precedence horizon is
random); see :mod:`repro.simulation.schedulers` where GPS is implemented
for empirical contrast.
"""

from repro.scheduling.delta import (
    BMUX,
    EDF,
    FIFO,
    CustomDelta,
    DeltaScheduler,
    StaticPriority,
)
from repro.scheduling.schedulability import (
    adversarial_arrivals,
    deterministic_schedulability,
    min_feasible_delay,
    schedulability_margin,
)

__all__ = [
    "DeltaScheduler",
    "FIFO",
    "BMUX",
    "EDF",
    "StaticPriority",
    "CustomDelta",
    "deterministic_schedulability",
    "schedulability_margin",
    "min_feasible_delay",
    "adversarial_arrivals",
]
