"""Scalar numeric optimization helpers.

The end-to-end delay bound of Section IV is minimized numerically over the
per-hop rate degradation ``gamma`` and the EBB envelope parameter ``alpha``
(the paper: "Since there is no explicit term for gamma, we optimize
numerically over gamma").  The objective is smooth but expensive, and we do
not need high-order methods: a coarse grid scan followed by golden-section
refinement around the best grid cell is robust and derivative-free.

:func:`minimize_piecewise_linear` is the exact minimizer used by the
theta-optimization of Eq. (38): the objective there is piecewise linear in
the single remaining variable, so evaluating it at all region breakpoints
yields the exact optimum.
"""

from __future__ import annotations

import math
import sys
from typing import Callable, Iterable, Sequence

from repro import obs

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0  # ~0.618

#: Largest exponent ``math.exp`` accepts without overflowing a double
#: (``log(sys.float_info.max)`` ~ 709.78).
EXP_OVERFLOW = math.log(sys.float_info.max)


def safe_exp(exponent: float) -> float:
    """Overflow-safe ``math.exp``: saturates to ``inf`` instead of raising.

    Below the overflow knee this is exactly ``math.exp`` (bitwise —
    underflow to 0.0 included); at ``exponent > EXP_OVERFLOW`` it
    returns ``inf`` where ``math.exp`` would raise :class:`OverflowError`.
    A saturated exponent means the bound (or likelihood ratio) being
    computed is vacuous, and ``inf`` propagates that honestly through
    the surrounding min/argmin searches.  Hot kernels must route every
    unbounded exponent through this helper — enforced by lint rule
    RPR006 (``python -m repro.lint --explain RPR006``).
    """
    if exponent > EXP_OVERFLOW:
        return math.inf
    return math.exp(exponent)


def bisect_increasing(
    func: Callable[[float], float],
    target: float,
    low: float,
    high: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Solve ``func(x) == target`` for a nondecreasing ``func`` on [low, high].

    Returns the smallest ``x`` with ``func(x) >= target`` up to ``tol``.
    Raises :class:`ValueError` if the target is not bracketed.
    """
    f_low = func(low)
    f_high = func(high)
    if f_low >= target:
        return low
    if f_high < target:
        raise ValueError(
            f"target {target} not reached on [{low}, {high}]: "
            f"f(high) = {f_high}"
        )
    steps = 0
    for _ in range(max_iter):
        mid = 0.5 * (low + high)
        if high - low <= tol * max(1.0, abs(mid)):
            break
        steps += 1
        if func(mid) >= target:
            high = mid
        else:
            low = mid
    if obs.enabled():
        obs.add("numeric.bisect_calls")
        obs.add("numeric.bisect_steps", steps)
    return high


def golden_section_min(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> tuple[float, float]:
    """Minimize a unimodal ``func`` on [low, high] by golden-section search.

    Returns ``(x_min, f_min)``.  If ``func`` is not unimodal the result is a
    local minimum inside the bracket, which is acceptable for the refinement
    step after a grid scan.
    """
    if high < low:
        raise ValueError(f"empty bracket [{low}, {high}]")
    a, b = low, high
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1, f2 = func(x1), func(x2)
    iterations = 0
    for _ in range(max_iter):
        if b - a <= tol * max(1.0, abs(a) + abs(b)):
            break
        iterations += 1
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLDEN * (b - a)
            f1 = func(x1)
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLDEN * (b - a)
            f2 = func(x2)
    if obs.enabled():
        obs.add("numeric.golden_calls")
        obs.add("numeric.golden_iterations", iterations)
    if f1 <= f2:
        return x1, f1
    return x2, f2


def refine_grid_minimum(
    func: Callable[[float], float],
    xs: Sequence[float],
    fs: Sequence[float],
    *,
    tol: float = 1e-9,
) -> tuple[float, float]:
    """Golden-section refinement around the argmin of a pre-evaluated grid.

    ``fs[i]`` must equal ``func(xs[i])`` (up to floating-point noise when
    the grid was evaluated by a vectorized twin of ``func``).  Picks the
    first grid minimum, refines within its bracketing cells, and keeps the
    grid point when refinement does not improve on it — exactly the tail
    of :func:`grid_then_golden`, shared so the batched (numpy) grid sweeps
    reuse the scalar refinement verbatim.
    """
    if len(xs) != len(fs):
        raise ValueError("xs and fs must have equal length")
    if not xs:
        raise ValueError("need at least one grid point")
    if obs.enabled():
        obs.add("numeric.refine_calls")
    best = min(range(len(xs)), key=lambda i: fs[i])
    if not math.isfinite(fs[best]):
        return xs[best], fs[best]
    lo = xs[max(0, best - 1)]
    hi = xs[min(len(xs) - 1, best + 1)]
    x_ref, f_ref = golden_section_min(func, lo, hi, tol=tol)
    if f_ref <= fs[best]:
        return x_ref, f_ref
    return xs[best], fs[best]


def grid_then_golden(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    grid_points: int = 32,
    tol: float = 1e-9,
    log_spaced: bool = False,
) -> tuple[float, float]:
    """Minimize ``func`` on [low, high]: coarse grid scan, then refine.

    The grid scan makes the search robust to multiple local minima; the
    golden-section pass refines within the bracketing cells of the best grid
    point (see :func:`refine_grid_minimum`).  ``func`` may return
    ``math.inf`` for infeasible points.
    """
    if high < low:
        raise ValueError(f"empty bracket [{low}, {high}]")
    if grid_points < 3:
        raise ValueError("grid_points must be >= 3")
    if log_spaced:
        if low <= 0:
            raise ValueError("log-spaced grid requires low > 0")
        ratio = (high / low) ** (1.0 / (grid_points - 1))
        xs = [low * ratio**i for i in range(grid_points)]
    else:
        step = (high - low) / (grid_points - 1)
        xs = [low + i * step for i in range(grid_points)]
    fs = [func(x) for x in xs]
    if obs.enabled():
        obs.add("numeric.grid_evals", len(xs))
    return refine_grid_minimum(func, xs, fs, tol=tol)


def minimize_piecewise_linear(
    func: Callable[[float], float],
    breakpoints: Iterable[float],
    *,
    lower: float = 0.0,
    upper: float | None = None,
) -> tuple[float, float]:
    """Exactly minimize a piecewise-linear ``func`` given its breakpoints.

    A piecewise-linear function attains its minimum at a breakpoint (or at a
    boundary of the feasible interval), so it suffices to evaluate ``func``
    at every candidate.  Candidates outside ``[lower, upper]`` are clipped
    out; ``lower`` (and ``upper`` when given) are always included.
    """
    candidates = {lower}
    if upper is not None:
        candidates.add(upper)
    for point in breakpoints:
        if not math.isfinite(point):
            continue
        if point < lower:
            continue
        if upper is not None and point > upper:
            continue
        candidates.add(point)
    best_x = lower
    best_f = math.inf
    for x in sorted(candidates):
        f = func(x)
        if f < best_f:
            best_x, best_f = x, f
    return best_x, best_f


def logspace(low: float, high: float, count: int) -> list[float]:
    """Return ``count`` log-spaced points on [low, high] (both > 0)."""
    if low <= 0 or high <= 0:
        raise ValueError("logspace requires positive endpoints")
    if count < 2:
        return [low]
    ratio = (high / low) ** (1.0 / (count - 1))
    return [low * ratio**i for i in range(count)]


def weighted_union_bound_constant(
    prefactors: Sequence[float], rates: Sequence[float]
) -> tuple[float, float]:
    """Optimal combination of exponential bounding functions (paper Eq. (33)).

    Given bounding functions ``eps_j(sigma) = M_j * exp(-alpha_j * sigma)``,
    the infimum of ``sum_j eps_j(sigma_j)`` over all splits
    ``sum_j sigma_j = sigma`` is again exponential::

        inf = w * prod_j (M_j * alpha_j)^(1 / (alpha_j * w)) * exp(-sigma / w)

    with ``w = sum_j 1 / alpha_j``.  (The formula as printed in the paper's
    Eq. (33) is garbled by typesetting; this is the correct statement from
    Ciucu, Burchard, Liebeherr, IEEE Trans. IT 2006, and it reproduces the
    paper's Eq. (34) exactly — verified in the test suite.)

    Returns ``(M_combined, alpha_combined)`` with
    ``inf = M_combined * exp(-alpha_combined * sigma)``.
    """
    if len(prefactors) != len(rates):
        raise ValueError("prefactors and rates must have equal length")
    if not prefactors:
        raise ValueError("need at least one bounding function")
    w = 0.0
    for rate in rates:
        if rate <= 0:
            raise ValueError(f"exponential decay rates must be > 0, got {rate}")
        w += 1.0 / rate
    log_m = math.log(w)
    for m, rate in zip(prefactors, rates):
        if m <= 0:
            raise ValueError(f"prefactors must be > 0, got {m}")
        log_m += math.log(m * rate) / (rate * w)
    return math.exp(log_m), 1.0 / w
