"""Argument-validation helpers.

All public entry points of the library validate their inputs eagerly and
raise :class:`ValueError` (or :class:`TypeError`) with a message that names
the offending parameter.  Failing fast keeps errors close to their cause,
which matters in a library whose results feed long optimization loops.
"""

from __future__ import annotations

import math
from typing import Any


def _name(label: str) -> str:
    return label if label else "value"


def check_finite(value: float, label: str = "") -> float:
    """Return ``value`` if it is a finite real number, else raise.

    Accepts ints and floats (and numpy scalars via ``float()``).
    """
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{_name(label)} must be a real number, got {value!r}") from exc
    if not math.isfinite(as_float):
        raise ValueError(f"{_name(label)} must be finite, got {as_float!r}")
    return as_float


def check_positive(value: float, label: str = "") -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    as_float = check_finite(value, label)
    if as_float <= 0:
        raise ValueError(f"{_name(label)} must be > 0, got {as_float!r}")
    return as_float


def check_non_negative(value: float, label: str = "") -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    as_float = check_finite(value, label)
    if as_float < 0:
        raise ValueError(f"{_name(label)} must be >= 0, got {as_float!r}")
    return as_float


def check_probability(value: float, label: str = "") -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    as_float = check_finite(value, label)
    if not 0.0 <= as_float <= 1.0:
        raise ValueError(f"{_name(label)} must be in [0, 1], got {as_float!r}")
    return as_float


def check_in_range(
    value: float,
    low: float,
    high: float,
    label: str = "",
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> float:
    """Return ``value`` if it lies in the interval [low, high] (open as requested)."""
    as_float = check_finite(value, label)
    low_ok = as_float > low if low_open else as_float >= low
    high_ok = as_float < high if high_open else as_float <= high
    if not (low_ok and high_ok):
        lo_br = "(" if low_open else "["
        hi_br = ")" if high_open else "]"
        raise ValueError(
            f"{_name(label)} must be in {lo_br}{low}, {high}{hi_br}, got {as_float!r}"
        )
    return as_float


def check_int(value: Any, label: str = "", *, minimum: int | None = None) -> int:
    """Return ``value`` as an int, raising if it is not integral.

    Floats are accepted only when they are exactly integral (e.g. 3.0).
    """
    if isinstance(value, bool):
        raise TypeError(f"{_name(label)} must be an integer, got bool {value!r}")
    if isinstance(value, int):
        as_int = value
    elif isinstance(value, float) and value.is_integer():
        as_int = int(value)
    else:
        try:
            # numpy integer scalars land here
            if float(value).is_integer():
                as_int = int(value)
            else:
                raise ValueError
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"{_name(label)} must be an integer, got {value!r}"
            ) from exc
    if minimum is not None and as_int < minimum:
        raise ValueError(f"{_name(label)} must be >= {minimum}, got {as_int}")
    return as_int
