"""Shared utilities: numeric optimization helpers and argument validation.

These are deliberately dependency-light.  The analysis code in
:mod:`repro.network` relies on :func:`repro.utils.numeric.golden_section_min`
and :func:`repro.utils.numeric.grid_then_golden` for the numeric
optimization over the free parameters ``gamma`` and ``alpha`` of the
end-to-end delay bound (Section IV of the paper).
"""

from repro.utils.numeric import (
    bisect_increasing,
    golden_section_min,
    grid_then_golden,
    minimize_piecewise_linear,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "bisect_increasing",
    "golden_section_min",
    "grid_then_golden",
    "minimize_piecewise_linear",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
