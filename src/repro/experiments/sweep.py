"""Declarative sweep pipeline: cells, specs, and the run engine.

Every figure of the paper is a sweep over (scheduler, H, U-or-mix)
cells, each paying a nested free-parameter optimization.  Instead of
hand-rolling the triple loop per figure, an experiment *declares* its
grid:

* :class:`Cell` — one grid point: a frozen, hashable record naming a
  top-level cell function (``"pkg.module:function"``) plus its keyword
  parameters.  Being plain data, cells pickle across process boundaries
  and hash into stable cache keys.
* :class:`SweepSpec` — the ordered cell grid of one experiment plus the
  sweep-level settings (optimization grid sizes, traffic constants)
  that enter every cell's cache key.
* :func:`run_sweep` — executes a spec through a pluggable executor
  (serial or ``multiprocessing``; see
  :mod:`repro.experiments.executor`), consulting an optional on-disk
  :class:`~repro.experiments.cache.CellCache` so warm re-runs only
  recompute changed cells.

A cell function receives the cell parameters as keyword arguments and
returns a JSON-serializable payload ``{"rows": [...], "diagnostics":
{...}}`` where each row is ``{"series", "x", "delay", "extra"}`` (or any
flat mapping, for non-figure sweeps such as validation).  Results come
back in grid order regardless of executor, so parallel rows are
identical to serial ones.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import obs
from repro.experiments.cache import CellCache
from repro.experiments.executor import SerialExecutor
from repro.experiments.runner import ExperimentRow

Pairs = tuple[tuple[str, Any], ...]


def _freeze_value(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so cells stay hashable."""
    if isinstance(value, dict):
        return tuple(
            (str(k), _freeze_value(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def freeze(params: Mapping[str, Any] | Pairs) -> Pairs:
    """Normalize a parameter mapping into sorted, hashable pairs."""
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(
        (str(k), _freeze_value(v)) for k, v in sorted(items, key=lambda kv: str(kv[0]))
    )


@dataclass(frozen=True)
class Cell:
    """One grid point of a sweep: a cell function plus its parameters.

    ``fn`` is a dotted path ``"package.module:function"`` naming a
    top-level (hence picklable) function; ``params`` are its keyword
    arguments as sorted ``(name, value)`` pairs of plain values.
    """

    fn: str
    params: Pairs = ()

    @classmethod
    def make(cls, fn: str, **params: Any) -> "Cell":
        return cls(fn=fn, params=freeze(params))

    @property
    def kwargs(self) -> dict[str, Any]:
        """The parameters as a keyword-argument dict."""
        return dict(self.params)

    def resolve(self) -> Callable[..., Mapping[str, Any]]:
        """Import and return the cell function."""
        module_name, _, func_name = self.fn.partition(":")
        if not func_name:
            raise ValueError(
                f"cell fn must be 'module:function', got {self.fn!r}"
            )
        module = importlib.import_module(module_name)
        return getattr(module, func_name)


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def cell_key(cell: Cell, settings: Pairs = ()) -> str:
    """Stable content hash of a cell's function, parameters, and settings.

    Any change to the cell parameters or the sweep-level settings (grid
    sizes, traffic constants, ...) changes the key, which is what makes
    the on-disk cache safely content-keyed.
    """
    digest = hashlib.sha256(
        _canonical_json(
            {"fn": cell.fn, "params": cell.params, "settings": settings}
        ).encode()
    )
    return digest.hexdigest()


def execute_cell(cell: Cell) -> dict[str, Any]:
    """Run one cell and time it (the unit mapped by the executors).

    Top-level so that :class:`~repro.experiments.executor.ParallelExecutor`
    can pickle it into worker processes.
    """
    start = time.perf_counter()
    payload = dict(cell.resolve()(**cell.kwargs))
    payload.setdefault("diagnostics", {})
    payload["wall_time_s"] = time.perf_counter() - start
    return payload


def execute_cell_traced(item: tuple[Cell, float]) -> dict[str, Any]:
    """:func:`execute_cell` with a per-cell metrics snapshot attached.

    ``item`` is ``(cell, submitted_at)`` where ``submitted_at`` is the
    parent's ``time.time()`` at fan-out, so the cell's queue wait (time
    spent before a worker picked it up) can be measured across process
    boundaries without a shared clock source beyond the wall clock.

    The cell runs against a fresh scoped registry — in a pool worker the
    process registry is disabled, and under the serial executor this
    keeps the cell's metrics separable from the parent's — and the
    registry's snapshot is embedded in the payload as ``"metrics"``.
    The parent merges these snapshots after the executor joins.
    """
    cell, submitted_at = item
    started_at = time.time()
    with obs.scoped(enabled=True) as registry:
        payload = execute_cell(cell)
        registry.set_gauge(
            "cell.queue_wait_s", max(0.0, started_at - submitted_at)
        )
        registry.set_gauge("cell.worker_pid", os.getpid())
        payload["metrics"] = registry.snapshot()
    return payload


def probe_cell(**params: Any) -> dict[str, Any]:  # repro: noqa=RPR002 -- diagnostic cell: accepts arbitrary probe params by design, never cached for results
    """A trivial cell used by the test suite to observe executions.

    If ``record`` names a file, one line is appended per execution (so
    tests can count cache hits vs. recomputations without timing); a
    ``sleep_ms`` parameter stretches the cell's runtime (so interruption
    tests can kill a sweep mid-flight deterministically).
    """
    record = params.get("record")
    if record:
        with open(record, "a") as handle:  # repro: noqa=RPR001 -- deliberate I/O: tests count executions via this side channel
            handle.write("run\n")
    sleep_ms = float(params.get("sleep_ms", 0.0))
    if sleep_ms > 0.0:
        time.sleep(sleep_ms / 1000.0)  # repro: noqa=RPR001 -- deliberate delay: interruption tests stretch cell runtime
    value = float(params.get("value", 0.0))
    return {
        "rows": [
            {
                "series": str(params.get("series", "probe")),
                "x": value,
                "delay": value,
                "extra": {},
            }
        ],
        "diagnostics": {"probe": True},
    }


@dataclass(frozen=True)
class SweepSpec:
    """The ordered cell grid of one experiment.

    ``settings`` are sweep-level inputs shared by every cell (grid
    sizes, traffic constants); they are folded into every cell's cache
    key but not passed to the cell function — anything the function
    needs must be a cell parameter.
    """

    name: str
    cells: tuple[Cell, ...]
    settings: Pairs = ()
    x_label: str = "x"

    @classmethod
    def build(
        cls,
        name: str,
        cells: Iterable[Cell],
        *,
        settings: Mapping[str, Any] | Pairs = (),
        x_label: str = "x",
    ) -> "SweepSpec":
        return cls(
            name=name,
            cells=tuple(cells),
            settings=freeze(settings),
            x_label=x_label,
        )

    def keys(self) -> list[str]:
        return [cell_key(cell, self.settings) for cell in self.cells]


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell: its rows, diagnostics, and provenance.

    ``metrics`` is the cell's own observability snapshot (see
    :mod:`repro.obs`) when the sweep ran with tracing enabled — for
    cached cells it is whatever snapshot the original traced run stored,
    which makes it provenance like ``wall_time_s``, not a record of this
    run.  ``None`` when the cell was computed untraced.
    """

    cell: Cell
    key: str
    rows: tuple[Mapping[str, Any], ...]
    diagnostics: Mapping[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cached: bool = False
    metrics: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class SweepResult:
    """All cell results of one sweep, in grid order."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]

    @property
    def rows(self) -> list[dict[str, Any]]:
        """Every cell's rows, flattened in grid order, as plain dicts."""
        return [dict(row) for cell in self.cells for row in cell.rows]

    def experiment_rows(self) -> list[ExperimentRow]:
        """The rows as :class:`ExperimentRow` records (figure sweeps)."""
        return [
            ExperimentRow(
                series=row["series"],
                x=row["x"],
                delay=row["delay"],
                extra=dict(row.get("extra", {})),
            )
            for row in self.rows
        ]

    @property
    def total_wall_time_s(self) -> float:
        """Recorded compute time of all cells (cached ones report the
        wall-clock of the run that originally produced them)."""
        return sum(cell.wall_time_s for cell in self.cells)

    @property
    def computed_wall_time_s(self) -> float:
        """Compute time actually spent in this run (cache hits excluded)."""
        return sum(
            cell.wall_time_s for cell in self.cells if not cell.cached
        )

    @property
    def cached_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    def to_artifact(
        self, *, meta: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """A JSON-serializable artifact: rows + per-cell diagnostics.

        Contains everything needed to reproduce the sweep: the grid
        (every cell's function and parameters), the sweep settings, the
        rows, and per-cell wall-clock / diagnostics / cache provenance.
        """
        return {
            "schema": "repro.sweep/1",
            "name": self.spec.name,
            "x_label": self.spec.x_label,
            "settings": {k: v for k, v in self.spec.settings},
            "meta": dict(meta or {}),
            "total_wall_time_s": self.total_wall_time_s,
            "cached_cells": self.cached_cells,
            "rows": self.rows,
            "cells": [
                {
                    "fn": cell.cell.fn,
                    "params": {k: v for k, v in cell.cell.params},
                    "key": cell.key,
                    "cached": cell.cached,
                    "wall_time_s": cell.wall_time_s,
                    "diagnostics": dict(cell.diagnostics),
                    "rows": [dict(row) for row in cell.rows],
                    **(
                        {"metrics": dict(cell.metrics)}
                        if cell.metrics is not None
                        else {}
                    ),
                }
                for cell in self.cells
            ],
        }


OnCell = Callable[[int, Mapping[str, Any], bool], None]


def run_sweep(
    spec: SweepSpec,
    *,
    executor: Any = None,
    cache: CellCache | None = None,
    batch: bool = False,
    on_cell: OnCell | None = None,
) -> SweepResult:
    """Execute a sweep spec: cache lookups, then fan-out, then assembly.

    Cells whose key is present in ``cache`` are served from disk;
    the misses go through ``executor`` (serial by default), and their
    payloads are written back.  Results always come back in grid order,
    so executor choice cannot change the rows.

    ``batch=True`` routes the misses through the cross-cell batch
    planner (:mod:`repro.experiments.batch`): compatible cells fuse into
    lane groups solved in one vectorized call each, and the executor's
    unit of work becomes the batch.  Payloads — and therefore rows,
    cache entries, and artifacts — are bitwise identical to the
    per-cell path.

    ``on_cell(index, payload, cached)`` streams completions: it fires
    once per cell, for cache hits during lookup and for computed cells
    as their work unit finishes (in completion order when the executor
    supports streaming).  Callbacks run in the parent process.

    When the active :mod:`repro.obs` registry is enabled, misses run
    traced: every computed work unit's metrics snapshot is merged into
    the sweep-level registry, together with per-cell wall-time /
    queue-wait series and a per-worker cell count.  Per-cell runs embed
    the snapshot in the cell payload; batched runs merge one snapshot
    per batch (the batch shares its solver work, so per-cell
    attribution would double-count) and cells carry no ``"metrics"``.
    """
    executor = executor or SerialExecutor()
    keys = spec.keys()
    payloads: list[dict[str, Any] | None] = [None] * len(spec.cells)
    cached = [False] * len(spec.cells)

    with obs.trace(f"sweep.{spec.name}"):
        if cache is not None:
            with obs.trace("sweep.cache_lookup"):
                for index, key in enumerate(keys):
                    hit = cache.get(key)
                    if hit is not None:
                        payloads[index] = hit
                        cached[index] = True
                        if on_cell is not None:
                            on_cell(index, hit, True)

        missing = [i for i, payload in enumerate(payloads) if payload is None]
        traced = obs.enabled()

        def complete(index: int, payload: dict[str, Any]) -> None:
            payloads[index] = payload
            if cache is not None:
                cache.put(keys[index], payload)
            if on_cell is not None:
                on_cell(index, payload, False)

        if missing and batch:
            _run_batched(spec, missing, executor, traced, complete)
        elif missing:
            if traced:
                submitted_at = time.time()
                fn: Any = execute_cell_traced
                items: list[Any] = [
                    (spec.cells[i], submitted_at) for i in missing
                ]
            else:
                fn = execute_cell
                items = [spec.cells[i] for i in missing]

            def deliver(position: int, payload: dict[str, Any]) -> None:
                if traced:
                    _merge_cell_metrics(payload)
                complete(missing[position], payload)

            _map_stream(executor, fn, items, deliver)

    results = tuple(
        CellResult(
            cell=spec.cells[index],
            key=keys[index],
            rows=tuple(payload.get("rows", ())),
            diagnostics=payload.get("diagnostics", {}),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            cached=cached[index],
            metrics=payload.get("metrics"),
        )
        for index, payload in enumerate(payloads)
    )
    return SweepResult(spec=spec, cells=results)


def _map_stream(
    executor: Any,
    fn: Callable[[Any], Any],
    items: list[Any],
    deliver: Callable[[int, Any], None],
) -> None:
    """Stream ``fn`` over ``items``, tolerating map-only executors."""
    stream = getattr(executor, "map_stream", None)
    if stream is not None:
        stream(fn, items, deliver)
        return
    for position, result in enumerate(executor.map(fn, items)):
        deliver(position, result)


def _run_batched(
    spec: SweepSpec,
    missing: list[int],
    executor: Any,
    traced: bool,
    complete: Callable[[int, dict[str, Any]], None],
) -> None:
    """Plan the missing cells into batches and fan the batches out."""
    # Imported here: the batch planner imports this module.
    from repro.experiments.batch import (
        execute_batch,
        execute_batch_traced,
        plan_batches,
    )

    batches = plan_batches(
        spec, missing, jobs=int(getattr(executor, "jobs", 1))
    )
    if traced:
        submitted_at = time.time()
        fn: Any = execute_batch_traced
        items: list[Any] = [(b, submitted_at) for b in batches]
    else:
        fn = execute_batch
        items = list(batches)

    def deliver(position: int, result: Any) -> None:
        if traced:
            cell_payloads = result["payloads"]
            _merge_batch_metrics(result["metrics"], cell_payloads)
        else:
            cell_payloads = result
        for index, payload in zip(batches[position].indices, cell_payloads):
            complete(index, payload)

    _map_stream(executor, fn, items, deliver)


def _merge_cell_metrics(payload: Mapping[str, Any]) -> None:
    """Fold one computed cell's snapshot into the sweep-level registry."""
    snap = payload.get("metrics")
    if not isinstance(snap, Mapping):
        return
    obs.merge(snap)
    obs.observe("sweep.cell_wall_time_s", float(payload.get("wall_time_s", 0.0)))
    gauges = snap.get("gauges", {})
    queue_wait = gauges.get("cell.queue_wait_s")
    if queue_wait is not None:
        obs.observe("sweep.cell_queue_wait_s", float(queue_wait))
    pid = gauges.get("cell.worker_pid")
    if pid is not None:
        obs.add(f"sweep.worker.{int(pid)}.cells")


def _merge_batch_metrics(
    snap: Mapping[str, Any], payloads: Sequence[Mapping[str, Any]]
) -> None:
    """Fold one computed batch's snapshot into the sweep-level registry.

    The snapshot is merged once per batch — its cells share the fused
    solver work, so per-cell merging would double-count — while the
    wall-time series still gets one (amortized) observation per cell.
    """
    if not isinstance(snap, Mapping):
        return
    obs.merge(snap)
    for payload in payloads:
        obs.observe(
            "sweep.cell_wall_time_s", float(payload.get("wall_time_s", 0.0))
        )
    gauges = snap.get("gauges", {})
    queue_wait = gauges.get("cell.queue_wait_s")
    if queue_wait is not None:
        obs.observe("sweep.cell_queue_wait_s", float(queue_wait))
    pid = gauges.get("cell.worker_pid")
    if pid is not None:
        obs.add(f"sweep.worker.{int(pid)}.cells", len(payloads))
