"""Example 2 (paper Fig. 3): delay bounds vs. traffic mix at constant U.

Setting: total utilization fixed at ``U = 50%``; the mix ``U_c / U``
(fraction contributed by cross traffic) sweeps across (0, 1); path
lengths ``H in {2, 5, 10}``.  Schedulers: BMUX, FIFO, and EDF in two
variants — *short* through deadlines (``d*_0 = d*_c / 2``, through
favored) and *long* through deadlines (``d*_0 = 2 d*_c``, through
penalized).

Expected shape (paper's reading of Fig. 3): although U is constant, the
bounds depend on the mix; EDF-short is almost insensitive to the mix at
``H = 2`` (and can even *decrease* with more cross traffic); a larger
``d*_0/d*_c`` ratio makes the bound more sensitive to cross traffic; as
``H`` grows all Delta-schedulers drift toward BMUX-like behaviour.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import PaperSetting, grids, paper_setting
from repro.experiments.runner import ExperimentRow
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo

DEFAULT_MIXES = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_HOPS = (2, 5, 10)
SCHEDULERS = ("BMUX", "FIFO", "EDF short", "EDF long")

#: Deadline-weight pairs (w_through, w_cross) of the two EDF variants:
#: "short" means the through deadline is half the cross deadline.
EDF_WEIGHTS = {"EDF short": (1.0, 2.0), "EDF long": (2.0, 1.0)}

TOTAL_UTILIZATION = 0.50


def run_example2(
    *,
    mixes: Sequence[float] = DEFAULT_MIXES,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
) -> list[ExperimentRow]:
    """Compute the Fig. 3 series.

    ``x`` is the cross-traffic share ``U_c / U``; the series label is
    ``"<scheduler> H=<H>"``.
    """
    setting = setting or paper_setting()
    grid = grids(quick)
    n_total = setting.flows_for_utilization(TOTAL_UTILIZATION)
    rows: list[ExperimentRow] = []
    for h in hops:
        for mix in mixes:
            n_cross = round(mix * n_total)
            n_through = max(n_total - n_cross, 1)
            for scheduler in schedulers:
                if scheduler in EDF_WEIGHTS:
                    w_through, w_cross = EDF_WEIGHTS[scheduler]
                    result, delta = e2e_delay_bound_edf(
                        setting.traffic, n_through, n_cross, h,
                        setting.capacity, setting.epsilon,
                        deadline_weight_through=w_through,
                        deadline_weight_cross=w_cross,
                        **grid,
                    )
                else:
                    delta = math.inf if scheduler == "BMUX" else 0.0
                    result = e2e_delay_bound_mmoo(
                        setting.traffic, n_through, n_cross, h,
                        setting.capacity, delta, setting.epsilon,
                        **grid,
                    )
                rows.append(
                    ExperimentRow(
                        series=f"{scheduler} H={h}",
                        x=mix,
                        delay=result.delay,
                        extra={"delta": delta, "gamma": result.gamma},
                    )
                )
    return rows
