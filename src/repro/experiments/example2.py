"""Example 2 (paper Fig. 3): delay bounds vs. traffic mix at constant U.

Setting: total utilization fixed at ``U = 50%``; the mix ``U_c / U``
(fraction contributed by cross traffic) sweeps across (0, 1); path
lengths ``H in {2, 5, 10}``.  Schedulers: BMUX, FIFO, and EDF in two
variants — *short* through deadlines (``d*_0 = d*_c / 2``, through
favored) and *long* through deadlines (``d*_0 = 2 d*_c``, through
penalized).

Expected shape (paper's reading of Fig. 3): although U is constant, the
bounds depend on the mix; EDF-short is almost insensitive to the mix at
``H = 2`` (and can even *decrease* with more cross traffic); a larger
``d*_0/d*_c`` ratio makes the bound more sensitive to cross traffic; as
``H`` grows all Delta-schedulers drift toward BMUX-like behaviour.

Declared as :func:`fig3_spec` over the top-level :func:`fig3_cell`;
:func:`run_example2` executes it through the sweep engine.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import (
    DEFAULT_BACKEND,
    PaperSetting,
    grids,
    paper_setting,
    setting_from_params,
    setting_to_params,
)
from repro.experiments.batch import CellPlan, edf_diagnostics
from repro.experiments.runner import ExperimentRow
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo
from repro.network.lanes import EDFLaneSpec, LaneSpec

DEFAULT_MIXES = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_HOPS = (2, 5, 10)
SCHEDULERS = ("BMUX", "FIFO", "EDF short", "EDF long")

#: Deadline-weight pairs (w_through, w_cross) of the two EDF variants:
#: "short" means the through deadline is half the cross deadline.
EDF_WEIGHTS = {"EDF short": (1.0, 2.0), "EDF long": (2.0, 1.0)}

TOTAL_UTILIZATION = 0.50

CELL_FN = "repro.experiments.example2:fig3_cell"


def _fig3_payload(
    scheduler: str, hops: int, mix: float, result, delta: float,
    diagnostics: dict,
) -> dict:
    """The cell payload; shared by the per-cell and the batched path."""
    return {
        "rows": [
            {
                "series": f"{scheduler} H={hops}",
                "x": mix,
                "delay": result.delay,
                "extra": {"delta": delta, "gamma": result.gamma},
            }
        ],
        "diagnostics": diagnostics,
    }


def fig3_cell(
    *,
    scheduler: str,
    hops: int,
    mix: float,
    utilization: float,
    traffic: tuple,
    capacity: float,
    epsilon: float,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """One (scheduler, H, mix) point of Fig. 3 — pure and picklable."""
    setting = setting_from_params(traffic, capacity, epsilon)
    grid = {"s_grid": s_grid, "gamma_grid": gamma_grid, "backend": backend}
    n_total = setting.flows_for_utilization(utilization)
    n_cross = round(mix * n_total)
    n_through = max(n_total - n_cross, 1)
    if scheduler in EDF_WEIGHTS:
        w_through, w_cross = EDF_WEIGHTS[scheduler]
        bound = e2e_delay_bound_edf(
            setting.traffic, n_through, n_cross, hops,
            setting.capacity, setting.epsilon,
            deadline_weight_through=w_through,
            deadline_weight_cross=w_cross,
            **grid,
        )
        return _fig3_payload(
            scheduler, hops, mix, bound.result, bound.delta,
            edf_diagnostics(bound),
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    result = e2e_delay_bound_mmoo(
        setting.traffic, n_through, n_cross, hops,
        setting.capacity, delta, setting.epsilon,
        **grid,
    )
    return _fig3_payload(scheduler, hops, mix, result, delta, {})


def fig3_plan(params: dict) -> CellPlan:
    """Batch plan of one Fig. 3 cell (see :mod:`repro.experiments.batch`)."""
    scheduler = params["scheduler"]
    hops, mix = params["hops"], params["mix"]
    setting = setting_from_params(
        params["traffic"], params["capacity"], params["epsilon"]
    )
    n_total = setting.flows_for_utilization(params["utilization"])
    n_cross = round(mix * n_total)
    n_through = max(n_total - n_cross, 1)
    grid = {
        "s_grid": params["s_grid"],
        "gamma_grid": params["gamma_grid"],
        "backend": params.get("backend", DEFAULT_BACKEND),
    }
    if scheduler in EDF_WEIGHTS:
        w_through, w_cross = EDF_WEIGHTS[scheduler]
        return CellPlan(
            kind="edf",
            spec=EDFLaneSpec(
                setting.traffic, n_through, n_cross, hops,
                setting.capacity, setting.epsilon,
                deadline_weight_through=w_through,
                deadline_weight_cross=w_cross,
                **grid,
            ),
            build=lambda bound: _fig3_payload(
                scheduler, hops, mix, bound.result, bound.delta,
                edf_diagnostics(bound),
            ),
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    return CellPlan(
        kind="mmoo",
        spec=LaneSpec(
            setting.traffic, n_through, n_cross, hops,
            setting.capacity, delta, setting.epsilon, **grid,
        ),
        build=lambda result: _fig3_payload(
            scheduler, hops, mix, result, delta, {}
        ),
    )


def fig3_spec(
    *,
    mixes: Sequence[float] = DEFAULT_MIXES,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> SweepSpec:
    """Declare the Fig. 3 grid (one cell per (scheduler, H, mix) point)."""
    setting = setting or paper_setting()
    shared = {
        **setting_to_params(setting),
        **grids(quick),
        "utilization": TOTAL_UTILIZATION,
        "backend": backend,
    }
    cells = [
        Cell.make(CELL_FN, scheduler=scheduler, hops=h, mix=mix, **shared)
        for h in hops
        for mix in mixes
        for scheduler in schedulers
    ]
    return SweepSpec.build(
        "fig3",
        cells,
        settings={"quick": quick, **shared},
        x_label="Uc/U",
    )


def run_example2(
    *,
    mixes: Sequence[float] = DEFAULT_MIXES,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    executor=None,
    cache=None,
) -> list[ExperimentRow]:
    """Compute the Fig. 3 series through the sweep engine.

    ``x`` is the cross-traffic share ``U_c / U``; the series label is
    ``"<scheduler> H=<H>"``.
    """
    spec = fig3_spec(
        mixes=mixes, hops=hops, schedulers=schedulers,
        setting=setting, quick=quick,
    )
    return run_sweep(spec, executor=executor, cache=cache).experiment_rows()
