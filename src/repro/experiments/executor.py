"""Pluggable cell executors for the sweep pipeline.

An executor turns a list of independent work items into a list of
results, preserving order.  Two implementations:

* :class:`SerialExecutor` — runs the cells in-process, in grid order;
* :class:`ParallelExecutor` — fans the cells out over a
  ``multiprocessing`` pool (``--jobs N`` on the CLI).

Cells are embarrassingly parallel (no shared state between (scheduler,
H, U) points), so the executors need no coordination beyond order
preservation: ``map`` always returns results in the order of its input,
which keeps parallel rows byte-identical to serial ones.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence, TypeVar

from repro import obs

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """Run every cell in the calling process, in order."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if obs.enabled():
            obs.add("executor.batches")
            obs.add("executor.items", len(items))
            obs.set_gauge("executor.jobs", 1)
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan cells out over a ``multiprocessing`` pool of ``jobs`` workers.

    The mapped callable and the items must be picklable (every cell
    function of the experiment modules is a top-level function, and
    :class:`~repro.experiments.sweep.Cell` is a frozen record of plain
    values).  ``chunksize=1`` keeps scheduling dynamic: cell costs vary
    by orders of magnitude (an EDF fixed point vs. a closed-form BMUX
    bound), so static chunking would serialize the slow tail.
    """

    def __init__(self, jobs: int, *, start_method: str | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if obs.enabled():
            obs.add("executor.batches")
            obs.add("executor.items", len(items))
            obs.set_gauge("executor.jobs", self.jobs)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(items))
        with context.Pool(processes=workers) as pool:
            with obs.trace("executor.pool_map"):
                return pool.map(fn, items, chunksize=1)

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def make_executor(jobs: int = 1) -> SerialExecutor | ParallelExecutor:
    """``jobs == 1`` -> serial; ``jobs > 1`` -> a process pool."""
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
