"""Pluggable work executors for the sweep pipeline.

An executor turns a list of independent work items into a list of
results, preserving order.  Three implementations:

* :class:`SerialExecutor` — runs the items in-process, in order;
* :class:`ParallelExecutor` — fans the items out over a
  ``multiprocessing`` pool with dynamic ``chunksize=1`` scheduling;
* :class:`WorkStealingExecutor` — per-worker queues with tail stealing
  (``--jobs N`` on the CLI).  Each worker is seeded a contiguous run of
  items and pops its own queue front; an idle worker steals from the
  tail of the longest remaining queue.  With batched sweeps the unit of
  work is a whole :class:`~repro.experiments.batch.Batch`, whose costs
  vary by orders of magnitude (a fused EDF lane group vs. a singleton
  fallback cell), so stealing — not static chunking — is what keeps the
  tail short.

All executors also expose ``map_stream(fn, items, on_result)``, which
delivers each ``(index, result)`` to ``on_result`` as it completes (in
completion order) while still returning the full result list in input
order.  The streaming callback runs in the parent process, so callers
can write artifacts or fill caches incrementally without coordination.

Items are embarrassingly parallel (no shared state between grid
points), so order preservation is the only contract that keeps parallel
rows byte-identical to serial ones.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Callable, Sequence, TypeVar

from repro import obs

T = TypeVar("T")
R = TypeVar("R")

OnResult = Callable[[int, R], None]


def _serial_stream(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_result: OnResult | None,
) -> list[R]:
    results = []
    for index, item in enumerate(items):
        result = fn(item)
        if on_result is not None:
            on_result(index, result)
        results.append(result)
    return results


class SerialExecutor:
    """Run every item in the calling process, in order."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return self.map_stream(fn, items, None)

    def map_stream(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        if obs.enabled():
            obs.add("executor.batches")
            obs.add("executor.items", len(items))
            obs.set_gauge("executor.jobs", 1)
        return _serial_stream(fn, items, on_result)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan items out over a ``multiprocessing`` pool of ``jobs`` workers.

    The mapped callable and the items must be picklable (every cell
    function of the experiment modules is a top-level function, and
    :class:`~repro.experiments.sweep.Cell` is a frozen record of plain
    values).  ``chunksize=1`` keeps scheduling dynamic: cell costs vary
    by orders of magnitude (an EDF fixed point vs. a closed-form BMUX
    bound), so static chunking would serialize the slow tail.
    """

    def __init__(self, jobs: int, *, start_method: str | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return self.map_stream(fn, items, None)

    def map_stream(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        items = list(items)
        if obs.enabled():
            obs.add("executor.batches")
            obs.add("executor.items", len(items))
            obs.set_gauge("executor.jobs", self.jobs)
        if self.jobs == 1 or len(items) <= 1:
            return _serial_stream(fn, items, on_result)
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(items))
        with context.Pool(processes=workers) as pool:
            with obs.trace("executor.pool_map"):
                results = []
                for index, result in enumerate(
                    pool.imap(fn, items, chunksize=1)
                ):
                    if on_result is not None:
                        on_result(index, result)
                    results.append(result)
                return results

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def _seed_queues(n_items: int, workers: int) -> list[list[int]]:
    """Deal item indices into ``workers`` contiguous runs."""
    base, extra = divmod(n_items, workers)
    out = []
    pos = 0
    for worker in range(workers):
        size = base + (1 if worker < extra else 0)
        out.append(list(range(pos, pos + size)))
        pos += size
    return out


def _steal_worker(
    worker_id: int,
    fn: Callable,
    items: list,
    shared,
    lock,
    results,
) -> None:
    """Work-stealing loop of one worker process.

    Claims the front of its own queue; when empty, steals from the tail
    of the longest other queue (tail stealing keeps the victim's locality
    intact).  All queue state lives in a managed dict guarded by one
    lock, so no claimed item can be lost or run twice.  Every claimed
    index produces exactly one message on ``results``.
    """
    while True:
        with lock:
            queues = shared["queues"]
            index = None
            if queues[worker_id]:
                index = queues[worker_id].pop(0)
            else:
                victim = max(
                    range(len(queues)), key=lambda w: len(queues[w])
                )
                if queues[victim]:
                    index = queues[victim].pop()
                    shared["steals"] = shared["steals"] + 1
            if index is None:
                return
            shared["queues"] = queues
        try:
            results.put((index, fn(items[index]), None))
        except BaseException as exc:  # propagate to the parent, keep going
            results.put(
                (index, None, f"{type(exc).__name__}: {exc}\n"
                 f"{traceback.format_exc()}")
            )


class WorkStealingExecutor:
    """Process executor with per-worker queues and tail stealing.

    Items are seeded contiguously (worker 0 gets the first run, ...);
    each worker drains its own queue front-first and steals from the
    longest queue's tail once idle.  Results stream back to the parent
    in completion order through a queue, so ``map_stream`` callbacks
    fire as work finishes, not when the pool joins.

    ``last_steals`` records the steal count of the most recent ``map``
    (also accumulated into the ``executor.steals`` counter when the
    :mod:`repro.obs` registry is enabled).
    """

    def __init__(self, jobs: int, *, start_method: str | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method
        self.last_steals = 0

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return self.map_stream(fn, items, None)

    def map_stream(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        items = list(items)
        if obs.enabled():
            obs.add("executor.batches")
            obs.add("executor.items", len(items))
            obs.set_gauge("executor.jobs", self.jobs)
        if self.jobs == 1 or len(items) <= 1:
            self.last_steals = 0
            return _serial_stream(fn, items, on_result)
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(items))
        results: list = [None] * len(items)
        with context.Manager() as manager:
            lock = manager.Lock()
            shared = manager.dict()
            shared["queues"] = _seed_queues(len(items), workers)
            shared["steals"] = 0
            result_queue = context.Queue()
            procs = [
                context.Process(
                    target=_steal_worker,
                    args=(w, fn, items, shared, lock, result_queue),
                    daemon=True,
                )
                for w in range(workers)
            ]
            with obs.trace("executor.steal_map"):
                for proc in procs:
                    proc.start()
                try:
                    remaining = len(items)
                    while remaining:
                        try:
                            index, result, error = result_queue.get(
                                timeout=1.0
                            )
                        except queue_module.Empty:
                            if not any(p.is_alive() for p in procs):
                                raise RuntimeError(
                                    "work-stealing workers exited without "
                                    "delivering all results"
                                ) from None
                            continue
                        if error is not None:
                            raise RuntimeError(
                                f"work item {index} failed in worker: "
                                f"{error}"
                            )
                        results[index] = result
                        if on_result is not None:
                            on_result(index, result)
                        remaining -= 1
                finally:
                    for proc in procs:
                        if proc.is_alive():
                            proc.terminate()
                    for proc in procs:
                        proc.join()
                self.last_steals = int(shared["steals"])
        if obs.enabled():
            obs.add("executor.steals", self.last_steals)
        return results

    def __repr__(self) -> str:
        return f"WorkStealingExecutor(jobs={self.jobs})"


def make_executor(
    jobs: int = 1,
) -> SerialExecutor | WorkStealingExecutor:
    """``jobs == 1`` -> serial; ``jobs > 1`` -> work stealing."""
    if jobs == 1:
        return SerialExecutor()
    return WorkStealingExecutor(jobs)
