"""Example 1 (paper Fig. 2): delay bounds vs. total utilization.

Setting: the through aggregate is fixed at ``N_0 = 100`` flows
(``U_0 = 15%``); the per-node cross aggregate grows so the total
utilization sweeps ``20% <= U <= 95%``; path lengths ``H in {2, 5, 10}``;
``eps = 1e-9``.  Schedulers: BMUX (reference), FIFO, and EDF with
``d*_0 = d_e2e/H`` and ``d*_c = 10 d_e2e/H`` (through traffic favored;
the deadlines are a fixed point of the resulting bound).

Expected shape (paper's reading of Fig. 2): bounds grow with ``U`` and
blow up toward saturation; FIFO is indistinguishable from BMUX as early
as ``H = 5``; EDF is noticeably lower, with the gap growing in ``H``.

The experiment is *declared* as a :class:`~repro.experiments.sweep.SweepSpec`
(:func:`fig2_spec`) whose cells all point at the top-level
:func:`fig2_cell`; :func:`run_example1` executes it through the sweep
engine and keeps the historical row-list interface.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import (
    DEFAULT_BACKEND,
    PaperSetting,
    grids,
    paper_setting,
    setting_from_params,
    setting_to_params,
)
from repro.experiments.batch import CellPlan, edf_diagnostics
from repro.experiments.runner import ExperimentRow
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo
from repro.network.lanes import EDFLaneSpec, LaneSpec

#: The through-aggregate size of Example 1 (U_0 = 15%).
N_THROUGH = 100

DEFAULT_UTILIZATIONS = (0.20, 0.35, 0.50, 0.65, 0.80, 0.95)
DEFAULT_HOPS = (2, 5, 10)
SCHEDULERS = ("BMUX", "FIFO", "EDF")

CELL_FN = "repro.experiments.example1:fig2_cell"


def _fig2_payload(
    scheduler: str, hops: int, utilization: float, result, delta: float,
    diagnostics: dict,
) -> dict:
    """The cell payload; shared by the per-cell and the batched path."""
    return {
        "rows": [
            {
                "series": f"{scheduler} H={hops}",
                "x": utilization * 100.0,
                "delay": result.delay,
                "extra": {
                    "delta": delta,
                    "gamma": result.gamma,
                    "alpha": result.alpha,
                    "sigma": result.sigma,
                },
            }
        ],
        "diagnostics": diagnostics,
    }


def fig2_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    n_through: int,
    traffic: tuple,
    capacity: float,
    epsilon: float,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """One (scheduler, H, U) point of Fig. 2 — pure and picklable."""
    setting = setting_from_params(traffic, capacity, epsilon)
    grid = {"s_grid": s_grid, "gamma_grid": gamma_grid, "backend": backend}
    n_total = setting.flows_for_utilization(utilization)
    n_cross = max(n_total - n_through, 0)
    if scheduler == "EDF":
        bound = e2e_delay_bound_edf(
            setting.traffic, n_through, n_cross, hops,
            setting.capacity, setting.epsilon,
            deadline_weight_through=1.0,
            deadline_weight_cross=10.0,
            **grid,
        )
        return _fig2_payload(
            scheduler, hops, utilization, bound.result, bound.delta,
            edf_diagnostics(bound),
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    result = e2e_delay_bound_mmoo(
        setting.traffic, n_through, n_cross, hops,
        setting.capacity, delta, setting.epsilon,
        **grid,
    )
    return _fig2_payload(scheduler, hops, utilization, result, delta, {})


def fig2_plan(params: dict) -> CellPlan:
    """Batch plan of one Fig. 2 cell (see :mod:`repro.experiments.batch`)."""
    scheduler = params["scheduler"]
    hops, utilization = params["hops"], params["utilization"]
    setting = setting_from_params(
        params["traffic"], params["capacity"], params["epsilon"]
    )
    n_total = setting.flows_for_utilization(utilization)
    n_cross = max(n_total - params["n_through"], 0)
    grid = {
        "s_grid": params["s_grid"],
        "gamma_grid": params["gamma_grid"],
        "backend": params.get("backend", DEFAULT_BACKEND),
    }
    if scheduler == "EDF":
        return CellPlan(
            kind="edf",
            spec=EDFLaneSpec(
                setting.traffic, params["n_through"], n_cross, hops,
                setting.capacity, setting.epsilon,
                deadline_weight_through=1.0,
                deadline_weight_cross=10.0,
                **grid,
            ),
            build=lambda bound: _fig2_payload(
                scheduler, hops, utilization, bound.result, bound.delta,
                edf_diagnostics(bound),
            ),
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    return CellPlan(
        kind="mmoo",
        spec=LaneSpec(
            setting.traffic, params["n_through"], n_cross, hops,
            setting.capacity, delta, setting.epsilon, **grid,
        ),
        build=lambda result: _fig2_payload(
            scheduler, hops, utilization, result, delta, {}
        ),
    )


def fig2_spec(
    *,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> SweepSpec:
    """Declare the Fig. 2 grid (one cell per (scheduler, H, U) point)."""
    setting = setting or paper_setting()
    shared = {
        **setting_to_params(setting),
        **grids(quick),
        "n_through": N_THROUGH,
        "backend": backend,
    }
    cells = [
        Cell.make(
            CELL_FN,
            scheduler=scheduler,
            hops=h,
            utilization=utilization,
            **shared,
        )
        for h in hops
        for utilization in utilizations
        for scheduler in schedulers
    ]
    return SweepSpec.build(
        "fig2",
        cells,
        settings={"quick": quick, **shared},
        x_label="U [%]",
    )


def run_example1(
    *,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    executor=None,
    cache=None,
) -> list[ExperimentRow]:
    """Compute the Fig. 2 series through the sweep engine.

    Returns one row per (scheduler, H, U) cell; the series label is
    ``"<scheduler> H=<H>"`` and ``x`` is the total utilization in percent.
    """
    spec = fig2_spec(
        utilizations=utilizations, hops=hops, schedulers=schedulers,
        setting=setting, quick=quick,
    )
    return run_sweep(spec, executor=executor, cache=cache).experiment_rows()
