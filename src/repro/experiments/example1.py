"""Example 1 (paper Fig. 2): delay bounds vs. total utilization.

Setting: the through aggregate is fixed at ``N_0 = 100`` flows
(``U_0 = 15%``); the per-node cross aggregate grows so the total
utilization sweeps ``20% <= U <= 95%``; path lengths ``H in {2, 5, 10}``;
``eps = 1e-9``.  Schedulers: BMUX (reference), FIFO, and EDF with
``d*_0 = d_e2e/H`` and ``d*_c = 10 d_e2e/H`` (through traffic favored;
the deadlines are a fixed point of the resulting bound).

Expected shape (paper's reading of Fig. 2): bounds grow with ``U`` and
blow up toward saturation; FIFO is indistinguishable from BMUX as early
as ``H = 5``; EDF is noticeably lower, with the gap growing in ``H``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import PaperSetting, grids, paper_setting
from repro.experiments.runner import ExperimentRow
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo

#: The through-aggregate size of Example 1 (U_0 = 15%).
N_THROUGH = 100

DEFAULT_UTILIZATIONS = (0.20, 0.35, 0.50, 0.65, 0.80, 0.95)
DEFAULT_HOPS = (2, 5, 10)
SCHEDULERS = ("BMUX", "FIFO", "EDF")


def run_example1(
    *,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    hops: Sequence[int] = DEFAULT_HOPS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
) -> list[ExperimentRow]:
    """Compute the Fig. 2 series.

    Returns one row per (scheduler, H, U) cell; the series label is
    ``"<scheduler> H=<H>"`` and ``x`` is the total utilization in percent.
    """
    setting = setting or paper_setting()
    grid = grids(quick)
    rows: list[ExperimentRow] = []
    for h in hops:
        for utilization in utilizations:
            n_total = setting.flows_for_utilization(utilization)
            n_cross = max(n_total - N_THROUGH, 0)
            for scheduler in schedulers:
                if scheduler == "EDF":
                    result, delta = e2e_delay_bound_edf(
                        setting.traffic, N_THROUGH, n_cross, h,
                        setting.capacity, setting.epsilon,
                        deadline_weight_through=1.0,
                        deadline_weight_cross=10.0,
                        **grid,
                    )
                    extra = {"delta": delta}
                else:
                    delta = math.inf if scheduler == "BMUX" else 0.0
                    result = e2e_delay_bound_mmoo(
                        setting.traffic, N_THROUGH, n_cross, h,
                        setting.capacity, delta, setting.epsilon,
                        **grid,
                    )
                    extra = {"delta": delta}
                rows.append(
                    ExperimentRow(
                        series=f"{scheduler} H={h}",
                        x=utilization * 100.0,
                        delay=result.delay,
                        extra={
                            **extra,
                            "gamma": result.gamma,
                            "alpha": result.alpha,
                            "sigma": result.sigma,
                        },
                    )
                )
    return rows
