"""Cross-cell batch planner: fuse compatible sweep cells into lane groups.

The sweep engine of :mod:`repro.experiments.sweep` executes one
:class:`~repro.experiments.sweep.Cell` at a time; each figure cell pays
a full nested (s, gamma) — and for EDF, fixed-point — search on its
own.  This module groups compatible cells of a
:class:`~repro.experiments.sweep.SweepSpec` (same cell function, same
solver family and backend, varying only numeric parameters — e.g. both
EDF deadline-weight variants of Fig. 3 land in one group) and executes
each group as one batched call into :mod:`repro.network.lanes`, where
all the lanes' searches advance in lockstep through shared vectorized
and generated-C kernels.

A cell function opts in by registering a *planner* — a sibling function
that maps the cell's keyword parameters to a :class:`CellPlan`: which
lane family solves it (``"mmoo"`` or ``"edf"``), the lane spec, and a
payload builder that turns the lane result into the exact payload the
cell function would have returned.  Cells without a planner (or whose
planner declines, e.g. the additive BMUX baseline of Fig. 4) fall back
to per-cell execution as singleton batches.

Guarantees:

* **Bitwise equality** — a batched run produces row-for-row identical
  payloads to the per-cell path (same bounds, same EDF iteration counts
  and convergence flags), because the lane engine mirrors every
  floating-point decision of the scalar searches.
* **Cache compatibility** — the unit of caching stays the cell: a
  batched run populates the same content-keyed entries a per-cell run
  would read, and vice versa.
"""

from __future__ import annotations

import importlib
import math
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Literal, Sequence

from repro import obs
from repro.experiments.sweep import Cell, SweepSpec, execute_cell
from repro.network.e2e import EDFBound
from repro.network.lanes import (
    EDFLaneSpec,
    LaneSpec,
    edf_bound_lanes,
    mmoo_bound_lanes,
)

__all__ = [
    "CellPlan",
    "Batch",
    "plan_batches",
    "plan_cell",
    "execute_batch",
    "execute_batch_traced",
    "register_planner",
    "edf_diagnostics",
]

#: Default cap on lanes per batch (see ``plan_batches``): large enough
#: that every figure grid fuses into a handful of mega-batches, small
#: enough that a multi-process run still has units to distribute.
MAX_LANES = 64

#: Cell function -> planner function, both as ``"module:function"``
#: dotted paths (resolved lazily, so registering costs no imports).
_PLANNERS: dict[str, str] = {
    "repro.experiments.example1:fig2_cell": (
        "repro.experiments.example1:fig2_plan"
    ),
    "repro.experiments.example2:fig3_cell": (
        "repro.experiments.example2:fig3_plan"
    ),
    "repro.experiments.example3:fig4_cell": (
        "repro.experiments.example3:fig4_plan"
    ),
    "repro.experiments.validation:validation_bound_cell": (
        "repro.experiments.validation:validation_bound_plan"
    ),
    "repro.service.api.cells:bound_query_cell": (
        "repro.service.api.cells:bound_query_plan"
    ),
}


def register_planner(cell_fn: str, planner: str) -> None:
    """Register ``planner`` ("module:function") for cells naming ``cell_fn``."""
    _PLANNERS[cell_fn] = planner


@dataclass(frozen=True)
class CellPlan:
    """How one cell executes inside a lane batch.

    ``kind`` selects the lane family (:func:`mmoo_bound_lanes` or
    :func:`edf_bound_lanes`); ``spec`` is the lane; ``build`` maps the
    lane's result (:class:`~repro.network.e2e.E2EResult` or
    :class:`~repro.network.e2e.EDFBound`) to the payload dict the cell
    function would have returned.
    """

    kind: Literal["mmoo", "edf"]
    spec: LaneSpec | EDFLaneSpec
    build: Callable[[Any], dict]


@dataclass(frozen=True)
class Batch:
    """One executor work unit: a group of cells solved together.

    ``indices`` are the cells' positions in the originating grid (used
    to scatter results back); ``kind`` is ``"mmoo"``/``"edf"`` for lane
    groups and ``"cells"`` for the per-cell fallback.  Only plain data,
    so batches pickle into worker processes; plans are re-derived
    inside the worker.
    """

    kind: str
    indices: tuple[int, ...]
    cells: tuple[Cell, ...]


def edf_diagnostics(bound: EDFBound) -> dict:
    """The per-cell EDF fixed-point diagnostics dict of the figure cells."""
    return {
        "edf_iterations": bound.diagnostics.iterations,
        "edf_residual": bound.diagnostics.residual,
        "edf_converged": bound.diagnostics.converged,
    }


def _resolve(path: str) -> Callable[..., Any]:
    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise ValueError(f"planner must be 'module:function', got {path!r}")
    return getattr(importlib.import_module(module_name), func_name)


def plan_cell(cell: Cell) -> CellPlan | None:
    """The cell's lane plan, or ``None`` when it must run per-cell."""
    planner_path = _PLANNERS.get(cell.fn)
    if planner_path is None:
        return None
    return _resolve(planner_path)(cell.kwargs)


def _chunk(
    items: list[int], n_chunks: int
) -> list[list[int]]:
    """Split ``items`` into ``n_chunks`` contiguous, nearly equal runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    out = []
    pos = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(items[pos:pos + size])
        pos += size
    return out


def plan_batches(
    spec: SweepSpec,
    indices: Sequence[int] | None = None,
    *,
    jobs: int = 1,
    max_lanes: int | None = None,
) -> list[Batch]:
    """Group the spec's cells (or the subset ``indices``) into batches.

    Cells sharing a cell function, lane family, and backend fuse into
    one lane group; a group larger than ``max_lanes`` — or any group
    when ``jobs > 1``, so a pool has units to balance — splits into
    contiguous chunks.  Unplannable cells become singleton fallback
    batches.  The plan depends only on the spec, so it is deterministic.
    """
    max_lanes = MAX_LANES if max_lanes is None else max_lanes
    if indices is None:
        indices = range(len(spec.cells))
    groups: dict[tuple, list[int]] = {}
    fallback: list[int] = []
    fallback_reasons: dict[str, int] = {}
    for index in indices:
        cell = spec.cells[index]
        if cell.fn not in _PLANNERS:
            plan, reason = None, "no_planner"
        else:
            plan, reason = plan_cell(cell), "planner_declined"
        if plan is None:
            fallback.append(index)
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
            continue
        key = (cell.fn, plan.kind, plan.spec.backend)
        groups.setdefault(key, []).append(index)

    batches: list[Batch] = []
    for (fn, kind, _backend), members in groups.items():
        n_chunks = max(1, math.ceil(len(members) / max_lanes))
        if jobs > 1:
            n_chunks = max(n_chunks, min(len(members), 2 * jobs))
        for chunk in _chunk(members, n_chunks):
            batches.append(
                Batch(
                    kind=kind,
                    indices=tuple(chunk),
                    cells=tuple(spec.cells[i] for i in chunk),
                )
            )
    for index in fallback:
        batches.append(
            Batch(
                kind="cells",
                indices=(index,),
                cells=(spec.cells[index],),
            )
        )
    if obs.enabled():
        obs.add("batch.planned", len(batches))
        obs.add("batch.fallback_cells", len(fallback))
        # reason-labelled fallback counters: "no_planner" (cell function
        # never registered) vs "planner_declined" (planner returned None
        # for these parameters) — so fallbacks are diagnosable from any
        # metrics surface (e.g. the bound service's /v1/metrics).
        for reason, count in sorted(fallback_reasons.items()):
            obs.add(f"batch.fallback_cells.{reason}", count)
        for batch in batches:
            obs.observe("batch.occupancy", len(batch.cells))
    return batches


def execute_batch(batch: Batch) -> list[dict]:
    """Run one batch; returns per-cell payloads in ``batch.indices`` order.

    Lane batches solve every cell in one :mod:`repro.network.lanes`
    group call; each payload's ``wall_time_s`` is the batch's wall
    clock amortized over its cells (so sweep-level totals still add up).
    """
    start = time.perf_counter()
    if batch.kind == "cells":
        return [execute_cell(cell) for cell in batch.cells]
    plans = [plan_cell(cell) for cell in batch.cells]
    if any(plan is None or plan.kind != batch.kind for plan in plans):
        raise ValueError(
            f"batch of kind {batch.kind!r} contains cells that do not "
            "plan to it (planner registration changed between planning "
            "and execution?)"
        )
    specs = [plan.spec for plan in plans]
    with obs.trace(f"batch.{batch.kind}"):
        if batch.kind == "edf":
            results: Iterable[Any] = edf_bound_lanes(specs)
        else:
            results = mmoo_bound_lanes(specs)
    share = (time.perf_counter() - start) / len(batch.cells)
    payloads = []
    for plan, result in zip(plans, results):
        payload = dict(plan.build(result))
        payload.setdefault("diagnostics", {})
        payload["wall_time_s"] = share
        payloads.append(payload)
    if obs.enabled():
        obs.add("batch.executed")
        obs.add("batch.cells", len(batch.cells))
    return payloads


def execute_batch_traced(item: tuple[Batch, float]) -> dict:
    """:func:`execute_batch` under a scoped metrics registry.

    Returns ``{"payloads": [...], "metrics": snapshot}``; the parent
    merges the snapshot once per batch (cells of one batch share their
    solver work, so per-cell attribution would double-count).
    """
    batch, submitted_at = item
    started_at = time.time()
    with obs.scoped(enabled=True) as registry:
        payloads = execute_batch(batch)
        registry.set_gauge(
            "cell.queue_wait_s", max(0.0, started_at - submitted_at)
        )
        registry.set_gauge("cell.worker_pid", os.getpid())
        snapshot = registry.snapshot()
    return {"payloads": payloads, "metrics": snapshot}
