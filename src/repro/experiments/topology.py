"""Added experiment T1: per-route bounds vs. simulation on topologies.

The paper analyzes one tandem; this experiment runs the same
bound-vs-quantile comparison on arbitrary feed-forward scenarios (see
:mod:`repro.topology.scenarios`).  For one named scenario it reports,
per route, the analytic end-to-end delay bound at ``eps`` next to the
simulated ``(1 - eps)``-delay-quantile of that route's aggregate over
``n_trials`` Monte Carlo topology simulations.  Soundness per route
requires quantile <= bound (up to the simulator's store-and-forward
slack of one slot per extra hop on the route).

The grid mirrors the validation experiment's two cell kinds so the
sweep cache stays maximally reusable:

* one **bound cell** per route — analytic only, keyed by the topology
  content (its :meth:`~repro.topology.Topology.to_params` tuples), the
  route name, and the optimization grids, but *not* the engine, slot
  count, or seed;
* one **trial cell** per trial — one whole-topology simulation whose
  payload carries a row per route, keyed by its own spawned seed and
  the engine, so raising ``n_trials`` only adds cells.

The topology itself travels through the sweep pipeline as the nested
plain-value tuples of ``Topology.to_params()`` — cells stay hashable,
picklable, and content-keyed without a side channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arrivals.mmoo import MMOOParameters
from repro.experiments.config import DEFAULT_BACKEND, grids
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.simulation.engine import simulate_topology_mmoo, spawn_trial_seeds
from repro.simulation.metrics import order_statistics_ci
from repro.topology import Topology, build_scenario, extract_route
from repro.topology.routes import route_delay_bound_mmoo, route_is_homogeneous

#: Numerical slack on the soundness comparison (mirrors the validation
#: experiment; absorbs float rounding only).
_SOUND_EPS = 1e-9

BOUND_CELL_FN = "repro.experiments.topology:topology_bound_cell"
TRIAL_CELL_FN = "repro.experiments.topology:topology_trial_cell"


@dataclass(frozen=True)
class TopologyRow:
    """One route of the scenario: analytic bound vs. Monte Carlo trials.

    ``simulated_quantile`` is the median of the per-trial
    ``(1 - eps)``-quantiles of the route's end-to-end delay;
    ``quantile_lo``/``quantile_hi`` bound it with a distribution-free
    95% order-statistics confidence interval (degenerate for a single
    trial).  ``bound_violations`` counts the trials whose quantile
    exceeded ``bound + slack_allowed``.
    """

    route: str
    hops: int
    homogeneous: bool
    bound: float
    simulated_quantile: float
    simulated_max: float
    slack_allowed: float
    n_trials: int = 1
    quantile_lo: float = math.nan
    quantile_hi: float = math.nan
    bound_violations: int = 0
    trial_seeds: tuple[int, ...] = field(default=())
    engine: str = "auto"

    @property
    def sound(self) -> bool:
        """Did the analytic bound dominate every simulation trial?"""
        return (
            self.bound_violations == 0
            and self.simulated_quantile
            <= self.bound + self.slack_allowed + _SOUND_EPS
        )


def topology_bound_cell(
    *,
    topology: tuple,
    route: str,
    epsilon: float,
    traffic: tuple,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """The analytic end-to-end bound of one route.

    Pure analysis — no simulation parameters enter, so the cell's cache
    key is shared by every engine, seed, and trial count.  Homogeneous
    routes reproduce :func:`repro.network.e2e.e2e_delay_bound_mmoo`
    bitwise; heterogeneous routes go through the Section IV
    non-homogeneous construction.
    """
    topo = Topology.from_params(topology)
    mmoo = MMOOParameters(*traffic)
    hops = extract_route(topo, route)
    result = route_delay_bound_mmoo(
        topo, route, mmoo, epsilon,
        s_grid=s_grid, gamma_grid=gamma_grid, backend=backend,
    )
    return {
        "rows": [
            {
                "kind": "bound",
                "route": route,
                "hops": len(hops),
                "homogeneous": route_is_homogeneous(hops),
                "bound": result.delay,
                "slack_allowed": float(len(hops) - 1),
            }
        ],
        "diagnostics": {
            "topology_hash": topo.content_hash(),
            "alpha": result.alpha,
            "gamma": result.gamma,
        },
    }


def topology_trial_cell(
    *,
    topology: tuple,
    epsilon: float,
    slots: int,
    seed: int,
    trial: int,
    engine: str,
    traffic: tuple,
) -> dict:
    """One Monte Carlo simulation of the whole topology.

    A single run serves every route — the payload carries one row per
    route with that aggregate's delay quantile/max.  ``seed`` is this
    trial's own spawned seed, so the cell key identifies the trial
    regardless of how many trials the declaring sweep asked for.
    """
    topo = Topology.from_params(topology)
    mmoo = MMOOParameters(*traffic)
    result = simulate_topology_mmoo(topo, mmoo, slots, seed, engine=engine)
    rows = []
    for route_spec in topo.routes:
        delays = result.route_delays[route_spec.name]
        rows.append(
            {
                "kind": "trial",
                "route": route_spec.name,
                "hops": len(route_spec.path),
                "trial": trial,
                "seed": seed,
                "engine": engine,
                "simulated_quantile": delays.quantile(1.0 - epsilon),
                "simulated_max": delays.max(),
            }
        )
    return {
        "rows": rows,
        "diagnostics": {
            "topology_hash": topo.content_hash(),
            "seed": seed,
            "slots": slots,
            "engine": engine,
        },
    }


def topology_spec(
    scenario: str,
    size: int,
    *,
    scheduler: str = "fifo",
    n_flows: int = 20,
    utilization: float = 0.7,
    scenario_seed: int = 0,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    n_trials: int = 1,
    engine: str = "auto",
    traffic: MMOOParameters | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> SweepSpec:
    """Declare the grid of one named topology scenario.

    One bound cell per route plus ``n_trials`` whole-topology trial
    cells whose seeds come from :func:`spawn_trial_seeds` rooted at
    ``seed``.  The topology is built once here and enters every cell as
    its ``to_params()`` tuples; neither ``n_trials`` nor ``engine``
    enters the sweep settings, so growing the trial count or switching
    engines reuses every cached cell it can.
    """
    topology = build_scenario(
        scenario, size, seed=scenario_seed, utilization=utilization,
        n_flows=n_flows, scheduler=scheduler,
    )
    mmoo = traffic or MMOOParameters.paper_defaults()
    traffic_params = (mmoo.peak, mmoo.p11, mmoo.p22)
    topo_params = topology.to_params()
    cells = [
        Cell.make(
            BOUND_CELL_FN, topology=topo_params, route=route.name,
            epsilon=epsilon, traffic=traffic_params, backend=backend,
            **grids(quick),
        )
        for route in topology.routes
    ]
    for trial, trial_seed in enumerate(spawn_trial_seeds(seed, n_trials)):
        cells.append(
            Cell.make(
                TRIAL_CELL_FN, topology=topo_params, epsilon=epsilon,
                slots=slots, seed=trial_seed, trial=trial, engine=engine,
                traffic=traffic_params,
            )
        )
    return SweepSpec.build(
        f"topology-{scenario}",
        cells,
        settings={
            "quick": quick,
            "epsilon": epsilon,
            "traffic": traffic_params,
            "scenario": scenario,
            "size": size,
            "scheduler": scheduler,
            "topology_hash": topology.content_hash(),
        },
        x_label="route",
    )


def rows_to_topology(rows: Sequence[dict]) -> list[TopologyRow]:
    """Aggregate kind-tagged sweep rows into :class:`TopologyRow` records.

    Bound and trial rows are joined on the route name; per route the
    trial quantiles collapse to their median with an order-statistics CI
    and a count of bound violations.  Output order follows the bound
    rows' grid order.
    """
    bounds: dict[str, dict] = {}
    trials: dict[str, list[dict]] = {}
    order: list[str] = []
    for row in rows:
        route = str(row["route"])
        if row.get("kind") == "trial":
            trials.setdefault(route, []).append(row)
        else:
            if route not in bounds:
                order.append(route)
            bounds[route] = row

    out: list[TopologyRow] = []
    for route in order:
        bound_row = bounds[route]
        trial_rows = sorted(
            trials.get(route, []), key=lambda r: int(r.get("trial", 0))
        )
        if not trial_rows:
            raise ValueError(f"no trial rows for route {route!r}")
        bound = float(bound_row["bound"])
        slack = float(bound_row["slack_allowed"])
        quantiles = [float(r["simulated_quantile"]) for r in trial_rows]
        lo, hi = order_statistics_ci(quantiles, p=0.5, confidence=0.95)
        out.append(
            TopologyRow(
                route=route,
                hops=int(bound_row["hops"]),
                homogeneous=bool(bound_row["homogeneous"]),
                bound=bound,
                simulated_quantile=float(np.median(quantiles)),
                simulated_max=max(
                    float(r["simulated_max"]) for r in trial_rows
                ),
                slack_allowed=slack,
                n_trials=len(trial_rows),
                quantile_lo=lo,
                quantile_hi=hi,
                bound_violations=sum(
                    q > bound + slack + _SOUND_EPS for q in quantiles
                ),
                trial_seeds=tuple(int(r["seed"]) for r in trial_rows),
                engine=str(trial_rows[0].get("engine", "auto")),
            )
        )
    return out


def topology_summary(rows: Sequence[TopologyRow]) -> list[dict]:
    """The aggregated rows as plain dicts (for the JSON artifact)."""
    return [
        {
            "route": row.route,
            "hops": row.hops,
            "homogeneous": row.homogeneous,
            "bound": row.bound,
            "simulated_quantile": row.simulated_quantile,
            "quantile_lo": row.quantile_lo,
            "quantile_hi": row.quantile_hi,
            "simulated_max": row.simulated_max,
            "slack_allowed": row.slack_allowed,
            "n_trials": row.n_trials,
            "bound_violations": row.bound_violations,
            "trial_seeds": list(row.trial_seeds),
            "engine": row.engine,
            "sound": row.sound,
        }
        for row in rows
    ]


def run_topology(
    scenario: str,
    size: int,
    *,
    executor=None,
    cache=None,
    **kwargs,
) -> list[TopologyRow]:
    """Run one scenario's bound-vs-simulation grid via the sweep engine."""
    spec = topology_spec(scenario, size, **kwargs)
    result = run_sweep(spec, executor=executor, cache=cache)
    return rows_to_topology(result.rows)


def format_topology(rows: Sequence[TopologyRow]) -> str:
    """Readable per-route table of the scenario outcome."""
    lines = [
        f"{'route':>12} {'hops':>4} {'homog':>5} {'bound':>10} "
        f"{'sim q':>10} {'ci_lo':>10} {'ci_hi':>10} {'sim max':>10} "
        f"{'trials':>6} {'viol':>5} {'sound':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.route:>12} {row.hops:>4} {str(row.homogeneous):>5} "
            f"{row.bound:>10.2f} {row.simulated_quantile:>10.2f} "
            f"{row.quantile_lo:>10.2f} {row.quantile_hi:>10.2f} "
            f"{row.simulated_max:>10.2f} {row.n_trials:>6} "
            f"{row.bound_violations:>5} {str(row.sound):>6}"
        )
    return "\n".join(lines)
