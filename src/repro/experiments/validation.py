"""Added experiment V1: analytic bounds vs. simulated delay quantiles.

The paper has no measurement substrate; this experiment supplies one.
For a grid of (scheduler, path length) cells at high utilization (where
queueing is actually visible) it reports the analytic end-to-end bound at
``eps`` next to the simulated ``(1 - eps)``-delay-quantile of the through
traffic.  Soundness requires quantile <= bound (up to the simulator's
store-and-forward slack of one slot per extra hop); the gap quantifies
the bounds' conservatism.

The comparison is *Monte Carlo*: each grid point runs ``n_trials``
independent simulations whose seeds are spawned from the root seed via
:func:`repro.simulation.engine.spawn_trial_seeds`, and the summary row
reports the median per-trial quantile with a distribution-free
order-statistics confidence interval plus a ``bound_violations`` count
(trials whose quantile exceeded bound + slack).  The grid declares two
cell kinds so the sweep cache stays maximally reusable:

* one **bound cell** per (scheduler, H) — analytic only, keyed without
  the engine, slot count, or seed, so both engines and every trial
  count share the same cached bound;
* one **trial cell** per (scheduler, H, trial) — keyed by its own seed
  (and the engine), so raising ``n_trials`` only *adds* cells and a
  previous smaller run stays fully cached.

Trials fan out through whatever executor the sweep engine is given
(``--jobs N`` on the CLI maps them over a process pool); every trial's
seed is a cell parameter and therefore lands in the JSON artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.experiments.batch import CellPlan
from repro.experiments.config import (
    DEFAULT_BACKEND,
    SCHEDULER_MAP,
    PaperSetting,
    grids,
    paper_setting,
    setting_from_params,
    setting_to_params,
)
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.network.lanes import LaneSpec
from repro.simulation.engine import (
    SimulationConfig,
    simulate_tandem_mmoo,
    spawn_trial_seeds,
)
from repro.simulation.metrics import order_statistics_ci

#: Numerical slack on the soundness comparison (the bound itself is
#: conservative; this only absorbs float rounding).
_SOUND_EPS = 1e-9


@dataclass(frozen=True)
class ValidationRow:
    """One validation grid point: analytic bound vs. Monte Carlo trials.

    ``simulated_quantile`` is the median of the per-trial
    ``(1 - eps)``-quantiles; ``quantile_lo``/``quantile_hi`` bound it
    with a distribution-free 95% order-statistics confidence interval
    (degenerate for a single trial).  ``bound_violations`` counts the
    trials whose quantile exceeded ``bound + slack_allowed``.
    """

    scheduler: str
    hops: int
    utilization: float
    bound: float
    simulated_quantile: float
    simulated_max: float
    slack_allowed: float
    n_trials: int = 1
    quantile_lo: float = math.nan
    quantile_hi: float = math.nan
    bound_violations: int = 0
    trial_seeds: tuple[int, ...] = field(default=())
    engine: str = "chunk"

    @property
    def sound(self) -> bool:
        """Did the analytic bound dominate every simulation trial?"""
        return (
            self.bound_violations == 0
            and self.simulated_quantile
            <= self.bound + self.slack_allowed + _SOUND_EPS
        )


BOUND_CELL_FN = "repro.experiments.validation:validation_bound_cell"
TRIAL_CELL_FN = "repro.experiments.validation:validation_trial_cell"


def _n_half(traffic: tuple, capacity: float, epsilon: float, utilization: float) -> int:
    setting = setting_from_params(traffic, capacity, epsilon)
    return max(setting.flows_for_utilization(utilization) // 2, 1)


def validation_bound_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    epsilon: float,
    traffic: tuple,
    capacity: float,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """The analytic end-to-end bound of one (scheduler, H) point.

    Pure analysis — no simulation parameters enter, so the cell's cache
    key is shared by every engine, seed, and trial count.  ``epsilon``
    is the *validation* violation probability (both the bound's target
    and the simulated quantile level), not the paper's 1e-9 setting.
    """
    setting = setting_from_params(traffic, capacity, epsilon)
    _, delta, _ = SCHEDULER_MAP[scheduler]
    n_half = _n_half(traffic, capacity, epsilon, utilization)
    bound = e2e_delay_bound_mmoo(
        setting.traffic, n_half, n_half, hops, setting.capacity,
        delta, epsilon, s_grid=s_grid, gamma_grid=gamma_grid,
        backend=backend,
    )
    return _validation_bound_payload(scheduler, hops, utilization, n_half, bound)


def _validation_bound_payload(
    scheduler: str, hops: int, utilization: float, n_half: int, bound
) -> dict:
    """The bound-cell payload; shared by the per-cell and batched path."""
    return {
        "rows": [
            {
                "kind": "bound",
                "scheduler": scheduler,
                "hops": hops,
                "utilization": utilization,
                "bound": bound.delay,
                "slack_allowed": float(hops - 1),
            }
        ],
        "diagnostics": {"n_through": n_half, "n_cross": n_half},
    }


def validation_bound_plan(params: dict) -> CellPlan:
    """Batch plan of one bound cell (see :mod:`repro.experiments.batch`)."""
    scheduler = params["scheduler"]
    hops, utilization = params["hops"], params["utilization"]
    epsilon = params["epsilon"]
    setting = setting_from_params(
        params["traffic"], params["capacity"], epsilon
    )
    _, delta, _ = SCHEDULER_MAP[scheduler]
    n_half = _n_half(
        params["traffic"], params["capacity"], epsilon, utilization
    )
    return CellPlan(
        kind="mmoo",
        spec=LaneSpec(
            setting.traffic, n_half, n_half, hops, setting.capacity,
            delta, epsilon,
            s_grid=params["s_grid"], gamma_grid=params["gamma_grid"],
            backend=params.get("backend", DEFAULT_BACKEND),
        ),
        build=lambda bound: _validation_bound_payload(
            scheduler, hops, utilization, n_half, bound
        ),
    )


def validation_trial_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    epsilon: float,
    slots: int,
    seed: int,
    trial: int,
    engine: str,
    traffic: tuple,
    capacity: float,
) -> dict:
    """One Monte Carlo trial of one (scheduler, H) point.

    ``seed`` is this trial's own seed (spawned from the root seed by
    :func:`~repro.simulation.engine.spawn_trial_seeds`), so the cell key
    — and with it the on-disk cache — identifies the trial regardless
    of how many trials the declaring sweep asked for.
    """
    setting = setting_from_params(traffic, capacity, epsilon)
    sim_name, _, edf_deadlines = SCHEDULER_MAP[scheduler]
    n_half = _n_half(traffic, capacity, epsilon, utilization)
    config_kwargs = {}
    if edf_deadlines is not None:
        config_kwargs = {
            "edf_deadline_through": edf_deadlines[0],
            "edf_deadline_cross": edf_deadlines[1],
        }
    config = SimulationConfig(
        traffic=setting.traffic, n_through=n_half, n_cross=n_half,
        hops=hops, capacity=setting.capacity, slots=slots,
        scheduler=sim_name, seed=seed, engine=engine, **config_kwargs,
    )
    delays = simulate_tandem_mmoo(config).through_delays
    return {
        "rows": [
            {
                "kind": "trial",
                "scheduler": scheduler,
                "hops": hops,
                "utilization": utilization,
                "trial": trial,
                "seed": seed,
                "engine": engine,
                "simulated_quantile": delays.quantile(1.0 - epsilon),
                "simulated_max": delays.max(),
            }
        ],
        "diagnostics": {"seed": seed, "slots": slots, "engine": engine},
    }


def validation_spec(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1, 2),
    utilization: float = 0.90,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    n_trials: int = 1,
    engine: str = "chunk",
    setting: PaperSetting | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> SweepSpec:
    """Declare the validation grid.

    Per (scheduler, H) point: one bound cell plus ``n_trials`` trial
    cells whose seeds come from :func:`spawn_trial_seeds` rooted at
    ``seed``.  Neither ``n_trials`` nor ``engine`` enters the sweep
    settings — trial seeds are prefix-stable and bound cells carry no
    engine parameter, so growing the trial count or switching engines
    reuses every cached cell it can.
    """
    setting = setting or paper_setting()
    params = setting_to_params(setting)
    shared = {
        "traffic": params["traffic"],
        "capacity": params["capacity"],
        "utilization": utilization,
        "epsilon": epsilon,
    }
    trial_seeds = spawn_trial_seeds(seed, n_trials)
    cells = []
    for scheduler in schedulers:
        for h in hops:
            cells.append(
                Cell.make(
                    BOUND_CELL_FN, scheduler=scheduler, hops=h,
                    backend=backend, **shared, **grids(quick),
                )
            )
            for trial, trial_seed in enumerate(trial_seeds):
                cells.append(
                    Cell.make(
                        TRIAL_CELL_FN, scheduler=scheduler, hops=h,
                        slots=slots, seed=trial_seed, trial=trial,
                        engine=engine, **shared,
                    )
                )
    return SweepSpec.build(
        "validation",
        cells,
        settings={"quick": quick, **shared},
        x_label="H",
    )


def rows_to_validation(rows: Sequence[dict]) -> list[ValidationRow]:
    """Aggregate kind-tagged sweep rows into :class:`ValidationRow` records.

    Bound and trial rows are joined on (scheduler, hops); per point the
    trial quantiles collapse to their median with an order-statistics CI
    and a count of bound violations.  Output order follows the bound
    rows' grid order.
    """
    bounds: dict[tuple[str, int], dict] = {}
    trials: dict[tuple[str, int], list[dict]] = {}
    order: list[tuple[str, int]] = []
    for row in rows:
        key = (str(row["scheduler"]), int(row["hops"]))
        if row.get("kind") == "trial":
            trials.setdefault(key, []).append(row)
        else:
            if key not in bounds:
                order.append(key)
            bounds[key] = row

    out: list[ValidationRow] = []
    for key in order:
        bound_row = bounds[key]
        trial_rows = sorted(
            trials.get(key, []), key=lambda r: int(r.get("trial", 0))
        )
        if not trial_rows:
            raise ValueError(
                f"no trial rows for validation point {key}"
            )
        bound = float(bound_row["bound"])
        slack = float(bound_row["slack_allowed"])
        quantiles = [float(r["simulated_quantile"]) for r in trial_rows]
        lo, hi = order_statistics_ci(quantiles, p=0.5, confidence=0.95)
        out.append(
            ValidationRow(
                scheduler=key[0],
                hops=key[1],
                utilization=float(bound_row["utilization"]),
                bound=bound,
                simulated_quantile=float(np.median(quantiles)),
                simulated_max=max(
                    float(r["simulated_max"]) for r in trial_rows
                ),
                slack_allowed=slack,
                n_trials=len(trial_rows),
                quantile_lo=lo,
                quantile_hi=hi,
                bound_violations=sum(
                    q > bound + slack + _SOUND_EPS for q in quantiles
                ),
                trial_seeds=tuple(int(r["seed"]) for r in trial_rows),
                engine=str(trial_rows[0].get("engine", "chunk")),
            )
        )
    return out


def validation_summary(rows: Sequence[ValidationRow]) -> list[dict]:
    """The aggregated rows as plain dicts (for the JSON artifact)."""
    return [
        {
            "scheduler": row.scheduler,
            "hops": row.hops,
            "utilization": row.utilization,
            "bound": row.bound,
            "simulated_quantile": row.simulated_quantile,
            "quantile_lo": row.quantile_lo,
            "quantile_hi": row.quantile_hi,
            "simulated_max": row.simulated_max,
            "slack_allowed": row.slack_allowed,
            "n_trials": row.n_trials,
            "bound_violations": row.bound_violations,
            "trial_seeds": list(row.trial_seeds),
            "engine": row.engine,
            "sound": row.sound,
        }
        for row in rows
    ]


def run_validation(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1, 2),
    utilization: float = 0.90,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    n_trials: int = 1,
    engine: str = "chunk",
    setting: PaperSetting | None = None,
    quick: bool = True,
    executor=None,
    cache=None,
) -> list[ValidationRow]:
    """Run the bound-vs-simulation comparison grid via the sweep engine."""
    spec = validation_spec(
        schedulers=schedulers, hops=hops, utilization=utilization,
        epsilon=epsilon, slots=slots, seed=seed, n_trials=n_trials,
        engine=engine, setting=setting, quick=quick,
    )
    result = run_sweep(spec, executor=executor, cache=cache)
    return rows_to_validation(result.rows)


RARE_BATCH_CELL_FN = "repro.experiments.validation:rare_validation_batch_cell"

#: Batch cells per point the adaptive loop may run before giving up on
#: the CI target (a safety valve, not a tuning knob).
DEFAULT_MAX_BATCHES = 25


@dataclass(frozen=True)
class RareValidationRow:
    """One rare-event grid point: analytic bound vs. weighted tail estimate.

    The estimand is ``P(delay > bound + slack)`` under the base traffic
    law, estimated by importance sampling
    (:mod:`repro.simulation.rare`).  The bound is *sound* when the
    estimate does not statistically refute ``P <= epsilon`` — i.e. when
    the asymptotic 95% lower confidence limit stays at or below the
    target epsilon.
    """

    scheduler: str
    hops: int
    utilization: float
    epsilon: float
    bound: float
    threshold: float
    probability: float
    ci_low: float
    ci_high: float
    boot_ci_low: float
    boot_ci_high: float
    rel_half_width: float
    n_trials: int
    n_batches: int
    hit_rate: float
    variance_reduction: float
    log_weight_std: float
    slots: int
    seed: int
    engine: str = "vectorized"

    @property
    def sound(self) -> bool:
        """Is ``P(delay > bound) <= epsilon`` statistically tenable?"""
        return self.ci_low <= self.epsilon + _SOUND_EPS


def rare_validation_batch_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    epsilon: float,
    threshold: float,
    slots: int,
    seed: int,
    batch: int,
    batch_trials: int,
    engine: str,
    traffic: tuple,
    capacity: float,
) -> dict:
    """One batch of importance-sampled trials of one (scheduler, H) point.

    ``seed`` is the *root* seed; the batch runs trials
    ``[batch * batch_trials, (batch + 1) * batch_trials)`` of the
    prefix-stable seed sequence, so the adaptive loop extending the
    trial count only adds cells — earlier batches stay cached, and the
    estimate over any trial prefix is independent of how many batches
    eventually ran.
    """
    from repro.simulation.rare import (
        TiltedMMOO,
        simulate_tandem_mmoo_rare,
        solve_lundberg_tilt,
    )

    setting = setting_from_params(traffic, capacity, epsilon)
    sim_name, _, edf_deadlines = SCHEDULER_MAP[scheduler]
    n_half = _n_half(traffic, capacity, epsilon, utilization)
    tilted = TiltedMMOO.from_tilt(
        setting.traffic,
        solve_lundberg_tilt(setting.traffic, 2 * n_half, setting.capacity),
    )
    config_kwargs = {}
    if edf_deadlines is not None:
        config_kwargs = {
            "edf_deadline_through": edf_deadlines[0],
            "edf_deadline_cross": edf_deadlines[1],
        }
    seeds = spawn_trial_seeds(seed, (batch + 1) * batch_trials)[
        batch * batch_trials:
    ]
    log_weights: list[float] = []
    exceed_fractions: list[float] = []
    taus: list[int] = []
    for trial_seed in seeds:
        config = SimulationConfig(
            traffic=setting.traffic, n_through=n_half, n_cross=n_half,
            hops=hops, capacity=setting.capacity, slots=slots,
            scheduler=sim_name, seed=trial_seed, engine=engine,
            **config_kwargs,
        )
        trial = simulate_tandem_mmoo_rare(config, threshold, tilted=tilted)
        log_weights.append(trial.log_weight)
        exceed_fractions.append(
            trial.result.through_delays.exceed_fraction(threshold)
        )
        taus.append(trial.tau)
    return {
        "rows": [
            {
                "kind": "rare_batch",
                "scheduler": scheduler,
                "hops": hops,
                "utilization": utilization,
                "batch": batch,
                "threshold": threshold,
                "slots": slots,
                "seed": seed,
                "engine": engine,
                "log_weights": log_weights,
                "exceed_fractions": exceed_fractions,
                "taus": taus,
                "trial_seeds": [int(s) for s in seeds],
            }
        ],
        "diagnostics": {
            "tilt": tilted.tilt,
            "tilted_p11": tilted.params.p11,
            "tilted_p22": tilted.params.p22,
            "mean_tau": float(np.mean(taus)),
        },
    }


def rows_to_rare_validation(
    rows: Sequence[dict], *, epsilon: float
) -> list[RareValidationRow]:
    """Aggregate bound + rare-batch sweep rows into rare validation rows.

    Batches join on (scheduler, hops) and concatenate in batch order, so
    the estimate equals one long prefix-stable trial sequence no matter
    how the adaptive loop split it.
    """
    from repro.simulation.rare import estimate_tail_from_arrays

    bounds: dict[tuple[str, int], dict] = {}
    batches: dict[tuple[str, int], list[dict]] = {}
    order: list[tuple[str, int]] = []
    for row in rows:
        key = (str(row["scheduler"]), int(row["hops"]))
        if row.get("kind") == "rare_batch":
            batches.setdefault(key, []).append(row)
        elif row.get("kind") == "bound" or "bound" in row:
            if key not in bounds:
                order.append(key)
            bounds[key] = row

    out: list[RareValidationRow] = []
    for key in order:
        bound_row = bounds[key]
        batch_rows = sorted(
            batches.get(key, []), key=lambda r: int(r["batch"])
        )
        if not batch_rows:
            raise ValueError(f"no rare batches for validation point {key}")
        log_weights = [
            w for r in batch_rows for w in r["log_weights"]
        ]
        exceed_fractions = [
            f for r in batch_rows for f in r["exceed_fractions"]
        ]
        estimate = estimate_tail_from_arrays(log_weights, exceed_fractions)
        out.append(
            RareValidationRow(
                scheduler=key[0],
                hops=key[1],
                utilization=float(bound_row["utilization"]),
                epsilon=epsilon,
                bound=float(bound_row["bound"]),
                threshold=float(batch_rows[0]["threshold"]),
                probability=estimate.probability,
                ci_low=estimate.ci_low,
                ci_high=estimate.ci_high,
                boot_ci_low=estimate.boot_ci_low,
                boot_ci_high=estimate.boot_ci_high,
                rel_half_width=estimate.rel_half_width,
                n_trials=estimate.n_trials,
                n_batches=len(batch_rows),
                hit_rate=estimate.hit_rate,
                variance_reduction=estimate.variance_reduction,
                log_weight_std=estimate.log_weight_std,
                slots=int(batch_rows[0]["slots"]),
                seed=int(batch_rows[0]["seed"]),
                engine=str(batch_rows[0]["engine"]),
            )
        )
    return out


@dataclass(frozen=True)
class RareValidationResult:
    """Outcome of the two-phase adaptive rare-event validation."""

    rows: list[RareValidationRow]
    raw_rows: list[dict]
    cells: int
    cached_cells: int
    computed_wall_time_s: float


def run_rare_validation(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1,),
    utilization: float = 0.90,
    epsilon: float = 1e-6,
    seed: int = 5,
    batch_trials: int = 100,
    ci_target: float = 0.25,
    max_batches: int = DEFAULT_MAX_BATCHES,
    engine: str = "vectorized",
    setting: PaperSetting | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
    executor=None,
    cache=None,
) -> RareValidationResult:
    """Bound-vs-tail comparison with adaptive trial allocation.

    Phase 1 computes the analytic bounds (one cached bound cell per
    point, shared with the naive validation grid).  Phase 2 runs
    importance-sampled trial batches per point — all points still short
    of the CI target fan out together through the executor each round —
    until the 95% relative CI half-width of every point's tail estimate
    reaches ``ci_target`` or the point exhausts ``max_batches``.  The
    trial schedule is deterministic: batch ``b`` always runs seeds
    ``[b * batch_trials, (b + 1) * batch_trials)`` of the prefix-stable
    sequence, so results are independent of the executor and fully
    cache-reusable across runs with different targets.
    """
    from repro.simulation.rare import (
        TiltedMMOO,
        solve_lundberg_tilt,
        suggest_rare_slots,
    )

    setting = setting or paper_setting()
    params = setting_to_params(setting)
    shared = {
        "traffic": params["traffic"],
        "capacity": params["capacity"],
        "utilization": utilization,
        "epsilon": epsilon,
    }
    bound_cells = [
        Cell.make(
            BOUND_CELL_FN, scheduler=scheduler, hops=h,
            backend=backend, **shared, **grids(quick),
        )
        for scheduler in schedulers
        for h in hops
    ]
    bound_spec = SweepSpec.build(
        "validation-rare", bound_cells,
        settings={"quick": quick, **shared}, x_label="H",
    )
    bound_result = run_sweep(bound_spec, executor=executor, cache=cache)
    raw_rows = list(bound_result.rows)
    cells = len(bound_result.cells)
    cached = bound_result.cached_cells
    wall = bound_result.computed_wall_time_s

    n_half = _n_half(
        params["traffic"], params["capacity"], epsilon, utilization
    )
    tilted = TiltedMMOO.from_tilt(
        setting.traffic,
        solve_lundberg_tilt(setting.traffic, 2 * n_half, setting.capacity),
    )
    points: dict[tuple[str, int], dict] = {}
    for row in raw_rows:
        key = (str(row["scheduler"]), int(row["hops"]))
        threshold = float(row["bound"]) + float(row["slack_allowed"])
        points[key] = {
            "threshold": threshold,
            "slots": suggest_rare_slots(
                tilted, 2 * n_half, setting.capacity, threshold
            ),
            "batches": 0,
        }

    pending = set(points)
    round_index = 0
    while pending:
        round_cells = []
        for key in sorted(pending):
            point = points[key]
            round_cells.append(
                Cell.make(
                    RARE_BATCH_CELL_FN,
                    scheduler=key[0], hops=key[1],
                    threshold=point["threshold"], slots=point["slots"],
                    seed=seed, batch=point["batches"],
                    batch_trials=batch_trials, engine=engine, **shared,
                )
            )
            point["batches"] += 1
        round_spec = SweepSpec.build(
            f"validation-rare-batch-{round_index}", round_cells,
            settings={"quick": quick, **shared}, x_label="H",
        )
        round_result = run_sweep(round_spec, executor=executor, cache=cache)
        raw_rows.extend(round_result.rows)
        cells += len(round_result.cells)
        cached += round_result.cached_cells
        wall += round_result.computed_wall_time_s
        round_index += 1

        finished = set()
        for row in rows_to_rare_validation(raw_rows, epsilon=epsilon):
            key = (row.scheduler, row.hops)
            if key not in pending:
                continue
            if (
                row.rel_half_width <= ci_target
                or points[key]["batches"] >= max_batches
            ):
                finished.add(key)
        pending -= finished

    rows = rows_to_rare_validation(raw_rows, epsilon=epsilon)
    if obs.enabled():
        for row in rows:
            obs.add("rare.points")
            obs.add("rare.point_trials", float(row.n_trials))
    return RareValidationResult(
        rows=rows,
        raw_rows=raw_rows,
        cells=cells,
        cached_cells=cached,
        computed_wall_time_s=wall,
    )


def rare_validation_summary(rows: Sequence[RareValidationRow]) -> list[dict]:
    """The aggregated rare rows as plain dicts (for the JSON artifact)."""
    return [
        {
            "scheduler": row.scheduler,
            "hops": row.hops,
            "utilization": row.utilization,
            "epsilon": row.epsilon,
            "bound": row.bound,
            "threshold": row.threshold,
            "probability": row.probability,
            "ci_low": row.ci_low,
            "ci_high": row.ci_high,
            "boot_ci_low": row.boot_ci_low,
            "boot_ci_high": row.boot_ci_high,
            "rel_half_width": row.rel_half_width,
            "n_trials": row.n_trials,
            "n_batches": row.n_batches,
            "hit_rate": row.hit_rate,
            "variance_reduction": row.variance_reduction,
            "log_weight_std": row.log_weight_std,
            "slots": row.slots,
            "seed": row.seed,
            "engine": row.engine,
            "sound": row.sound,
        }
        for row in rows
    ]


def format_rare_validation(rows: Sequence[RareValidationRow]) -> str:
    """Readable table of the rare-event validation outcome."""
    lines = [
        f"{'scheduler':>10} {'H':>3} {'bound':>10} {'P(delay>bound)':>15} "
        f"{'ci_hi':>10} {'relhw':>6} {'trials':>6} {'vrf':>9} {'sound':>6}"
    ]
    for row in rows:
        vrf = (
            f"{row.variance_reduction:.2e}"
            if math.isfinite(row.variance_reduction)
            else "inf"
        )
        lines.append(
            f"{row.scheduler:>10} {row.hops:>3} {row.bound:>10.2f} "
            f"{row.probability:>15.3e} {row.ci_high:>10.3e} "
            f"{row.rel_half_width:>6.2f} {row.n_trials:>6} {vrf:>9} "
            f"{str(row.sound):>6}"
        )
    return "\n".join(lines)


def format_validation(rows: Sequence[ValidationRow]) -> str:
    """Readable table of the validation outcome."""
    lines = [
        f"{'scheduler':>10} {'H':>3} {'U%':>5} {'bound':>10} "
        f"{'sim q':>10} {'ci_lo':>10} {'ci_hi':>10} {'sim max':>10} "
        f"{'trials':>6} {'viol':>5} {'sound':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.scheduler:>10} {row.hops:>3} {row.utilization * 100:>5.0f} "
            f"{row.bound:>10.2f} {row.simulated_quantile:>10.2f} "
            f"{row.quantile_lo:>10.2f} {row.quantile_hi:>10.2f} "
            f"{row.simulated_max:>10.2f} {row.n_trials:>6} "
            f"{row.bound_violations:>5} {str(row.sound):>6}"
        )
    return "\n".join(lines)
