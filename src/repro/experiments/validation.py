"""Added experiment V1: analytic bounds vs. simulated delay quantiles.

The paper has no measurement substrate; this experiment supplies one.
For a grid of (scheduler, path length) cells at high utilization (where
queueing is actually visible) it reports the analytic end-to-end bound at
``eps`` next to the simulated ``(1 - eps)``-delay-quantile of the through
traffic.  Soundness requires quantile <= bound (up to the simulator's
store-and-forward slack of one slot per extra hop); the gap quantifies
the bounds' conservatism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.config import PaperSetting, grids, paper_setting
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo


@dataclass(frozen=True)
class ValidationRow:
    """One validation cell: analytic bound vs. empirical quantile."""

    scheduler: str
    hops: int
    utilization: float
    bound: float
    simulated_quantile: float
    simulated_max: float
    slack_allowed: float

    @property
    def sound(self) -> bool:
        """Did the analytic bound dominate the simulation?"""
        return self.simulated_quantile <= self.bound + self.slack_allowed


#: scheduler name -> (simulator scheduler, analysis Delta, EDF deadlines)
_SCHEDULER_MAP = {
    "FIFO": ("fifo", 0.0, None),
    "BMUX": ("bmux", math.inf, None),
    "EDF": ("edf", 1.0 - 10.0, (1.0, 10.0)),
}


def run_validation(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1, 2),
    utilization: float = 0.90,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    setting: PaperSetting | None = None,
    quick: bool = True,
) -> list[ValidationRow]:
    """Run the bound-vs-simulation comparison grid."""
    setting = setting or paper_setting()
    grid = grids(quick)
    n_half = max(setting.flows_for_utilization(utilization) // 2, 1)
    rows: list[ValidationRow] = []
    for name in schedulers:
        sim_name, delta, edf_deadlines = _SCHEDULER_MAP[name]
        for h in hops:
            bound = e2e_delay_bound_mmoo(
                setting.traffic, n_half, n_half, h, setting.capacity,
                delta, epsilon, **grid,
            )
            config_kwargs = {}
            if edf_deadlines is not None:
                config_kwargs = {
                    "edf_deadline_through": edf_deadlines[0],
                    "edf_deadline_cross": edf_deadlines[1],
                }
            config = SimulationConfig(
                traffic=setting.traffic, n_through=n_half, n_cross=n_half,
                hops=h, capacity=setting.capacity, slots=slots,
                scheduler=sim_name, seed=seed, **config_kwargs,
            )
            delays = simulate_tandem_mmoo(config).through_delays
            rows.append(
                ValidationRow(
                    scheduler=name,
                    hops=h,
                    utilization=utilization,
                    bound=bound.delay,
                    simulated_quantile=delays.quantile(1.0 - epsilon),
                    simulated_max=delays.max(),
                    slack_allowed=float(h - 1),
                )
            )
    return rows


def format_validation(rows: Sequence[ValidationRow]) -> str:
    """Readable table of the validation outcome."""
    lines = [
        f"{'scheduler':>10} {'H':>3} {'U%':>5} {'bound':>10} "
        f"{'sim q':>10} {'sim max':>10} {'sound':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.scheduler:>10} {row.hops:>3} {row.utilization * 100:>5.0f} "
            f"{row.bound:>10.2f} {row.simulated_quantile:>10.2f} "
            f"{row.simulated_max:>10.2f} {str(row.sound):>6}"
        )
    return "\n".join(lines)
