"""Added experiment V1: analytic bounds vs. simulated delay quantiles.

The paper has no measurement substrate; this experiment supplies one.
For a grid of (scheduler, path length) cells at high utilization (where
queueing is actually visible) it reports the analytic end-to-end bound at
``eps`` next to the simulated ``(1 - eps)``-delay-quantile of the through
traffic.  Soundness requires quantile <= bound (up to the simulator's
store-and-forward slack of one slot per extra hop); the gap quantifies
the bounds' conservatism.

Declared as :func:`validation_spec` over the top-level
:func:`validation_cell`; each cell records the simulation seed, so the
emitted artifact alone suffices to reproduce a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.config import (
    PaperSetting,
    grids,
    paper_setting,
    setting_from_params,
    setting_to_params,
)
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo


@dataclass(frozen=True)
class ValidationRow:
    """One validation cell: analytic bound vs. empirical quantile."""

    scheduler: str
    hops: int
    utilization: float
    bound: float
    simulated_quantile: float
    simulated_max: float
    slack_allowed: float

    @property
    def sound(self) -> bool:
        """Did the analytic bound dominate the simulation?"""
        return self.simulated_quantile <= self.bound + self.slack_allowed


#: scheduler name -> (simulator scheduler, analysis Delta, EDF deadlines)
_SCHEDULER_MAP = {
    "FIFO": ("fifo", 0.0, None),
    "BMUX": ("bmux", math.inf, None),
    "EDF": ("edf", 1.0 - 10.0, (1.0, 10.0)),
}

CELL_FN = "repro.experiments.validation:validation_cell"


def validation_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    epsilon: float,
    slots: int,
    seed: int,
    traffic: tuple,
    capacity: float,
    s_grid: int,
    gamma_grid: int,
) -> dict:
    """One (scheduler, H) validation point — pure and picklable.

    ``epsilon`` here is the *validation* violation probability (both the
    analytic bound's target and the simulated quantile), not the paper's
    1e-9 figure setting.
    """
    setting = setting_from_params(traffic, capacity, epsilon)
    grid = {"s_grid": s_grid, "gamma_grid": gamma_grid}
    sim_name, delta, edf_deadlines = _SCHEDULER_MAP[scheduler]
    n_half = max(setting.flows_for_utilization(utilization) // 2, 1)
    bound = e2e_delay_bound_mmoo(
        setting.traffic, n_half, n_half, hops, setting.capacity,
        delta, epsilon, **grid,
    )
    config_kwargs = {}
    if edf_deadlines is not None:
        config_kwargs = {
            "edf_deadline_through": edf_deadlines[0],
            "edf_deadline_cross": edf_deadlines[1],
        }
    config = SimulationConfig(
        traffic=setting.traffic, n_through=n_half, n_cross=n_half,
        hops=hops, capacity=setting.capacity, slots=slots,
        scheduler=sim_name, seed=seed, **config_kwargs,
    )
    delays = simulate_tandem_mmoo(config).through_delays
    return {
        "rows": [
            {
                "scheduler": scheduler,
                "hops": hops,
                "utilization": utilization,
                "bound": bound.delay,
                "simulated_quantile": delays.quantile(1.0 - epsilon),
                "simulated_max": delays.max(),
                "slack_allowed": float(hops - 1),
            }
        ],
        "diagnostics": {"seed": seed, "slots": slots},
    }


def validation_spec(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1, 2),
    utilization: float = 0.90,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    setting: PaperSetting | None = None,
    quick: bool = True,
) -> SweepSpec:
    """Declare the validation grid (one cell per (scheduler, H) point)."""
    setting = setting or paper_setting()
    params = setting_to_params(setting)
    shared = {
        "traffic": params["traffic"],
        "capacity": params["capacity"],
        **grids(quick),
        "utilization": utilization,
        "epsilon": epsilon,
        "slots": slots,
        "seed": seed,
    }
    cells = [
        Cell.make(CELL_FN, scheduler=scheduler, hops=h, **shared)
        for scheduler in schedulers
        for h in hops
    ]
    return SweepSpec.build(
        "validation",
        cells,
        settings={"quick": quick, **shared},
        x_label="H",
    )


def rows_to_validation(rows: Sequence[dict]) -> list[ValidationRow]:
    """Rebuild :class:`ValidationRow` records from sweep row dicts."""
    return [
        ValidationRow(
            scheduler=row["scheduler"],
            hops=row["hops"],
            utilization=row["utilization"],
            bound=row["bound"],
            simulated_quantile=row["simulated_quantile"],
            simulated_max=row["simulated_max"],
            slack_allowed=row["slack_allowed"],
        )
        for row in rows
    ]


def run_validation(
    *,
    schedulers: Sequence[str] = ("FIFO", "BMUX", "EDF"),
    hops: Sequence[int] = (1, 2),
    utilization: float = 0.90,
    epsilon: float = 1e-3,
    slots: int = 20_000,
    seed: int = 5,
    setting: PaperSetting | None = None,
    quick: bool = True,
    executor=None,
    cache=None,
) -> list[ValidationRow]:
    """Run the bound-vs-simulation comparison grid via the sweep engine."""
    spec = validation_spec(
        schedulers=schedulers, hops=hops, utilization=utilization,
        epsilon=epsilon, slots=slots, seed=seed, setting=setting,
        quick=quick,
    )
    result = run_sweep(spec, executor=executor, cache=cache)
    return rows_to_validation(result.rows)


def format_validation(rows: Sequence[ValidationRow]) -> str:
    """Readable table of the validation outcome."""
    lines = [
        f"{'scheduler':>10} {'H':>3} {'U%':>5} {'bound':>10} "
        f"{'sim q':>10} {'sim max':>10} {'sound':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.scheduler:>10} {row.hops:>3} {row.utilization * 100:>5.0f} "
            f"{row.bound:>10.2f} {row.simulated_quantile:>10.2f} "
            f"{row.simulated_max:>10.2f} {str(row.sound):>6}"
        )
    return "\n".join(lines)
