"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments fig2 [--full] [--csv out.csv]
    python -m repro.experiments fig3 --hops 2 5
    python -m repro.experiments fig4 --utilizations 0.5
    python -m repro.experiments validation --slots 30000

Each command regenerates one of the paper's figures (or the added
validation experiment) and prints the series as a table; ``--csv`` also
writes machine-readable output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.example1 import run_example1
from repro.experiments.example2 import run_example2
from repro.experiments.example3 import run_example3
from repro.experiments.runner import format_table, rows_to_csv
from repro.experiments.validation import format_validation, run_validation


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full optimization grids (slower, <1%% tighter)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="also write the rows as CSV"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of 'Does Link Scheduling "
        "Matter on Long Paths?' (ICDCS 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("fig2", help="Example 1: bounds vs. utilization")
    p2.add_argument("--hops", type=int, nargs="+", default=[2, 5, 10])
    p2.add_argument(
        "--utilizations", type=float, nargs="+",
        default=[0.20, 0.35, 0.50, 0.65, 0.80, 0.95],
    )
    _add_common(p2)

    p3 = sub.add_parser("fig3", help="Example 2: bounds vs. traffic mix")
    p3.add_argument("--hops", type=int, nargs="+", default=[2, 5, 10])
    p3.add_argument(
        "--mixes", type=float, nargs="+", default=[0.1, 0.3, 0.5, 0.7, 0.9]
    )
    _add_common(p3)

    p4 = sub.add_parser("fig4", help="Example 3: bounds vs. path length")
    p4.add_argument("--hops", type=int, nargs="+", default=[1, 2, 4, 6, 8, 10])
    p4.add_argument(
        "--utilizations", type=float, nargs="+", default=[0.10, 0.50, 0.90]
    )
    _add_common(p4)

    pv = sub.add_parser("validation", help="bounds vs. simulated quantiles")
    pv.add_argument("--hops", type=int, nargs="+", default=[1, 2])
    pv.add_argument("--slots", type=int, default=20_000)
    pv.add_argument("--utilization", type=float, default=0.90)
    pv.add_argument("--epsilon", type=float, default=1e-3)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "fig2":
        rows = run_example1(
            utilizations=tuple(args.utilizations),
            hops=tuple(args.hops),
            quick=not args.full,
        )
        print(format_table(rows, x_label="U [%]"))
    elif args.command == "fig3":
        rows = run_example2(
            mixes=tuple(args.mixes), hops=tuple(args.hops),
            quick=not args.full,
        )
        print(format_table(rows, x_label="Uc/U"))
    elif args.command == "fig4":
        rows = run_example3(
            hops=tuple(args.hops),
            utilizations=tuple(args.utilizations),
            quick=not args.full,
        )
        print(format_table(rows, x_label="H"))
    else:  # validation
        cells = run_validation(
            hops=tuple(args.hops),
            utilization=args.utilization,
            epsilon=args.epsilon,
            slots=args.slots,
        )
        print(format_validation(cells))
        return 0 if all(cell.sound for cell in cells) else 1

    if getattr(args, "csv", None):
        with open(args.csv, "w") as handle:
            handle.write(rows_to_csv(rows))
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
