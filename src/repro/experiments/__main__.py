"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments fig2 [--full] [--jobs 4] [--csv out.csv]
    python -m repro.experiments fig2 --backend scalar   # reference path
    python -m repro.experiments fig3 --hops 2 5 --json fig3.json
    python -m repro.experiments fig4 --utilizations 0.5 --no-cache
    python -m repro.experiments validation --slots 30000 --seed 7
    python -m repro.experiments topology --topology parking-lot --size 4

Each command declares one of the paper's figures (or the added
validation experiment) as a sweep spec and runs it through the sweep
engine: ``--jobs N`` fans the cells out over a process pool, and a
content-keyed cell cache under ``--cache-dir`` (default
``.repro_cache/``) makes warm re-runs only recompute changed cells
(``--no-cache`` disables it).  The series print as a table; ``--csv``
writes the rows and ``--json`` writes a structured artifact with the
full grid metadata, per-cell wall-clock, and diagnostics.

``--trace`` turns on the structured observability layer
(:mod:`repro.obs`) for the run: hierarchical span timers, optimizer and
cache counters, and per-cell runtime/queue-wait series are collected —
including inside pool workers, whose snapshots are merged after the
join — and embedded in the JSON artifact under ``"metrics"``.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Sequence

from repro import obs
from repro.experiments.cache import DEFAULT_CACHE_DIR, CellCache
from repro.experiments.config import BACKENDS, DEFAULT_BACKEND
from repro.experiments.example1 import fig2_spec
from repro.experiments.example2 import fig3_spec
from repro.experiments.example3 import fig4_spec
from repro.experiments.executor import make_executor
from repro.experiments.runner import (
    dict_rows_to_csv,
    format_table,
    rows_to_csv,
    write_json_artifact,
)
from repro.experiments.stream import StreamingArtifactWriter
from repro.experiments.sweep import run_sweep
from repro.experiments.topology import (
    format_topology,
    rows_to_topology,
    topology_spec,
    topology_summary,
)
from repro.experiments.validation import (
    format_rare_validation,
    format_validation,
    rare_validation_summary,
    rows_to_validation,
    run_rare_validation,
    validation_spec,
    validation_summary,
)
from repro.simulation.engine import ENGINES
from repro.topology import ANALYZABLE_SCHEDULERS
from repro.topology.scenarios import SCENARIOS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full optimization grids (slower, <1%% tighter)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="compute cells on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="fuse compatible cells into vectorized mega-batches (see "
        "repro.experiments.batch); results are bitwise identical to "
        "per-cell execution",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="bound-computation backend: vectorized numpy kernels "
        "(default) or the scalar reference path",
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="also write the rows as CSV"
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write a structured JSON artifact (rows + grid metadata "
        "+ per-cell diagnostics and wall-clock)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell, bypassing the on-disk cell cache",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="collect structured metrics (span timers, optimizer/cache "
        "counters, per-cell runtimes) and embed the tree in the JSON "
        "artifact under 'metrics'",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"cell cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of 'Does Link Scheduling "
        "Matter on Long Paths?' (ICDCS 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("fig2", help="Example 1: bounds vs. utilization")
    p2.add_argument("--hops", type=int, nargs="+", default=[2, 5, 10])
    p2.add_argument(
        "--utilizations", type=float, nargs="+",
        default=[0.20, 0.35, 0.50, 0.65, 0.80, 0.95],
    )
    _add_common(p2)

    p3 = sub.add_parser("fig3", help="Example 2: bounds vs. traffic mix")
    p3.add_argument("--hops", type=int, nargs="+", default=[2, 5, 10])
    p3.add_argument(
        "--mixes", type=float, nargs="+", default=[0.1, 0.3, 0.5, 0.7, 0.9]
    )
    _add_common(p3)

    p4 = sub.add_parser("fig4", help="Example 3: bounds vs. path length")
    p4.add_argument("--hops", type=int, nargs="+", default=[1, 2, 4, 6, 8, 10])
    p4.add_argument(
        "--utilizations", type=float, nargs="+", default=[0.10, 0.50, 0.90]
    )
    _add_common(p4)

    pv = sub.add_parser("validation", help="bounds vs. simulated quantiles")
    pv.add_argument("--hops", type=int, nargs="+", default=[1, 2])
    pv.add_argument("--slots", type=int, default=20_000)
    pv.add_argument("--utilization", type=float, default=0.90)
    pv.add_argument("--epsilon", type=float, default=1e-3)
    pv.add_argument(
        "--seed", type=int, default=5,
        help="root seed; per-trial seeds are spawned from it and "
        "recorded in the artifact for reproducibility",
    )
    pv.add_argument(
        "--trials", type=int, default=1, metavar="N",
        help="independent Monte Carlo trials per grid point (default: 1); "
        "the summary reports the median quantile with a 95%% "
        "order-statistics CI and a bound-violation count",
    )
    pv.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help="simulation engine: the vectorized fluid fast path "
        "(default) or the exact chunk-level simulator",
    )
    pv.add_argument(
        "--method", choices=("naive", "importance"), default="naive",
        help="trial estimator: 'naive' compares the simulated "
        "(1-eps)-quantile against the bound (default); 'importance' "
        "estimates P(delay > bound) directly by exponential tilting "
        "(see repro.simulation.rare) — the only way to reach "
        "production epsilons like 1e-6",
    )
    pv.add_argument(
        "--ci-target", type=float, default=0.25, metavar="R",
        help="importance method only: keep adding trial batches per "
        "grid point until the 95%% relative CI half-width of the tail "
        "estimate reaches R (default: 0.25); replaces the fixed "
        "--trials count",
    )
    pv.add_argument(
        "--batch-trials", type=int, default=100, metavar="N",
        help="importance method only: trials per adaptive batch "
        "(default: 100); batches are prefix-stable slices of the "
        "per-seed sequence, so cached batch cells survive target "
        "changes",
    )
    pv.add_argument(
        "--max-batches", type=int, default=25, metavar="N",
        help="importance method only: per-point batch cap for the "
        "adaptive loop (default: 25)",
    )
    _add_common(pv)

    pt = sub.add_parser(
        "topology",
        help="per-route bounds vs. simulation on a feed-forward scenario",
    )
    pt.add_argument(
        "--topology", choices=SCENARIOS, default="sink-tree",
        help="scenario shape (default: sink-tree)",
    )
    pt.add_argument(
        "--size", type=int, default=2,
        help="scenario size knob: hops (line/parking-lot), depth "
        "(sink-tree), pods (fat-tree), or node count (random)",
    )
    pt.add_argument(
        "--scheduler", choices=ANALYZABLE_SCHEDULERS, default="fifo",
        help="scheduler at every node (default: fifo)",
    )
    pt.add_argument(
        "--n-flows", type=int, default=20,
        help="flows per route / per cross aggregate (default: 20)",
    )
    pt.add_argument(
        "--utilization", type=float, default=0.7,
        help="target link utilization the capacities are sized for",
    )
    pt.add_argument(
        "--scenario-seed", type=int, default=0,
        help="seed of the random scenario generator (random only)",
    )
    pt.add_argument("--slots", type=int, default=20_000)
    pt.add_argument("--epsilon", type=float, default=1e-3)
    pt.add_argument(
        "--seed", type=int, default=5,
        help="root seed; per-trial seeds are spawned from it and "
        "recorded in the artifact for reproducibility",
    )
    pt.add_argument(
        "--trials", type=int, default=1, metavar="N",
        help="independent Monte Carlo trials of the whole topology "
        "(default: 1)",
    )
    pt.add_argument(
        "--engine", choices=("auto",) + ENGINES, default="auto",
        help="simulation engine: 'auto' picks the vectorized fast path "
        "whenever the topology supports it (default)",
    )
    _add_common(pt)

    return parser


def _build_spec(args: argparse.Namespace):
    if args.command == "fig2":
        return fig2_spec(
            utilizations=tuple(args.utilizations),
            hops=tuple(args.hops),
            quick=not args.full,
            backend=args.backend,
        )
    if args.command == "fig3":
        return fig3_spec(
            mixes=tuple(args.mixes),
            hops=tuple(args.hops),
            quick=not args.full,
            backend=args.backend,
        )
    if args.command == "fig4":
        return fig4_spec(
            hops=tuple(args.hops),
            utilizations=tuple(args.utilizations),
            quick=not args.full,
            backend=args.backend,
        )
    if args.command == "topology":
        return topology_spec(
            args.topology,
            args.size,
            scheduler=args.scheduler,
            n_flows=args.n_flows,
            utilization=args.utilization,
            scenario_seed=args.scenario_seed,
            epsilon=args.epsilon,
            slots=args.slots,
            seed=args.seed,
            n_trials=args.trials,
            engine=args.engine,
            quick=not args.full,
            backend=args.backend,
        )
    return validation_spec(
        hops=tuple(args.hops),
        utilization=args.utilization,
        epsilon=args.epsilon,
        slots=args.slots,
        seed=args.seed,
        n_trials=args.trials,
        engine=args.engine,
        quick=not args.full,
        backend=args.backend,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace:
        obs.reset()
        obs.enable()
    try:
        return _run(args)
    finally:
        if args.trace:
            obs.disable()


def _run(args) -> int:
    executor = make_executor(args.jobs)
    cache = None if args.no_cache else CellCache(args.cache_dir)

    if args.command == "validation" and args.method == "importance":
        return _run_rare(args, executor, cache)

    spec = _build_spec(args)
    writer = None
    if args.json or args.csv:
        writer = StreamingArtifactWriter(
            spec, args.json, csv_path=args.csv, csv_rows=dict_rows_to_csv,
            meta={"command": args.command, "jobs": args.jobs},
        )
    with obs.trace(f"cli.{args.command}"):
        result = run_sweep(
            spec, executor=executor, cache=cache, batch=args.batch,
            on_cell=writer.on_cell if writer is not None else None,
        )

    if args.command == "validation":
        validation_rows = rows_to_validation(result.rows)
        print(format_validation(validation_rows))
        csv_text = dict_rows_to_csv(result.rows)
        rc = 0 if all(row.sound for row in validation_rows) else 1
    elif args.command == "topology":
        topology_rows = rows_to_topology(result.rows)
        print(format_topology(topology_rows))
        csv_text = dict_rows_to_csv(result.rows)
        rc = 0 if all(row.sound for row in topology_rows) else 1
    else:
        rows = result.experiment_rows()
        print(format_table(rows, x_label=spec.x_label))
        csv_text = rows_to_csv(rows)
        rc = 0

    print(
        f"[{spec.name}] {len(result.cells)} cells "
        f"({result.cached_cells} cached), "
        f"{result.computed_wall_time_s:.2f}s cell compute time, "
        f"jobs={args.jobs}"
    )

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(csv_text)
        print(f"wrote {args.csv}")
    if args.trace:
        registry = obs.active()
        hits = registry.counter("cache.hits")
        misses = registry.counter("cache.misses")
        edf_iterations = registry.counter("e2e.edf_iterations") + sum(
            registry.series("lanes.edf_lane_iterations")
        )
        print(
            f"[trace] cache hits={hits:.0f} misses={misses:.0f}, "
            f"edf fixed-point iterations={edf_iterations:.0f}"
        )
        if args.batch:
            print(_format_batch_trace(registry))
    if args.json:
        meta = {
            "command": args.command,
            "jobs": args.jobs,
            "full": args.full,
            "backend": args.backend,
            "trace": args.trace,
        }
        if args.command == "validation":
            meta["seed"] = args.seed
            meta["trials"] = args.trials
            meta["engine"] = args.engine
            meta["summary"] = validation_summary(validation_rows)
        elif args.command == "topology":
            meta["topology"] = args.topology
            meta["size"] = args.size
            meta["scheduler"] = args.scheduler
            meta["seed"] = args.seed
            meta["trials"] = args.trials
            meta["engine"] = args.engine
            meta["summary"] = topology_summary(topology_rows)
        artifact = result.to_artifact(meta=meta)
        if args.trace:
            artifact["metrics"] = obs.snapshot()
        write_json_artifact(args.json, artifact)
        print(f"wrote {args.json}")
    return rc


def _format_batch_trace(registry) -> str:
    """One-line summary of the batched run's planner/executor metrics."""
    occupancy = registry.series("batch.occupancy")
    mean_occupancy = (
        sum(occupancy) / len(occupancy) if occupancy else 0.0
    )
    lane_iterations = registry.series("lanes.edf_lane_iterations")
    histogram = Counter(int(i) for i in lane_iterations)
    histogram_text = (
        " ".join(f"{k}:{v}" for k, v in sorted(histogram.items())) or "-"
    )
    return (
        f"[trace] batches={registry.counter('batch.executed'):.0f}"
        f"/{registry.counter('batch.planned'):.0f} planned "
        f"(fallback cells={registry.counter('batch.fallback_cells'):.0f}), "
        f"mean occupancy={mean_occupancy:.1f}, "
        f"steals={registry.counter('executor.steals'):.0f}, "
        f"edf lane-iteration histogram: {histogram_text}"
    )


def _run_rare(args, executor, cache) -> int:
    """The ``validation --method importance`` path.

    Two-phase and adaptive (see
    :func:`repro.experiments.validation.run_rare_validation`), so it
    does not fit the single-sweep flow of :func:`_run`; the JSON
    artifact carries the raw batch rows plus the aggregated summary
    under ``meta.summary`` like the naive validation artifact.
    """
    with obs.trace("cli.validation.rare"):
        result = run_rare_validation(
            hops=tuple(args.hops),
            utilization=args.utilization,
            epsilon=args.epsilon,
            seed=args.seed,
            batch_trials=args.batch_trials,
            ci_target=args.ci_target,
            max_batches=args.max_batches,
            engine=args.engine,
            quick=not args.full,
            backend=args.backend,
            executor=executor,
            cache=cache,
        )
    print(format_rare_validation(result.rows))
    print(
        f"[validation-rare] {result.cells} cells "
        f"({result.cached_cells} cached), "
        f"{result.computed_wall_time_s:.2f}s cell compute time, "
        f"jobs={args.jobs}"
    )
    summary = rare_validation_summary(result.rows)
    rc = 0 if all(row.sound for row in result.rows) else 1

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(dict_rows_to_csv(summary))
        print(f"wrote {args.csv}")
    if args.json:
        artifact = {
            "name": "validation-rare",
            "settings": {
                "hops": list(args.hops),
                "utilization": args.utilization,
                "epsilon": args.epsilon,
                "ci_target": args.ci_target,
                "batch_trials": args.batch_trials,
                "max_batches": args.max_batches,
                "quick": not args.full,
                "backend": args.backend,
            },
            "n_cells": result.cells,
            "cached_cells": result.cached_cells,
            "computed_wall_time_s": result.computed_wall_time_s,
            "rows": result.raw_rows,
            "meta": {
                "command": args.command,
                "method": args.method,
                "jobs": args.jobs,
                "seed": args.seed,
                "engine": args.engine,
                "trace": args.trace,
                "summary": summary,
            },
        }
        if args.trace:
            artifact["metrics"] = obs.snapshot()
        write_json_artifact(args.json, artifact)
        print(f"wrote {args.json}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
