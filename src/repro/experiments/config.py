"""Shared parameters of the paper's numerical examples (Section V).

Units: time in ms (one slot), data in kbit, rates in Mbps
(1 Mbps x 1 ms = 1 kbit).  All examples share:

* MMOO flows with ``P = 1.5`` kbit, ``p11 = 0.989``, ``p22 = 0.9``
  (peak 1.5 Mbps, mean ~0.1486 Mbps; the paper rounds to 0.15);
* link capacity ``C = 100`` Mbps at every node;
* violation probability ``eps = 1e-9``;
* utilization accounting ``U = (N_0 + N_c) * 0.15 / 100`` — the paper
  uses the *rounded* 0.15 Mbps per flow, so converting a target
  utilization to a flow count divides by 0.15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrivals.mmoo import MMOOParameters
from repro.utils.validation import check_in_range

#: Per-flow rate the paper uses for utilization accounting (Mbps).
NOMINAL_FLOW_RATE = 0.15

#: Link rate at every node (Mbps).
CAPACITY = 100.0

#: Target violation probability of all examples.
EPSILON = 1e-9

#: Numeric backends for the bound computations: the numpy backend runs
#: the free-parameter search through the vectorized kernels of
#: :mod:`repro.network.vectorized`; the scalar backend is the plain
#: per-probe reference implementation.  Both return the same bounds.
BACKENDS = ("numpy", "scalar")
DEFAULT_BACKEND = "numpy"

#: Experiment scheduler name -> (simulator scheduler, analysis Delta,
#: EDF deadlines or None).  The deadlines are the paper's Section V EDF
#: setting (d*_0 = 1, d*_c = 10), making Delta = d*_0 - d*_c = -9.
#: Shared by the validation and topology experiments so both label their
#: rows with the same scheduler vocabulary.
SCHEDULER_MAP = {
    "FIFO": ("fifo", 0.0, None),
    "BMUX": ("bmux", math.inf, None),
    "EDF": ("edf", 1.0 - 10.0, (1.0, 10.0)),
    "SP": ("sp", -math.inf, None),
}


@dataclass(frozen=True)
class PaperSetting:
    """The common experimental setting of Section V."""

    traffic: MMOOParameters
    capacity: float = CAPACITY
    epsilon: float = EPSILON

    def flows_for_utilization(self, utilization: float) -> int:
        """Flow count whose nominal load is ``utilization`` (0..1)."""
        check_in_range(utilization, 0.0, 1.0, "utilization")
        return round(utilization * self.capacity / NOMINAL_FLOW_RATE)

    def utilization_of(self, n_flows: int) -> float:
        """Nominal utilization of ``n_flows`` flows."""
        return n_flows * NOMINAL_FLOW_RATE / self.capacity


def paper_setting() -> PaperSetting:
    """The exact Section V setting."""
    return PaperSetting(traffic=MMOOParameters.paper_defaults())


#: Grid sizes for the numeric (s, gamma) optimization.  "quick" keeps the
#: benchmark harness fast while staying within ~1% of the "full" bounds
#: (checked by the ablation benchmark).
QUICK_GRIDS = {"s_grid": 12, "gamma_grid": 12}
FULL_GRIDS = {"s_grid": 24, "gamma_grid": 24}


def grids(quick: bool) -> dict:
    """Optimization grid sizes for the chosen fidelity."""
    return dict(QUICK_GRIDS if quick else FULL_GRIDS)


def setting_to_params(setting: PaperSetting) -> dict:
    """Flatten a setting into plain, JSON-able cell parameters.

    The sweep pipeline requires cells to be records of plain values (so
    they hash into cache keys and pickle into worker processes); this and
    :func:`setting_from_params` round-trip the Section V setting through
    that representation.
    """
    traffic = setting.traffic
    return {
        "traffic": (traffic.peak, traffic.p11, traffic.p22),
        "capacity": setting.capacity,
        "epsilon": setting.epsilon,
    }


def setting_from_params(
    traffic: tuple, capacity: float, epsilon: float
) -> PaperSetting:
    """Rebuild a :class:`PaperSetting` from flattened cell parameters."""
    peak, p11, p22 = traffic
    return PaperSetting(
        traffic=MMOOParameters(peak, p11, p22),
        capacity=capacity,
        epsilon=epsilon,
    )
