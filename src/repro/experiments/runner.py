"""Row records, table formatting, and artifacts for the experiment harness."""

from __future__ import annotations

import io
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence


@dataclass(frozen=True)
class ExperimentRow:
    """One data point of a figure: a series label, an x value, a bound."""

    series: str
    x: float
    delay: float
    extra: Mapping[str, float] = field(default_factory=dict)


def format_table(
    rows: Sequence[ExperimentRow],
    *,
    x_label: str = "x",
    value_label: str = "delay bound [ms]",
) -> str:
    """Render rows as a text table: one column per series, one line per x.

    Mirrors how the paper's figures would be read off: each series is one
    plotted curve.
    """
    series_names = sorted({row.series for row in rows})
    xs = sorted({row.x for row in rows})
    cell: dict[tuple[float, str], float] = {
        (row.x, row.series): row.delay for row in rows
    }
    out = io.StringIO()
    width = max(12, max((len(s) for s in series_names), default=12) + 2)
    header = f"{x_label:>10} " + "".join(f"{name:>{width}}" for name in series_names)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for x in xs:
        line = f"{x:>10.3g} "
        for name in series_names:
            value = cell.get((x, name), math.nan)
            if math.isnan(value):
                line += f"{'-':>{width}}"
            elif math.isinf(value):
                line += f"{'inf':>{width}}"
            else:
                line += f"{value:>{width}.2f}"
        out.write(line + "\n")
    out.write(f"(values: {value_label})\n")
    return out.getvalue()


def rows_to_csv(rows: Iterable[ExperimentRow]) -> str:
    """Serialize rows to CSV (series, x, delay, extras flattened)."""
    rows = list(rows)
    extra_keys = sorted({k for row in rows for k in row.extra})
    out = io.StringIO()
    out.write(",".join(["series", "x", "delay"] + extra_keys) + "\n")
    for row in rows:
        values = [row.series, f"{row.x:g}", f"{row.delay:g}"]
        values += [f"{row.extra.get(k, math.nan):g}" for k in extra_keys]
        out.write(",".join(values) + "\n")
    return out.getvalue()


def dict_rows_to_csv(rows: Iterable[Mapping[str, Any]]) -> str:
    """Serialize free-form row dicts (e.g. validation cells) to CSV.

    Columns are the union of keys, in first-seen order; nested ``extra``
    mappings are flattened into their own columns.
    """
    flat: list[dict[str, Any]] = []
    for row in rows:
        item = dict(row)
        extra = item.pop("extra", None)
        if isinstance(extra, Mapping):
            item.update(extra)
        flat.append(item)
    columns: list[str] = []
    for item in flat:
        for key in item:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for item in flat:
        values = []
        for key in columns:
            value = item.get(key, "")
            if isinstance(value, float):
                values.append(f"{value:g}")
            else:
                values.append(str(value))
        out.write(",".join(values) + "\n")
    return out.getvalue()


def write_json_artifact(path: str | Path, artifact: Mapping[str, Any]) -> None:
    """Write a structured sweep artifact (see ``SweepResult.to_artifact``).

    Plain ``json`` with ``allow_nan`` left on: infinite bounds serialize
    as ``Infinity``, which Python's reader round-trips exactly.  The
    write is atomic (temp file + ``os.replace``) so a crash mid-write
    never leaves a truncated artifact — the streaming writer
    (:mod:`repro.experiments.stream`) relies on this when it hands the
    final artifact over.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(dict(artifact), handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
