"""Example 3 (paper Fig. 4): delay bounds vs. path length.

Setting: equal through and cross aggregates (``N_0 = N_c``), total
utilization ``U in {10, 50, 90}%`` (the figure caption; the body's "100%"
is a typo — a saturated link has no finite bounds); path length sweeps
``H``.  Series: BMUX, FIFO, EDF (``d*_0 = d_e2e/H``,
``d*_c = 10 d_e2e/H``) computed with the network service curve, plus the
**additive** BMUX baseline that sums per-node bounds.

Expected shape (paper's reading of Fig. 4): the network-service-curve
bounds grow essentially linearly in ``H`` (the predicted
``Theta(H log H)``); the additive baseline is far looser and grows like
``O(H^3 log H)``; FIFO and BMUX appear identical across the whole range
while EDF stays noticeably lower at higher utilizations.

Declared as :func:`fig4_spec` over the top-level :func:`fig4_cell`;
:func:`run_example3` executes it through the sweep engine.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import (
    DEFAULT_BACKEND,
    PaperSetting,
    grids,
    paper_setting,
    setting_from_params,
    setting_to_params,
)
from repro.experiments.batch import CellPlan, edf_diagnostics
from repro.experiments.runner import ExperimentRow
from repro.experiments.sweep import Cell, SweepSpec, run_sweep
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo
from repro.network.lanes import EDFLaneSpec, LaneSpec
from repro.network.pernode import additive_pernode_delay_bound_mmoo

DEFAULT_HOPS = (1, 2, 4, 6, 8, 10)
DEFAULT_UTILIZATIONS = (0.10, 0.50, 0.90)
SCHEDULERS = ("BMUX", "FIFO", "EDF", "BMUX additive")

CELL_FN = "repro.experiments.example3:fig4_cell"


def fig4_cell(
    *,
    scheduler: str,
    hops: int,
    utilization: float,
    traffic: tuple,
    capacity: float,
    epsilon: float,
    s_grid: int,
    gamma_grid: int,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """One (scheduler, U, H) point of Fig. 4 — pure and picklable."""
    setting = setting_from_params(traffic, capacity, epsilon)
    grid = {"s_grid": s_grid, "gamma_grid": gamma_grid, "backend": backend}
    n_half = max(setting.flows_for_utilization(utilization) // 2, 1)
    if scheduler == "EDF":
        bound = e2e_delay_bound_edf(
            setting.traffic, n_half, n_half, hops,
            setting.capacity, setting.epsilon,
            deadline_weight_through=1.0,
            deadline_weight_cross=10.0,
            **grid,
        )
        return _fig4_payload(
            scheduler, hops, utilization, bound.result.delay,
            bound.result.gamma, edf_diagnostics(bound),
        )
    if scheduler == "BMUX additive":
        additive = additive_pernode_delay_bound_mmoo(
            setting.traffic, n_half, n_half, hops,
            setting.capacity, setting.epsilon,
            **grid,
        )
        return _fig4_payload(
            scheduler, hops, utilization, additive.delay, additive.gamma, {}
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    result = e2e_delay_bound_mmoo(
        setting.traffic, n_half, n_half, hops,
        setting.capacity, delta, setting.epsilon,
        **grid,
    )
    return _fig4_payload(
        scheduler, hops, utilization, result.delay, result.gamma, {}
    )


def _fig4_payload(
    scheduler: str, hops: int, utilization: float, delay: float,
    gamma: float, diagnostics: dict,
) -> dict:
    """The cell payload; shared by the per-cell and the batched path."""
    return {
        "rows": [
            {
                "series": f"{scheduler} U={utilization * 100:.0f}%",
                "x": float(hops),
                "delay": delay,
                "extra": {"gamma": gamma},
            }
        ],
        "diagnostics": diagnostics,
    }


def fig4_plan(params: dict) -> CellPlan | None:
    """Batch plan of one Fig. 4 cell (see :mod:`repro.experiments.batch`).

    The additive BMUX baseline runs a different solver
    (:func:`additive_pernode_delay_bound_mmoo`), so it declines batching
    and stays on the per-cell path.
    """
    scheduler = params["scheduler"]
    if scheduler == "BMUX additive":
        return None
    hops, utilization = params["hops"], params["utilization"]
    setting = setting_from_params(
        params["traffic"], params["capacity"], params["epsilon"]
    )
    n_half = max(setting.flows_for_utilization(utilization) // 2, 1)
    grid = {
        "s_grid": params["s_grid"],
        "gamma_grid": params["gamma_grid"],
        "backend": params.get("backend", DEFAULT_BACKEND),
    }
    if scheduler == "EDF":
        return CellPlan(
            kind="edf",
            spec=EDFLaneSpec(
                setting.traffic, n_half, n_half, hops,
                setting.capacity, setting.epsilon,
                deadline_weight_through=1.0,
                deadline_weight_cross=10.0,
                **grid,
            ),
            build=lambda bound: _fig4_payload(
                scheduler, hops, utilization, bound.result.delay,
                bound.result.gamma, edf_diagnostics(bound),
            ),
        )
    delta = math.inf if scheduler == "BMUX" else 0.0
    return CellPlan(
        kind="mmoo",
        spec=LaneSpec(
            setting.traffic, n_half, n_half, hops,
            setting.capacity, delta, setting.epsilon, **grid,
        ),
        build=lambda result: _fig4_payload(
            scheduler, hops, utilization, result.delay, result.gamma, {}
        ),
    )


def fig4_spec(
    *,
    hops: Sequence[int] = DEFAULT_HOPS,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> SweepSpec:
    """Declare the Fig. 4 grid (one cell per (scheduler, U, H) point)."""
    setting = setting or paper_setting()
    shared = {
        **setting_to_params(setting), **grids(quick), "backend": backend
    }
    cells = [
        Cell.make(
            CELL_FN,
            scheduler=scheduler,
            hops=h,
            utilization=utilization,
            **shared,
        )
        for utilization in utilizations
        for h in hops
        for scheduler in schedulers
    ]
    return SweepSpec.build(
        "fig4",
        cells,
        settings={"quick": quick, **shared},
        x_label="H",
    )


def run_example3(
    *,
    hops: Sequence[int] = DEFAULT_HOPS,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
    executor=None,
    cache=None,
) -> list[ExperimentRow]:
    """Compute the Fig. 4 series through the sweep engine.

    ``x`` is the path length ``H``; the series label is
    ``"<scheduler> U=<U>%"``.
    """
    spec = fig4_spec(
        hops=hops, utilizations=utilizations, schedulers=schedulers,
        setting=setting, quick=quick,
    )
    return run_sweep(spec, executor=executor, cache=cache).experiment_rows()
