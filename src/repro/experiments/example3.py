"""Example 3 (paper Fig. 4): delay bounds vs. path length.

Setting: equal through and cross aggregates (``N_0 = N_c``), total
utilization ``U in {10, 50, 90}%`` (the figure caption; the body's "100%"
is a typo — a saturated link has no finite bounds); path length sweeps
``H``.  Series: BMUX, FIFO, EDF (``d*_0 = d_e2e/H``,
``d*_c = 10 d_e2e/H``) computed with the network service curve, plus the
**additive** BMUX baseline that sums per-node bounds.

Expected shape (paper's reading of Fig. 4): the network-service-curve
bounds grow essentially linearly in ``H`` (the predicted
``Theta(H log H)``); the additive baseline is far looser and grows like
``O(H^3 log H)``; FIFO and BMUX appear identical across the whole range
while EDF stays noticeably lower at higher utilizations.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.config import PaperSetting, grids, paper_setting
from repro.experiments.runner import ExperimentRow
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo
from repro.network.pernode import additive_pernode_delay_bound_mmoo

DEFAULT_HOPS = (1, 2, 4, 6, 8, 10)
DEFAULT_UTILIZATIONS = (0.10, 0.50, 0.90)
SCHEDULERS = ("BMUX", "FIFO", "EDF", "BMUX additive")


def run_example3(
    *,
    hops: Sequence[int] = DEFAULT_HOPS,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    schedulers: Sequence[str] = SCHEDULERS,
    setting: PaperSetting | None = None,
    quick: bool = True,
) -> list[ExperimentRow]:
    """Compute the Fig. 4 series.

    ``x`` is the path length ``H``; the series label is
    ``"<scheduler> U=<U>%"``.
    """
    setting = setting or paper_setting()
    grid = grids(quick)
    rows: list[ExperimentRow] = []
    for utilization in utilizations:
        n_half = max(setting.flows_for_utilization(utilization) // 2, 1)
        for h in hops:
            for scheduler in schedulers:
                if scheduler == "EDF":
                    result, _ = e2e_delay_bound_edf(
                        setting.traffic, n_half, n_half, h,
                        setting.capacity, setting.epsilon,
                        deadline_weight_through=1.0,
                        deadline_weight_cross=10.0,
                        **grid,
                    )
                    delay = result.delay
                    gamma = result.gamma
                elif scheduler == "BMUX additive":
                    additive = additive_pernode_delay_bound_mmoo(
                        setting.traffic, n_half, n_half, h,
                        setting.capacity, setting.epsilon,
                        **grid,
                    )
                    delay = additive.delay
                    gamma = additive.gamma
                else:
                    delta = math.inf if scheduler == "BMUX" else 0.0
                    result = e2e_delay_bound_mmoo(
                        setting.traffic, n_half, n_half, h,
                        setting.capacity, delta, setting.epsilon,
                        **grid,
                    )
                    delay = result.delay
                    gamma = result.gamma
                rows.append(
                    ExperimentRow(
                        series=f"{scheduler} U={utilization * 100:.0f}%",
                        x=float(h),
                        delay=delay,
                        extra={"gamma": gamma},
                    )
                )
    return rows
