"""Reproductions of the paper's numerical examples (Section V).

One module per figure, each *declaring* its grid as a
:class:`~repro.experiments.sweep.SweepSpec` over a top-level cell
function:

* :mod:`repro.experiments.example1` — Fig. 2: end-to-end delay bounds vs.
  total utilization, H in {2, 5, 10}, schedulers BMUX / FIFO / EDF;
* :mod:`repro.experiments.example2` — Fig. 3: bounds vs. traffic mix
  ``U_c / U`` at constant U = 50%, EDF with short and long through
  deadlines;
* :mod:`repro.experiments.example3` — Fig. 4: bounds vs. path length at
  U in {10, 50, 90}%, including the additive per-node BMUX baseline;
* :mod:`repro.experiments.validation` — added experiment: simulated delay
  quantiles against the analytic bounds;
* :mod:`repro.experiments.topology` — added experiment: per-route bounds
  vs. simulation on feed-forward scenarios (sink tree, parking lot,
  fat-tree slice, random DAGs).

The specs execute through the sweep engine
(:func:`~repro.experiments.sweep.run_sweep`): cells run on a pluggable
executor (serial or a ``multiprocessing`` pool) and can be served from a
content-keyed on-disk cache, so warm re-runs only recompute changed
cells.  ``run_example1/2/3`` and ``run_validation`` keep the historical
row-list interface; the benchmark harness under ``benchmarks/`` and the
CLI (``python -m repro.experiments``) regenerate every figure through
the same pipeline.
"""

from repro.experiments.cache import DEFAULT_CACHE_DIR, CellCache
from repro.experiments.config import PaperSetting, paper_setting
from repro.experiments.example1 import fig2_spec, run_example1
from repro.experiments.example2 import fig3_spec, run_example2
from repro.experiments.example3 import fig4_spec, run_example3
from repro.experiments.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.runner import (
    ExperimentRow,
    dict_rows_to_csv,
    format_table,
    rows_to_csv,
    write_json_artifact,
)
from repro.experiments.sweep import (
    Cell,
    CellResult,
    SweepResult,
    SweepSpec,
    cell_key,
    run_sweep,
)
from repro.experiments.topology import run_topology, topology_spec
from repro.experiments.validation import run_validation, validation_spec

__all__ = [
    "PaperSetting",
    "paper_setting",
    "run_example1",
    "run_example2",
    "run_example3",
    "run_validation",
    "run_topology",
    "fig2_spec",
    "fig3_spec",
    "fig4_spec",
    "validation_spec",
    "topology_spec",
    "Cell",
    "CellResult",
    "SweepResult",
    "SweepSpec",
    "cell_key",
    "run_sweep",
    "CellCache",
    "DEFAULT_CACHE_DIR",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "ExperimentRow",
    "format_table",
    "rows_to_csv",
    "dict_rows_to_csv",
    "write_json_artifact",
]
