"""Reproductions of the paper's numerical examples (Section V).

One module per figure:

* :mod:`repro.experiments.example1` — Fig. 2: end-to-end delay bounds vs.
  total utilization, H in {2, 5, 10}, schedulers BMUX / FIFO / EDF;
* :mod:`repro.experiments.example2` — Fig. 3: bounds vs. traffic mix
  ``U_c / U`` at constant U = 50%, EDF with short and long through
  deadlines;
* :mod:`repro.experiments.example3` — Fig. 4: bounds vs. path length at
  U in {10, 50, 90}%, including the additive per-node BMUX baseline;
* :mod:`repro.experiments.validation` — added experiment: simulated delay
  quantiles against the analytic bounds.

Each experiment returns plain row records and can print the series the
paper's figures plot; the benchmark harness under ``benchmarks/``
regenerates every figure through these entry points.
"""

from repro.experiments.config import PaperSetting, paper_setting
from repro.experiments.example1 import run_example1
from repro.experiments.example2 import run_example2
from repro.experiments.example3 import run_example3
from repro.experiments.validation import run_validation
from repro.experiments.runner import ExperimentRow, format_table, rows_to_csv

__all__ = [
    "PaperSetting",
    "paper_setting",
    "run_example1",
    "run_example2",
    "run_example3",
    "run_validation",
    "ExperimentRow",
    "format_table",
    "rows_to_csv",
]
