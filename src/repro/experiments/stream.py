"""Streaming sweep artifacts: every completed cell lands on disk.

:class:`StreamingArtifactWriter` plugs into ``run_sweep(...,
on_cell=writer.on_cell)``: each completion (cache hit or computed cell,
in completion order) triggers an atomic rewrite of the JSON artifact —
write to a sibling temp file, then :func:`os.replace` — so the artifact
on disk is *always* valid JSON.  A sweep killed mid-flight leaves a
partial artifact (``"partial": true``) holding every cell that finished
before the kill; since computed cells also enter the content-keyed cell
cache as they complete, re-running the same sweep resumes from the
cache and only recomputes the cells that were still in flight.

The partial artifact uses the same ``repro.sweep/1`` cell records as
the final one but lists only completed cells (in grid order, with their
grid ``index``).  :meth:`StreamingArtifactWriter.finalize` writes the
exact final artifact (byte-identical to a non-streaming
``write_json_artifact`` of ``result.to_artifact()``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterable, Mapping

from repro.experiments.sweep import SweepResult, SweepSpec

__all__ = ["StreamingArtifactWriter", "atomic_write_text"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


class StreamingArtifactWriter:
    """Incrementally persist a sweep's results as cells complete.

    ``json_path`` receives a partial artifact after every completion;
    ``csv_path`` (optional) receives the completed rows, serialized by
    ``csv_rows`` (a ``rows -> str`` callable, e.g.
    :func:`repro.experiments.runner.dict_rows_to_csv`).  Rows appear in
    grid order regardless of completion order, so a partial file is a
    prefix-consistent subset of the final one.
    """

    def __init__(
        self,
        spec: SweepSpec,
        json_path: str | None,
        *,
        csv_path: str | None = None,
        csv_rows: Callable[[Iterable[Mapping[str, Any]]], str] | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        self.spec = spec
        self.keys = spec.keys()
        self.json_path = json_path
        self.csv_path = csv_path
        self.csv_rows = csv_rows
        self.meta = dict(meta or {})
        self.writes = 0
        self._payloads: dict[int, Mapping[str, Any]] = {}
        self._cached: dict[int, bool] = {}
        self._flush()

    def on_cell(
        self, index: int, payload: Mapping[str, Any], cached: bool
    ) -> None:
        """``run_sweep`` completion callback: record the cell and flush."""
        self._payloads[index] = payload
        self._cached[index] = cached
        self._flush()

    @property
    def completed(self) -> int:
        return len(self._payloads)

    def _rows(self) -> list[dict[str, Any]]:
        return [
            dict(row)
            for index in sorted(self._payloads)
            for row in self._payloads[index].get("rows", ())
        ]

    def partial_artifact(self) -> dict[str, Any]:
        """The current partial artifact (valid ``repro.sweep/1`` subset)."""
        return {
            "schema": "repro.sweep/1",
            "name": self.spec.name,
            "partial": True,
            "x_label": self.spec.x_label,
            "settings": {k: v for k, v in self.spec.settings},
            "meta": dict(self.meta),
            "n_cells": len(self.spec.cells),
            "completed_cells": self.completed,
            "rows": self._rows(),
            "cells": [
                {
                    "index": index,
                    "fn": self.spec.cells[index].fn,
                    "params": {
                        k: v for k, v in self.spec.cells[index].params
                    },
                    "key": self.keys[index],
                    "cached": self._cached[index],
                    "wall_time_s": float(
                        self._payloads[index].get("wall_time_s", 0.0)
                    ),
                    "diagnostics": dict(
                        self._payloads[index].get("diagnostics", {})
                    ),
                    "rows": [
                        dict(row)
                        for row in self._payloads[index].get("rows", ())
                    ],
                }
                for index in sorted(self._payloads)
            ],
        }

    def _flush(self) -> None:
        if self.json_path is not None:
            atomic_write_text(
                self.json_path,
                json.dumps(self.partial_artifact(), indent=2) + "\n",
            )
        if self.csv_path is not None and self.csv_rows is not None:
            atomic_write_text(self.csv_path, self.csv_rows(self._rows()))
        self.writes += 1

    def finalize(
        self,
        result: SweepResult,
        *,
        meta: Mapping[str, Any] | None = None,
        metrics: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Replace the partial JSON with the exact final artifact."""
        artifact = result.to_artifact(meta=meta if meta is not None else self.meta)
        if metrics is not None:
            artifact["metrics"] = dict(metrics)
        if self.json_path is not None:
            atomic_write_text(
                self.json_path, json.dumps(artifact, indent=2) + "\n"
            )
            self.writes += 1
        return artifact
