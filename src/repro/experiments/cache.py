"""Content-keyed on-disk cache for sweep cells.

Each cell result is one JSON file under the cache root (default
``.repro_cache/``), named by a stable SHA-256 of the cell's function,
its parameters, and the sweep-level settings — see
:func:`repro.experiments.sweep.cell_key`.  Changing any of those inputs
changes the key, so a re-run after editing one series only recomputes
the changed cells; everything else is a hit.

The cache is strictly best-effort: a missing, unreadable, corrupted, or
structurally wrong file is treated as a miss (never an error), and
writes go through a temp file + ``os.replace`` so a crashed run cannot
leave a torn entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro import obs

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


class CellCache:
    """A directory of ``<key>.json`` cell payloads."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """File backing ``key`` (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` on any miss.

        Corrupted JSON, payloads that are not a ``{"rows": [...]}``
        mapping, and I/O errors all count as misses.
        """
        path = self.path_for(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            obs.add("cache.misses")
            return None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("rows"), list
        ):
            obs.add("cache.misses")
            return None
        obs.add("cache.hits")
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (atomic, best-effort)."""
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
            obs.add("cache.puts")
        except OSError:
            pass  # a read-only or full disk must not fail the sweep

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"CellCache({str(self.root)!r})"
