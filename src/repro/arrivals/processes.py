"""Sample-path generators for discrete-time arrival processes.

These feed the simulator (:mod:`repro.simulation`) and the statistical
tests that verify envelope conformance empirically.  All generators are
vectorized with numpy and driven by an explicit :class:`numpy.random.Generator`
for reproducibility.

The MMOO generators are *event-driven*: instead of advancing every
flow's two-state chain slot by slot (``O(slots * flows)`` uniforms),
they draw each flow's alternating ON/OFF sojourn lengths directly —
geometric by the Markov property — and scatter the resulting ON
intervals into a per-slot difference array (``O(transitions)`` work,
roughly two orders of magnitude less for the paper's bursty sources).
The construction is exact: a two-state chain is precisely an
alternating sequence of independent ``Geometric(p21)`` ON and
``Geometric(p12)`` OFF sojourns, and a stationary start leaves the
residual first sojourn geometric by memorylessness.
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.mmoo import MMOOParameters
from repro.utils.validation import check_int, check_non_negative, check_positive

#: Sojourns drawn per flow per follow-up batch round (even, so each round
#: leaves every flow's ON/OFF phase parity unchanged).
_SOJOURN_BATCH = 16


def _geometric(
    rng: np.random.Generator, p: float, size: tuple[int, ...], horizon: int
) -> np.ndarray:
    """Geometric sojourn lengths; a zero-probability exit pins the state
    for the whole horizon (the sojourn never ends within it)."""
    if p <= 0.0:
        return np.full(size, horizon + 1, dtype=np.int64)
    return rng.geometric(p, size=size)


def _first_batch_pairs(params: MMOOParameters, n_slots: int) -> int:
    """ON/OFF sojourn pairs of the first batch round: enough that most
    flows cover the horizon in one round (mean cycle + a ~30% margin),
    capped to keep the draw matrices bounded."""
    mean_on = 1.0 / params.p21 if params.p21 > 0 else float(n_slots + 1)
    mean_off = 1.0 / params.p12 if params.p12 > 0 else float(n_slots + 1)
    est = 1.3 * n_slots / (mean_on + mean_off)
    return int(min(max(est + 3.0, _SOJOURN_BATCH / 2.0), 2048.0))


def _phase_intervals(
    flows: np.ndarray,
    start_on: bool,
    p12: float,
    p21: float,
    n_slots: int,
    rng: np.random.Generator,
    first_pairs: int,
    out_flows: list[np.ndarray],
    out_starts: list[np.ndarray],
    out_ends: list[np.ndarray],
) -> None:
    """Append the ON intervals of all ``flows`` sharing one initial phase.

    Because every flow in the group has the same phase, sojourns alternate
    in lockstep: each round draws one ON and one OFF length matrix (no
    discarded draws) and the k-th ON interval's bounds follow in closed
    form from the two running sums — no interleaved length matrix needed.
    With the phase ON, the k-th ON sojourn is preceded by k ON and k OFF
    sojourns; with the phase OFF, by k ON and k+1 OFF sojourns.
    """
    clock = np.zeros(flows.size, dtype=np.int64)
    pairs = first_pairs
    while flows.size:
        n_active = flows.size
        on = _geometric(rng, p21, (n_active, pairs), n_slots)
        off = _geometric(rng, p12, (n_active, pairs), n_slots)
        cum_on = np.cumsum(on, axis=1)
        cum_off = np.cumsum(off, axis=1)
        ends = clock[:, None] + cum_on + cum_off
        if start_on:
            ends -= off
        starts = ends - on
        keep = starts < n_slots
        if np.any(keep):
            out_flows.append(np.broadcast_to(flows[:, None], starts.shape)[keep])
            out_starts.append(starts[keep])
            out_ends.append(np.minimum(ends[keep], n_slots))
        # each round is a whole number of ON/OFF pairs, so the phase is
        # unchanged when the next round starts
        clock = clock + cum_on[:, -1] + cum_off[:, -1]
        alive = clock < n_slots
        if not np.all(alive):
            flows = flows[alive]
            clock = clock[alive]
        pairs = _SOJOURN_BATCH // 2


def mmoo_on_intervals(
    params: MMOOParameters,
    n_flows: int,
    n_slots: int,
    rng: np.random.Generator,
    *,
    stationary_start: bool = True,
    initial_on: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ON intervals of ``n_flows`` independent MMOO chains.

    Returns ``(flows, starts, ends)``: flow index, first ON slot, and
    one-past-last ON slot of every ON sojourn intersecting
    ``[0, n_slots)``, with ends clipped to ``n_slots``.  A flow emits
    ``params.peak`` in every slot of each of its intervals.

    ``initial_on`` pins every flow's slot-0 state explicitly (a boolean
    array of length ``n_flows``), overriding ``stationary_start``.  By
    memorylessness the residual first sojourn is geometric given the
    slot-0 state, so conditioning on explicit initial states composes
    exactly with the event-driven sampler — the importance sampler uses
    this to resume a chain mid-path from known per-flow states.
    """
    n_flows = check_int(n_flows, "n_flows", minimum=1)
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    p12, p21 = params.p12, params.p21
    if initial_on is not None:
        if initial_on.shape != (n_flows,):
            raise ValueError(
                f"initial_on must have shape ({n_flows},), got {initial_on.shape}"
            )
        state_on = initial_on.astype(bool)
    elif stationary_start:
        state_on = rng.random(n_flows) < params.on_probability
    else:
        state_on = np.zeros(n_flows, dtype=bool)

    flow_ids = np.arange(n_flows, dtype=np.int64)
    out_flows: list[np.ndarray] = []
    out_starts: list[np.ndarray] = []
    out_ends: list[np.ndarray] = []
    first_pairs = _first_batch_pairs(params, n_slots)
    for start_on in (True, False):
        group = flow_ids[state_on] if start_on else flow_ids[~state_on]
        if group.size:
            _phase_intervals(
                group, start_on, p12, p21, n_slots, rng, first_pairs,
                out_flows, out_starts, out_ends,
            )

    if not out_flows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(out_flows),
        np.concatenate(out_starts),
        np.concatenate(out_ends),
    )


def mmoo_aggregate_arrivals(
    params: MMOOParameters,
    n_flows: int,
    n_slots: int,
    rng: np.random.Generator,
    *,
    stationary_start: bool = True,
) -> np.ndarray:
    """Per-slot arrivals of an aggregate of independent MMOO sources.

    Simulates ``n_flows`` independent two-state chains for ``n_slots``
    slots and returns the aggregate arrivals per slot (shape
    ``(n_slots,)``), built by scattering every flow's ON sojourns into a
    difference array (see :func:`mmoo_on_intervals`).

    Parameters
    ----------
    stationary_start:
        Draw initial states from the stationary distribution (True, the
        default — matches the stationarity assumption of the analysis) or
        start all flows OFF (False).
    """
    _, starts, ends = mmoo_on_intervals(
        params, n_flows, n_slots, rng, stationary_start=stationary_start
    )
    return intervals_to_aggregate(starts, ends, n_slots, params.peak)


def intervals_to_aggregate(
    starts: np.ndarray, ends: np.ndarray, n_slots: int, peak: float
) -> np.ndarray:
    """Scatter ON intervals into a per-slot aggregate arrival array.

    Inverse of nothing in particular — the shared scatter step of
    :func:`mmoo_aggregate_arrivals` and the importance sampler, which
    needs the intervals *and* the aggregate of the same sample path.
    """
    delta = np.zeros(n_slots + 1)
    np.add.at(delta, starts, 1.0)
    np.add.at(delta, np.minimum(ends, n_slots), -1.0)
    return peak * np.cumsum(delta[:n_slots])


def mmoo_per_flow_arrivals(
    params: MMOOParameters,
    n_flows: int,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-flow, per-slot arrivals (shape ``(n_flows, n_slots)``).

    Heavier than :func:`mmoo_aggregate_arrivals`; used when individual flow
    delays matter (e.g. per-flow EDF deadlines in the simulator).
    """
    flows, starts, ends = mmoo_on_intervals(
        params, n_flows, n_slots, rng, stationary_start=True
    )
    delta = np.zeros(n_flows * (n_slots + 1))
    stride = n_slots + 1
    np.add.at(delta, flows * stride + starts, 1.0)
    np.add.at(delta, flows * stride + ends, -1.0)
    states = np.cumsum(delta.reshape(n_flows, stride), axis=1)[:, :n_slots]
    return params.peak * states


def cbr_arrivals(rate: float, n_slots: int) -> np.ndarray:
    """Constant-bit-rate arrivals: ``rate`` per slot, deterministic."""
    check_non_negative(rate, "rate")
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    return np.full(n_slots, float(rate))


def poisson_arrivals(
    mean_per_slot: float,
    unit: float,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Compound-Poisson arrivals: ``Poisson(mean_per_slot) * unit`` per slot.

    A memoryless reference workload for the simulator; not used by the
    paper's examples but handy for wider validation.
    """
    check_positive(mean_per_slot, "mean_per_slot")
    check_positive(unit, "unit")
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    return rng.poisson(mean_per_slot, size=n_slots).astype(float) * unit
