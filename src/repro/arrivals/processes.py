"""Sample-path generators for discrete-time arrival processes.

These feed the simulator (:mod:`repro.simulation`) and the statistical
tests that verify envelope conformance empirically.  All generators are
vectorized with numpy and driven by an explicit :class:`numpy.random.Generator`
for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.mmoo import MMOOParameters
from repro.utils.validation import check_int, check_non_negative, check_positive


def mmoo_aggregate_arrivals(
    params: MMOOParameters,
    n_flows: int,
    n_slots: int,
    rng: np.random.Generator,
    *,
    stationary_start: bool = True,
) -> np.ndarray:
    """Per-slot arrivals of an aggregate of independent MMOO sources.

    Simulates ``n_flows`` independent two-state chains for ``n_slots`` slots
    and returns the aggregate arrivals per slot (shape ``(n_slots,)``).

    The per-flow states are updated vectorized: with ``on`` the boolean
    state vector, each flow flips OFF->ON with probability ``p12`` and
    ON->OFF with probability ``p21``.

    Parameters
    ----------
    stationary_start:
        Draw initial states from the stationary distribution (True, the
        default — matches the stationarity assumption of the analysis) or
        start all flows OFF (False).
    """
    n_flows = check_int(n_flows, "n_flows", minimum=1)
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    if stationary_start:
        on = rng.random(n_flows) < params.on_probability
    else:
        on = np.zeros(n_flows, dtype=bool)
    arrivals = np.empty(n_slots, dtype=float)
    p12, p21 = params.p12, params.p21
    for t in range(n_slots):
        arrivals[t] = params.peak * float(np.count_nonzero(on))
        flips = rng.random(n_flows)
        # OFF flows turn ON w.p. p12; ON flows turn OFF w.p. p21
        turn_on = ~on & (flips < p12)
        turn_off = on & (flips < p21)
        on = (on | turn_on) & ~turn_off
    return arrivals


def mmoo_per_flow_arrivals(
    params: MMOOParameters,
    n_flows: int,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-flow, per-slot arrivals (shape ``(n_flows, n_slots)``).

    Heavier than :func:`mmoo_aggregate_arrivals`; used when individual flow
    delays matter (e.g. per-flow EDF deadlines in the simulator).
    """
    n_flows = check_int(n_flows, "n_flows", minimum=1)
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    on = rng.random(n_flows) < params.on_probability
    out = np.zeros((n_flows, n_slots), dtype=float)
    for t in range(n_slots):
        out[on, t] = params.peak
        flips = rng.random(n_flows)
        turn_on = ~on & (flips < params.p12)
        turn_off = on & (flips < params.p21)
        on = (on | turn_on) & ~turn_off
    return out


def cbr_arrivals(rate: float, n_slots: int) -> np.ndarray:
    """Constant-bit-rate arrivals: ``rate`` per slot, deterministic."""
    check_non_negative(rate, "rate")
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    return np.full(n_slots, float(rate))


def poisson_arrivals(
    mean_per_slot: float,
    unit: float,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Compound-Poisson arrivals: ``Poisson(mean_per_slot) * unit`` per slot.

    A memoryless reference workload for the simulator; not used by the
    paper's examples but handy for wider validation.
    """
    check_positive(mean_per_slot, "mean_per_slot")
    check_positive(unit, "unit")
    n_slots = check_int(n_slots, "n_slots", minimum=1)
    return rng.poisson(mean_per_slot, size=n_slots).astype(float) * unit
