"""Discrete-time Markov-modulated on-off (MMOO) sources (paper Sec. V).

The numerical examples of the paper use a two-state discrete-time Markov
chain (OFF = 1, ON = 2).  In one time slot in the ON state the source emits
a fixed amount ``P``; in the OFF state it emits nothing.  Transition
probabilities: ``p12 = P(OFF -> ON)``, ``p21 = P(ON -> OFF)``; the paper
requires ``p12 + p21 <= 1`` (positively correlated / bursty regime).

The effective bandwidth ``eb(s, t) = (1/(s t)) log E[e^{s A(t)}]`` of such a
source is bounded, uniformly in ``t``, by the log of the spectral radius of
the twisted transition matrix (Chang, *Performance Guarantees in
Communication Networks*, 2000)::

    eb(s) = (1/s) * log( ( p11 + p22 e^{sP}
             + sqrt( (p11 + p22 e^{sP})^2 - 4 (p11 + p22 - 1) e^{sP} ) ) / 2 )

with ``p11 = 1 - p12`` and ``p22 = 1 - p21``.  An aggregate of ``N``
independent such flows then satisfies the EBB model with
``A ~ (1, N * eb(s), s)`` for every ``s > 0`` — the free parameter ``s``
becomes the EBB decay ``alpha`` and is optimized numerically.

Paper parameter set: ``P = 1.5`` kbit, ``p11 = 0.989``, ``p22 = 0.9``
(peak rate 1.5 Mbps, mean rate ~0.149 Mbps at a 1 ms slot).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrivals.ebb import EBB
from repro.utils.numeric import safe_exp
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MMOOParameters:
    """Parameters of a discrete-time two-state on-off Markov source.

    Attributes
    ----------
    peak:
        Data emitted per slot in the ON state (``P``; kbit at a 1 ms slot
        means the peak *rate* in Mbps equals ``peak``).
    p11:
        Probability of remaining OFF (``1 - p12``).
    p22:
        Probability of remaining ON (``1 - p21``).
    """

    peak: float
    p11: float
    p22: float

    def __post_init__(self) -> None:
        check_positive(self.peak, "peak")
        check_in_range(self.p11, 0.0, 1.0, "p11")
        check_in_range(self.p22, 0.0, 1.0, "p22")
        if self.p12 + self.p21 > 1.0 + 1e-12:
            raise ValueError(
                "the paper's model requires p12 + p21 <= 1, got "
                f"p12={self.p12:g}, p21={self.p21:g}"
            )
        if self.p12 + self.p21 <= 0.0:
            raise ValueError("the chain must be able to change state")

    # ------------------------------------------------------------------ #
    # basic chain quantities
    # ------------------------------------------------------------------ #

    @property
    def p12(self) -> float:
        """Transition probability OFF -> ON."""
        return 1.0 - self.p11

    @property
    def p21(self) -> float:
        """Transition probability ON -> OFF."""
        return 1.0 - self.p22

    @property
    def on_probability(self) -> float:
        """Stationary probability of the ON state."""
        return self.p12 / (self.p12 + self.p21)

    @property
    def mean_rate(self) -> float:
        """Long-term average rate (per slot)."""
        return self.peak * self.on_probability

    @property
    def peak_rate(self) -> float:
        """Peak rate (per slot)."""
        return self.peak

    # ------------------------------------------------------------------ #
    # effective bandwidth and the EBB model
    # ------------------------------------------------------------------ #

    def effective_bandwidth(self, s: float) -> float:
        """Effective-bandwidth bound ``eb(s)`` (paper Sec. V display).

        Nondecreasing in ``s``, with ``eb(0+) = mean_rate`` and
        ``eb(inf) = peak``.
        """
        check_positive(s, "s")
        exp_sp = safe_exp(s * self.peak)
        a = self.p11 + self.p22 * exp_sp
        disc = a * a - 4.0 * (self.p11 + self.p22 - 1.0) * exp_sp
        # the discriminant of a real 2x2 stochastic-matrix eigenproblem is
        # nonnegative; clip tiny negatives from roundoff
        disc = max(disc, 0.0)
        spectral_radius = 0.5 * (a + math.sqrt(disc))
        return math.log(spectral_radius) / s

    def log_mgf_bound(self, s: float, t: float) -> float:
        """Upper bound on ``log E[e^{s A(t)}]`` via the effective bandwidth."""
        check_positive(t, "t")
        return s * t * self.effective_bandwidth(s)

    def ebb(self, n_flows: int, s: float) -> EBB:
        """EBB triple of an aggregate of ``n_flows`` independent sources.

        Implements the paper's ``A ~ (1, N * eb(s, t), s)``: the Chernoff
        bound with the effective-bandwidth envelope gives, for every
        interval of length ``tau``::

            P( A > N eb(s) tau + sigma ) <= e^{-s sigma}

        i.e. EBB with prefactor 1, rate ``N eb(s)``, and decay ``s``.
        """
        if n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        check_positive(s, "s")
        return EBB(1.0, n_flows * self.effective_bandwidth(s), s)

    # ------------------------------------------------------------------ #
    # paper defaults
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_defaults(cls) -> "MMOOParameters":
        """The exact source used in Section V of the paper.

        ``P = 1.5`` kbit per 1 ms slot, ``p11 = 0.989``, ``p22 = 0.9``:
        peak rate 1.5 Mbps, mean rate ~0.1486 Mbps (the paper rounds to
        0.15 Mbps).
        """
        return cls(peak=1.5, p11=0.989, p22=0.9)

    def __repr__(self) -> str:
        return (
            f"MMOOParameters(peak={self.peak:g}, p11={self.p11:g}, "
            f"p22={self.p22:g})"
        )
