"""Exponentially Bounded Burstiness (EBB) arrival processes (paper Eq. (27)).

An arrival process ``A`` is EBB with parameters ``(M, rho, alpha)`` —
written ``A ~ (M, rho, alpha)`` — if for all ``s <= t`` and ``sigma >= 0``::

    P( A(s, t) > rho (t - s) + sigma ) <= M exp(-alpha sigma)

with ``M >= 1`` and ``rho, alpha > 0`` (Yaron & Sidi 1993).  The model
captures Markov-modulated processes; Section V instantiates it from the
effective bandwidth of aggregated on-off sources.

Key construction (paper Sec. IV): in **discrete time**, an EBB process has
a statistical *sample-path* envelope

    ``G(t) = (rho + gamma) t``,
    ``eps(sigma) = M exp(-alpha sigma) / (1 - exp(-alpha gamma))``

for any ``gamma > 0`` — obtained with the union bound over the slack
``gamma t`` accumulated at each time step (a geometric sum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.statistical import (
    ExponentialBound,
    StatisticalEnvelope,
    combine_bounds,
)
from repro.utils.numeric import safe_exp
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EBB:
    """An EBB arrival process ``A ~ (M, rho, alpha)`` (paper Eq. (27)).

    Attributes
    ----------
    prefactor:
        ``M >= 1``.
    rate:
        ``rho > 0`` — the long-term rate of the interval bound.
    decay:
        ``alpha > 0`` — the exponential decay of burst excess.
    """

    prefactor: float
    rate: float
    decay: float

    def __post_init__(self) -> None:
        if self.prefactor < 1.0:
            raise ValueError(
                f"EBB prefactor M must be >= 1, got {self.prefactor} "
                "(Eq. (27) requires M >= 1)"
            )
        check_positive(self.rate, "rate")
        check_positive(self.decay, "decay")

    def interval_bound(self, length: float, sigma: float) -> float:
        """The Eq. (27) bound ``P(A(s,t) > rho (t-s) + sigma)`` for
        ``t - s = length`` (clipped to [0, 1])."""
        if length < 0:
            raise ValueError("interval length must be >= 0")
        return min(1.0, self.prefactor * safe_exp(-self.decay * sigma))

    def sample_path_envelope(self, gamma: float) -> StatisticalEnvelope:
        """Discrete-time statistical sample-path envelope (paper Sec. IV).

        ``G(t) = (rho + gamma) t`` with bounding function
        ``eps(sigma) = M e^{-alpha sigma} / (1 - e^{-alpha gamma})``.
        """
        check_positive(gamma, "gamma")
        bound = self.sample_path_bound(gamma)
        curve = PiecewiseLinear.constant_rate(self.rate + gamma)
        return StatisticalEnvelope(curve, bound)

    def sample_path_bound(self, gamma: float) -> ExponentialBound:
        """Just the bounding function of :meth:`sample_path_envelope`."""
        check_positive(gamma, "gamma")
        # -expm1(-x) = 1 - e^{-x}, accurate for tiny x
        denominator = -math.expm1(-self.decay * gamma)
        if denominator <= 0.0:
            raise ValueError(
                f"decay * gamma = {self.decay * gamma:g} underflows; "
                "choose a larger gamma"
            )
        return ExponentialBound(self.prefactor / denominator, self.decay)

    def scaled(self, n: int) -> "EBB":
        """EBB parameters of ``n`` homogeneous *independent* copies when the
        underlying bound comes from a common effective bandwidth: the rate
        scales, the decay is unchanged (paper Sec. V:
        ``A ~ (1, N eb(s, t), s)``)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return EBB(self.prefactor, self.rate * n, self.decay)

    def __repr__(self) -> str:
        return f"EBB(M={self.prefactor:g}, rho={self.rate:g}, alpha={self.decay:g})"


def aggregate_ebb(processes: Sequence[EBB]) -> EBB:
    """EBB parameters of a superposition of (possibly dependent) EBB flows.

    Uses the union bound with the optimal split of Eq. (33): rates add, and
    the bounding functions combine into a single exponential.  No
    independence is required — matching the paper, which "does not assume
    independence of cross traffic and through traffic".
    """
    if not processes:
        raise ValueError("need at least one EBB process")
    if len(processes) == 1:
        return processes[0]
    total_rate = sum(p.rate for p in processes)
    combined = combine_bounds(
        [ExponentialBound(p.prefactor, p.decay) for p in processes]
    )
    # the union-bound combination can yield a prefactor below 1 only if the
    # inputs were individually sub-probability bounds; clip to stay a valid
    # EBB triple
    return EBB(max(1.0, combined.prefactor), total_rate, combined.decay)
