"""Greedy traffic shapers (leaky-bucket regulators).

The paper's related-work discussion contrasts its analysis with
approaches that *re-shape* traffic at each node (Sivaraman & Chiussi's
EDF analysis) — shaping buys analytical simplicity at the cost of a
non-work-conserving system.  This module supplies the shaping substrate
so both worlds can be exercised:

* :func:`shape_to_leaky_bucket` — the greedy (maximal) regulator: delays
  arriving traffic as little as possible subject to the output conforming
  to the envelope ``E(t) = rate * t + burst``.  The classical result: the
  greedy shaper for a subadditive envelope has service curve ``E`` itself,
  so shaping delay is bounded and conformance is exact.
* :class:`ShapedSource` — wraps per-slot arrival arrays with a shaper,
  for feeding pre-conditioned traffic into the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.envelopes import DeterministicEnvelope, leaky_bucket
from repro.utils.validation import check_non_negative, check_positive


def shape_to_leaky_bucket(
    increments: np.ndarray | list[float],
    rate: float,
    burst: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy leaky-bucket regulator on a per-slot arrival array.

    Returns ``(output, backlog)``: the shaped per-slot departures and the
    per-slot shaper backlog.  In each slot the shaper releases as much
    queued + fresh traffic as the bucket allows: the bucket holds up to
    ``burst`` tokens and refills at ``rate`` per slot (token count
    evaluated *before* the slot's release).

    The output conforms to the envelope ``rate * t + burst`` over every
    interval (verified property-style in the tests), and no traffic is
    delayed unnecessarily (the regulator is maximal/greedy).
    """
    check_positive(rate, "rate")
    check_non_negative(burst, "burst")
    arrivals = np.asarray(increments, dtype=float)
    if np.any(arrivals < 0):
        raise ValueError("arrival increments must be nonnegative")

    output = np.zeros_like(arrivals)
    backlog_track = np.zeros_like(arrivals)
    tokens = burst  # the bucket starts full
    backlog = 0.0
    for t in range(len(arrivals)):
        tokens = min(tokens + rate, burst + rate)
        available = backlog + arrivals[t]
        released = min(available, tokens)
        output[t] = released
        tokens -= released
        backlog = available - released
        backlog_track[t] = backlog
    return output, backlog_track


@dataclass(frozen=True)
class ShapedSource:
    """A leaky-bucket-shaped view of an arrival array.

    Attributes
    ----------
    rate, burst:
        The shaping envelope parameters.
    """

    rate: float
    burst: float

    def envelope(self) -> DeterministicEnvelope:
        """The deterministic envelope the shaped output conforms to."""
        return leaky_bucket(self.rate, self.burst)

    def shape(self, increments: np.ndarray | list[float]) -> np.ndarray:
        """Shaped per-slot departures for ``increments``."""
        output, _ = shape_to_leaky_bucket(increments, self.rate, self.burst)
        return output

    def shaping_delay_bound(self, input_envelope: DeterministicEnvelope) -> float:
        """Worst-case delay added by the shaper for conformant-to-
        ``input_envelope`` traffic.

        The greedy shaper offers its own envelope as a service curve, so
        the delay bound is the horizontal deviation between the input
        envelope and the shaping curve.
        """
        from repro.algebra.minplus import horizontal_deviation

        return horizontal_deviation(
            input_envelope.curve, self.envelope().curve
        )
