"""Statistical sample-path envelopes and bounding functions (paper Eq. (2)).

A statistical sample-path envelope ``G`` with bounding function
``eps(sigma)`` satisfies, for all ``t, sigma >= 0``::

    P( sup_{0<=s<=t} { A(s,t) - G(t-s) } > sigma ) <= eps(sigma)

The workhorse bounding function is the exponential
``eps(sigma) = M exp(-alpha sigma)`` (:class:`ExponentialBound`): it is
closed under the optimal union-bound combination of the paper's Eq. (33)
(see :func:`combine_bounds`), which is what makes the multi-node analysis
of Section IV tractable in closed form.

An exponential bound is a *valid* probability bound for every real
``sigma`` — for ``sigma < (ln M)/alpha`` it simply exceeds 1 — which is why
the infimum in Eq. (33) may be taken over unconstrained splits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.algebra.functions import PiecewiseLinear
from repro.utils.numeric import safe_exp, weighted_union_bound_constant
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class ExponentialBound:
    """Bounding function ``eps(sigma) = M exp(-alpha sigma)``.

    Parameters
    ----------
    prefactor:
        ``M >= 0``.  ``M = 0`` encodes the deterministic (never violated)
        case.
    decay:
        ``alpha > 0``, the exponential decay rate.
    """

    prefactor: float
    decay: float

    def __post_init__(self) -> None:
        if self.prefactor < 0:
            raise ValueError(f"prefactor must be >= 0, got {self.prefactor}")
        check_positive(self.decay, "decay")

    def __call__(self, sigma: float) -> float:
        """Raw bound value (may exceed 1; see :meth:`probability`).

        Evaluated in log space so that deeply negative ``sigma`` returns
        ``inf`` instead of overflowing ``math.exp``.
        """
        if self.prefactor == 0.0:
            return 0.0
        exponent = math.log(self.prefactor) - self.decay * sigma
        return safe_exp(exponent)

    def probability(self, sigma: float) -> float:
        """The bound clipped to a valid probability in [0, 1].

        For ``sigma`` below the prefactor knee ``ln(M)/alpha`` the raw
        bound exceeds 1 and this clips to exactly 1.0 — including deeply
        negative ``sigma`` where the raw value overflows to ``inf``.
        """
        if self.prefactor == 0.0:
            return 0.0
        if math.log(self.prefactor) - self.decay * sigma >= 0.0:
            return 1.0
        return self(sigma)

    def inverse(self, epsilon: float) -> float:
        """Smallest ``sigma >= 0`` with ``eps(sigma) <= epsilon``.

        This is the violation threshold used when a target violation
        probability is prescribed (e.g. ``1e-9`` in the paper's examples).
        A deterministic bound (``M = 0``) returns 0 for *any* epsilon,
        including 0; otherwise ``epsilon = 0`` has no finite threshold
        and raises.  Computed as ``(ln M - ln eps)/alpha`` so extreme
        epsilon (denormals, huge prefactors) cannot overflow the ratio
        ``M/eps``.
        """
        check_probability(epsilon, "epsilon")
        if self.prefactor == 0.0:
            return 0.0
        if epsilon == 0.0:
            raise ValueError("epsilon must be > 0 for a finite threshold")
        return max(
            0.0, (math.log(self.prefactor) - math.log(epsilon)) / self.decay
        )

    def is_deterministic(self) -> bool:
        """True when the bound is identically zero (never violated)."""
        return self.prefactor == 0.0

    def integral_is_finite(self) -> bool:
        """Whether ``int_0^inf eps(x) dx < inf`` — the prerequisite for the
        statistical network service curve of [6] used in Eq. (30)."""
        return True  # exponentials always integrate finitely


def combine_bounds(bounds: Sequence[ExponentialBound]) -> ExponentialBound:
    """Optimal union-bound combination (paper Eq. (33)).

    Returns the exponential bound ``eps`` with
    ``eps(sigma) = inf { sum_j eps_j(sigma_j) : sum_j sigma_j = sigma }``.
    Deterministic members (prefactor 0) are dropped — they never contribute
    a violation.  If all members are deterministic the result is
    deterministic (represented with prefactor 0 and decay 1).
    """
    live = [b for b in bounds if not b.is_deterministic()]
    if not live:
        return ExponentialBound(0.0, 1.0)
    if len(live) == 1:
        return live[0]
    prefactor, decay = weighted_union_bound_constant(
        [b.prefactor for b in live], [b.decay for b in live]
    )
    return ExponentialBound(prefactor, decay)


class StatisticalEnvelope:
    """A statistical sample-path envelope ``(G, eps)`` (paper Eq. (2)).

    Parameters
    ----------
    curve:
        The envelope function ``G`` (nondecreasing, ``G(t) = 0`` for
        ``t <= 0`` by convention).
    bound:
        The bounding function ``eps(sigma)`` — an
        :class:`ExponentialBound` or any callable.  Exponential bounds
        unlock the closed-form combinations used by the end-to-end
        analysis.
    """

    __slots__ = ("_curve", "_bound")

    def __init__(
        self,
        curve: PiecewiseLinear,
        bound: ExponentialBound | Callable[[float], float],
    ) -> None:
        if not curve.is_nondecreasing():
            raise ValueError("a statistical envelope must be nondecreasing")
        if curve.has_cutoff:
            raise ValueError("a statistical envelope must be finite")
        self._curve = curve
        self._bound = bound

    @property
    def curve(self) -> PiecewiseLinear:
        """The envelope function ``G``."""
        return self._curve

    @property
    def bound(self) -> ExponentialBound | Callable[[float], float]:
        """The bounding function ``eps``."""
        return self._bound

    @property
    def rate(self) -> float:
        """Long-term envelope rate."""
        return self._curve.final_slope

    def __call__(self, t: float) -> float:
        """Evaluate ``G``; 0 for ``t <= 0``."""
        if t <= 0:
            return 0.0
        return self._curve(t)

    def epsilon(self, sigma: float) -> float:
        """Violation-probability bound at slack ``sigma`` (clipped to [0,1])."""
        if isinstance(self._bound, ExponentialBound):
            return self._bound.probability(sigma)
        return min(1.0, max(0.0, self._bound(sigma)))

    def exponential_bound(self) -> ExponentialBound:
        """The bound as an :class:`ExponentialBound`, or raise."""
        if not isinstance(self._bound, ExponentialBound):
            raise TypeError(
                "this envelope does not carry an exponential bounding function"
            )
        return self._bound

    @classmethod
    def deterministic(cls, curve: PiecewiseLinear) -> "StatisticalEnvelope":
        """Embed a deterministic envelope (eps = 0; paper Sec. II-A)."""
        return cls(curve, ExponentialBound(0.0, 1.0))

    def __repr__(self) -> str:
        return f"StatisticalEnvelope(rate={self.rate:g}, bound={self._bound!r})"


# alias matching common network-calculus terminology
BoundingFunction = ExponentialBound
