"""Traffic models: deterministic and statistical envelopes, EBB, MMOO.

This package implements Section II-A of the paper plus the concrete traffic
model of the numerical examples (Section V):

* :class:`DeterministicEnvelope` — sample-path envelopes ``E`` with
  ``sup_s A(s,t) - E(t-s) <= 0`` (paper Eq. (1));
* :class:`StatisticalEnvelope` — envelopes ``G`` with bounding function
  ``eps(sigma)`` (paper Eq. (2));
* :class:`EBB` — exponentially-bounded-burstiness arrival processes
  ``A ~ (M, rho, alpha)`` (paper Eq. (27)) and their algebra;
* :class:`MMOOParameters` — the discrete-time Markov-modulated on-off
  source of Section V with its effective-bandwidth envelope;
* sample-path generators used by the simulator (:mod:`repro.simulation`).
"""

from repro.arrivals.envelopes import (
    DeterministicEnvelope,
    leaky_bucket,
    multi_leaky_bucket,
    smallest_envelope,
)
from repro.arrivals.statistical import (
    BoundingFunction,
    ExponentialBound,
    StatisticalEnvelope,
    combine_bounds,
)
from repro.arrivals.ebb import EBB, aggregate_ebb
from repro.arrivals.markov import MarkovModulatedSource
from repro.arrivals.shaper import ShapedSource, shape_to_leaky_bucket
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import (
    cbr_arrivals,
    mmoo_aggregate_arrivals,
    mmoo_per_flow_arrivals,
    poisson_arrivals,
)

__all__ = [
    "DeterministicEnvelope",
    "leaky_bucket",
    "multi_leaky_bucket",
    "smallest_envelope",
    "BoundingFunction",
    "ExponentialBound",
    "StatisticalEnvelope",
    "combine_bounds",
    "EBB",
    "aggregate_ebb",
    "MMOOParameters",
    "MarkovModulatedSource",
    "ShapedSource",
    "shape_to_leaky_bucket",
    "cbr_arrivals",
    "mmoo_aggregate_arrivals",
    "mmoo_per_flow_arrivals",
    "poisson_arrivals",
]
