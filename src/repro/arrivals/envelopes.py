"""Deterministic sample-path envelopes (paper Eq. (1)).

A deterministic envelope ``E`` upper-bounds the arrivals of a flow over
every interval: ``A(s, t) <= E(t - s)`` for all ``s <= t``.  The canonical
example is the leaky bucket ``E(t) = R t + B``.

Besides the envelope wrapper itself this module provides
:func:`smallest_envelope`, which computes the minimal (subadditive)
envelope of a recorded arrival sample path — used by the tests to verify
that generated traffic indeed conforms to its claimed envelope, and by
Theorem 2's necessity construction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algebra.functions import PiecewiseLinear
from repro.algebra.operations import pointwise_min
from repro.utils.validation import check_non_negative


class DeterministicEnvelope:
    """A deterministic sample-path envelope ``E`` (paper Eq. (1)).

    Wraps a nondecreasing :class:`PiecewiseLinear` curve and adds the
    envelope-specific operations: conformance checking of sample paths,
    aggregation, and concavity queries (Theorem 2's tightness requires
    concave envelopes).

    By convention ``E(t) = 0`` for ``t <= 0`` and envelopes are evaluated
    for ``t > 0``.
    """

    __slots__ = ("_curve",)

    def __init__(self, curve: PiecewiseLinear) -> None:
        if not curve.is_nondecreasing():
            raise ValueError("an envelope must be nondecreasing")
        if curve.has_cutoff:
            raise ValueError("an envelope must be finite for all t")
        self._curve = curve

    @property
    def curve(self) -> PiecewiseLinear:
        """The underlying piecewise-linear curve."""
        return self._curve

    @property
    def rate(self) -> float:
        """Long-term rate (the final slope of the curve)."""
        return self._curve.final_slope

    @property
    def burst(self) -> float:
        """Instantaneous burst allowance ``E(0+)``."""
        return self._curve.ys[0]

    def __call__(self, t: float) -> float:
        """Evaluate the envelope; 0 for ``t <= 0`` (paper convention)."""
        if t <= 0:
            return 0.0
        return self._curve(t)

    def is_concave(self) -> bool:
        """Concavity of the curve on ``t > 0`` (needed for Theorem 2)."""
        return self._curve.is_concave()

    def conforms(self, increments: Sequence[float], *, tol: float = 1e-9) -> bool:
        """Check that a discrete-time sample path satisfies Eq. (1).

        ``increments[i]`` is the traffic arriving in slot ``i``; the check is
        ``A(s, t) <= E(t - s)`` for all ``0 <= s < t <= len(increments)``.
        """
        arr = np.asarray(increments, dtype=float)
        if np.any(arr < -tol):
            raise ValueError("arrival increments must be nonnegative")
        cum = np.concatenate([[0.0], np.cumsum(arr)])
        n = len(cum)
        for width in range(1, n):
            window = cum[width:] - cum[:-width]
            if float(window.max(initial=0.0)) > self(width) + tol:
                return False
        return True

    def worst_violation(self, increments: Sequence[float]) -> float:
        """Largest ``A(s,t) - E(t-s)`` over all intervals (<= 0 if conformant)."""
        arr = np.asarray(increments, dtype=float)
        cum = np.concatenate([[0.0], np.cumsum(arr)])
        n = len(cum)
        worst = -math.inf
        for width in range(1, n):
            window = cum[width:] - cum[:-width]
            worst = max(worst, float(window.max(initial=-math.inf)) - self(width))
        return worst

    def aggregate(self, other: "DeterministicEnvelope") -> "DeterministicEnvelope":
        """Envelope of the superposition of two flows (pointwise sum)."""
        from repro.algebra.operations import pointwise_add

        return DeterministicEnvelope(pointwise_add(self._curve, other.curve))

    def scale(self, n: int) -> "DeterministicEnvelope":
        """Envelope of ``n`` homogeneous flows (vertical scaling)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return DeterministicEnvelope(self._curve.scale(float(n)))

    def __repr__(self) -> str:
        return f"DeterministicEnvelope({self._curve!r})"


def leaky_bucket(rate: float, burst: float) -> DeterministicEnvelope:
    """Leaky-bucket envelope ``E(t) = rate * t + burst`` for ``t > 0``."""
    check_non_negative(rate, "rate")
    check_non_negative(burst, "burst")
    return DeterministicEnvelope(PiecewiseLinear.token_bucket(rate, burst))


def multi_leaky_bucket(
    buckets: Sequence[tuple[float, float]]
) -> DeterministicEnvelope:
    """Concave envelope ``min_i (rate_i * t + burst_i)`` from several buckets.

    The minimum of affine functions is concave, so the result always meets
    Theorem 2's tightness hypothesis.
    """
    if not buckets:
        raise ValueError("need at least one (rate, burst) pair")
    curve: PiecewiseLinear | None = None
    for rate, burst in buckets:
        check_non_negative(rate, "rate")
        check_non_negative(burst, "burst")
        piece = PiecewiseLinear.token_bucket(rate, burst)
        curve = piece if curve is None else pointwise_min(curve, piece)
    assert curve is not None
    return DeterministicEnvelope(curve)


def smallest_envelope(increments: Sequence[float]) -> list[float]:
    """Minimal envelope of a discrete sample path: ``E[k] = max_s A(s, s+k)``.

    Returns ``E[0..n]`` with ``E[0] = 0``.  The result is subadditive (the
    paper's remark after Theorem 2: minimal envelopes are subadditive and
    hence well approximated by concave functions).
    """
    arr = np.asarray(increments, dtype=float)
    if np.any(arr < 0):
        raise ValueError("arrival increments must be nonnegative")
    cum = np.concatenate([[0.0], np.cumsum(arr)])
    n = len(arr)
    env = [0.0]
    for width in range(1, n + 1):
        window = cum[width:] - cum[:-width]
        env.append(float(window.max(initial=0.0)))
    return env
