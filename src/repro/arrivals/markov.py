"""General discrete-time Markov-modulated fluid sources.

Generalizes the two-state on-off source of Section V to an arbitrary
finite-state modulating chain: in one slot in state ``i`` the source
emits ``rates[i]``.  The effective-bandwidth machinery carries over
(Chang 2000): with transition matrix ``P`` and the twisted matrix
``P(s) = P @ diag(e^{s r_j})``,

    ``eb(s) = (1/s) * log spectral_radius(P(s))``

upper-bounds ``(1/(s t)) log E[e^{s A(t)}]`` uniformly in ``t`` whenever
the chain's MGF is super-multiplicative — guaranteed here for reversible
chains and verified empirically in the tests for the bursty (positively
correlated) regimes the paper considers.  An aggregate of ``N``
independent sources is then EBB with ``A ~ (1, N eb(s), s)``.

The two-state closed form of :class:`repro.arrivals.mmoo.MMOOParameters`
is recovered exactly (tested), making this module a strict superset used
for richer workloads (e.g. multi-rate video-like sources).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.arrivals.ebb import EBB
from repro.utils.validation import check_int, check_positive


class MarkovModulatedSource:
    """A discrete-time Markov-modulated fluid source.

    Parameters
    ----------
    transition:
        Row-stochastic transition matrix ``P`` (shape ``(k, k)``) of the
        modulating chain; must be irreducible for a unique stationary
        distribution.
    rates:
        Emission per slot in each state (length ``k``, all >= 0, at
        least one > 0).
    """

    def __init__(
        self, transition: Sequence[Sequence[float]], rates: Sequence[float]
    ) -> None:
        p = np.asarray(transition, dtype=float)
        r = np.asarray(rates, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ValueError(f"transition matrix must be square, got {p.shape}")
        if p.shape[0] != r.shape[0]:
            raise ValueError(
                f"{p.shape[0]} states but {r.shape[0]} emission rates"
            )
        if np.any(p < -1e-12) or np.any(p > 1 + 1e-12):
            raise ValueError("transition probabilities must lie in [0, 1]")
        if not np.allclose(p.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition matrix rows must sum to 1")
        if np.any(r < 0):
            raise ValueError("emission rates must be >= 0")
        if not np.any(r > 0):
            raise ValueError("at least one state must emit traffic")
        self._p = np.clip(p, 0.0, 1.0)
        self._rates = r
        self._stationary = self._compute_stationary()

    # ------------------------------------------------------------------ #
    # chain quantities
    # ------------------------------------------------------------------ #

    def _compute_stationary(self) -> np.ndarray:
        """Stationary distribution via the eigenvector of ``P^T`` at 1."""
        values, vectors = np.linalg.eig(self._p.T)
        index = int(np.argmin(np.abs(values - 1.0)))
        if abs(values[index] - 1.0) > 1e-8:
            raise ValueError("transition matrix has no eigenvalue 1")
        pi = np.real(vectors[:, index])
        pi = np.abs(pi)
        total = pi.sum()
        if total <= 0:
            raise ValueError("failed to compute a stationary distribution")
        return pi / total

    @property
    def n_states(self) -> int:
        """Number of modulating states."""
        return self._p.shape[0]

    @property
    def transition(self) -> np.ndarray:
        """The transition matrix (copy)."""
        return self._p.copy()

    @property
    def rates(self) -> np.ndarray:
        """Per-state emissions (copy)."""
        return self._rates.copy()

    @property
    def stationary(self) -> np.ndarray:
        """Stationary distribution of the modulating chain (copy)."""
        return self._stationary.copy()

    @property
    def mean_rate(self) -> float:
        """Long-term average emission per slot."""
        return float(self._stationary @ self._rates)

    @property
    def peak_rate(self) -> float:
        """Largest per-slot emission."""
        return float(self._rates.max())

    # ------------------------------------------------------------------ #
    # effective bandwidth and EBB
    # ------------------------------------------------------------------ #

    def effective_bandwidth(self, s: float) -> float:
        """``eb(s) = log(spectral radius of P diag(e^{s r}))/s``.

        Nondecreasing in ``s`` with limits ``mean_rate`` (s -> 0) and
        ``peak_rate`` (s -> inf).
        """
        check_positive(s, "s")
        # scale by exp(s r_max) to avoid overflow for large s
        shift = float(self._rates.max())
        twisted = self._p * np.exp(s * (self._rates - shift))[np.newaxis, :]
        radius = float(np.max(np.abs(np.linalg.eigvals(twisted))))
        return shift + math.log(radius) / s

    def ebb(self, n_flows: int, s: float) -> EBB:
        """EBB triple of ``n_flows`` independent copies: ``(1, N eb(s), s)``."""
        n_flows = check_int(n_flows, "n_flows", minimum=1)
        return EBB(1.0, n_flows * self.effective_bandwidth(s), s)

    # ------------------------------------------------------------------ #
    # sample paths
    # ------------------------------------------------------------------ #

    def aggregate_arrivals(
        self,
        n_flows: int,
        n_slots: int,
        rng: np.random.Generator,
        *,
        stationary_start: bool = True,
    ) -> np.ndarray:
        """Per-slot aggregate arrivals of ``n_flows`` independent sources.

        States are updated vectorized: one inverse-CDF draw per flow per
        slot against the cumulative transition rows.
        """
        n_flows = check_int(n_flows, "n_flows", minimum=1)
        n_slots = check_int(n_slots, "n_slots", minimum=1)
        cumulative = np.cumsum(self._p, axis=1)
        if stationary_start:
            states = rng.choice(
                self.n_states, size=n_flows, p=self._stationary
            )
        else:
            states = np.zeros(n_flows, dtype=int)
        arrivals = np.empty(n_slots, dtype=float)
        for t in range(n_slots):
            arrivals[t] = float(self._rates[states].sum())
            draws = rng.random(n_flows)
            # vectorized inverse-CDF step per flow
            states = (
                draws[:, np.newaxis] > cumulative[states]
            ).sum(axis=1)
        return arrivals

    @classmethod
    def on_off(cls, peak: float, p11: float, p22: float) -> "MarkovModulatedSource":
        """The paper's two-state on-off source as a Markov source."""
        return cls(
            [[p11, 1.0 - p11], [1.0 - p22, p22]],
            [0.0, peak],
        )

    def __repr__(self) -> str:
        return (
            f"MarkovModulatedSource(states={self.n_states}, "
            f"mean={self.mean_rate:g}, peak={self.peak_rate:g})"
        )
