"""Exact pointwise operations on piecewise-linear curves.

Pointwise minimum, maximum and sum of two :class:`PiecewiseLinear` curves
are again piecewise linear; the breakpoints of the result are the union of
the operands' breakpoints, their cutoffs, and the crossing points of the
operands inside each interval (for min/max).  All three operations handle
curves with finite cutoffs (``+inf`` tails):

* ``f + g``  is ``+inf`` past ``min(cutoff_f, cutoff_g)``;
* ``min(f, g)`` is ``+inf`` only past ``max(cutoff_f, cutoff_g)``;
* ``max(f, g)`` is ``+inf`` past ``min(cutoff_f, cutoff_g)``.
"""

from __future__ import annotations

import math

from repro.algebra.functions import PiecewiseLinear, _merge_close

_EPS = 1e-12


def _tail_slope(curve: PiecewiseLinear, t: float) -> float:
    """Slope of ``curve`` at ``t`` ignoring the cutoff (finite everywhere)."""
    xs = curve.xs
    if t >= xs[-1] - _EPS:
        return curve.final_slope
    return curve.slope_at(t)


def _grid(f: PiecewiseLinear, g: PiecewiseLinear, horizon: float) -> list[float]:
    """Merged breakpoints of both curves (plus finite cutoffs) up to horizon."""
    points = [x for x in f.xs if x <= horizon] + [x for x in g.xs if x <= horizon]
    for c in (f.cutoff, g.cutoff):
        if math.isfinite(c) and c <= horizon:
            points.append(c)
    points.append(0.0)
    points.append(horizon)
    return _merge_close(points)


def _crossings(
    f: PiecewiseLinear, g: PiecewiseLinear, grid: list[float]
) -> list[float]:
    """Crossing abscissae of f and g strictly inside each grid interval."""
    found: list[float] = []
    for a, b in zip(grid, grid[1:]):
        fa, ga = f(a), g(a)
        fb, gb = f(b), g(b)
        if not all(map(math.isfinite, (fa, ga, fb, gb))):
            continue
        da, db = fa - ga, fb - gb
        if (da > _EPS and db < -_EPS) or (da < -_EPS and db > _EPS):
            found.append(a + (b - a) * abs(da) / (abs(da) + abs(db)))
    return found


def _tail_crossing(
    f: PiecewiseLinear, g: PiecewiseLinear, start: float
) -> float | None:
    """Crossing of the affine tails of f and g past ``start`` (or None)."""
    sf, sg = _tail_slope(f, start), _tail_slope(g, start)
    if abs(sf - sg) <= _EPS:
        return None
    fv = f(start) if math.isfinite(f(start)) else None
    gv = g(start) if math.isfinite(g(start)) else None
    if fv is None or gv is None:
        return None
    u = (gv - fv) / (sf - sg)
    if u > _EPS:
        return start + u
    return None


def _combine(
    f: PiecewiseLinear,
    g: PiecewiseLinear,
    op: str,
) -> PiecewiseLinear:
    if op == "add":
        cutoff = min(f.cutoff, g.cutoff)
    elif op == "min":
        cutoff = max(f.cutoff, g.cutoff)
        # the minimum has an (unrepresentable) upward jump where the curve
        # with the earlier cutoff was strictly below the other one
        first, second = (f, g) if f.cutoff <= g.cutoff else (g, f)
        if first.cutoff < second.cutoff - _EPS:
            at_cut = first.value_at_cutoff()
            other = second(first.cutoff)
            if math.isfinite(other) and at_cut < other - _EPS:
                raise ValueError(
                    "pointwise_min result jumps upward at the cutoff "
                    f"t={first.cutoff:g} (from {at_cut:g} to {other:g}); "
                    "piecewise-linear curves cannot represent this"
                )
    elif op == "max":
        cutoff = min(f.cutoff, g.cutoff)
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown op {op!r}")

    horizon = max(f.xs[-1], g.xs[-1], 1.0)
    for c in (f.cutoff, g.cutoff):
        if math.isfinite(c):
            horizon = max(horizon, c)
    if math.isfinite(cutoff):
        horizon = min(horizon, cutoff)

    grid = _grid(f, g, horizon)
    if op in ("min", "max"):
        grid = _merge_close(grid + _crossings(f, g, grid))
        tail = _tail_crossing(f, g, grid[-1])
        if tail is not None and (not math.isfinite(cutoff) or tail <= cutoff):
            grid = _merge_close(grid + [tail])

    def combine_values(a: float, b: float) -> float:
        if op == "add":
            return a + b
        if op == "min":
            return min(a, b)
        return max(a, b)

    ys = [combine_values(f(t), g(t)) for t in grid]
    if any(not math.isfinite(y) for y in ys):  # pragma: no cover - guarded above
        raise AssertionError("internal error: non-finite value inside cutoff region")

    end = grid[-1]
    sf, sg = _tail_slope(f, end), _tail_slope(g, end)
    f_end, g_end = f(end), g(end)
    if op == "add":
        final_slope = sf + sg
    else:
        prefer_f: bool
        if abs(f_end - g_end) <= _EPS * max(1.0, abs(f_end)):
            prefer_f = (sf <= sg) if op == "min" else (sf >= sg)
        else:
            prefer_f = (f_end < g_end) if op == "min" else (f_end > g_end)
        if op == "min" and f.cutoff < end + _EPS <= g.cutoff:
            prefer_f = False
        if op == "min" and g.cutoff < end + _EPS <= f.cutoff:
            prefer_f = True
        final_slope = sf if prefer_f else sg

    return PiecewiseLinear(grid, ys, final_slope, cutoff)


def pointwise_add(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact pointwise sum ``t -> f(t) + g(t)``."""
    return _combine(f, g, "add")


def pointwise_min(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact pointwise minimum ``t -> min(f(t), g(t))``."""
    return _combine(f, g, "min")


def pointwise_max(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact pointwise maximum ``t -> max(f(t), g(t))``."""
    return _combine(f, g, "max")


def pointwise_sub(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact pointwise difference ``t -> f(t) - g(t)``.

    Requires both operands finite (no cutoffs); the result may take
    negative values (clip with :meth:`PiecewiseLinear.clip_nonnegative`
    when the ``[.]_+`` operator is intended).
    """
    if f.has_cutoff or g.has_cutoff:
        raise ValueError("pointwise_sub requires curves without cutoffs")
    grid = _grid(f, g, max(f.xs[-1], g.xs[-1], 1.0))
    ys = [f(t) - g(t) for t in grid]
    final_slope = _tail_slope(f, grid[-1]) - _tail_slope(g, grid[-1])
    return PiecewiseLinear(grid, ys, final_slope)
