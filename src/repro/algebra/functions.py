"""Piecewise-linear functions on the nonnegative real line.

The curve families of the (deterministic and stochastic) network calculus —
leaky-bucket envelopes, constant-rate links, rate-latency service curves,
pure-delay elements — are all piecewise linear.  :class:`PiecewiseLinear`
represents such a function exactly:

* a sorted tuple of breakpoints ``(x_i, y_i)`` with ``x_0 = 0``, linear
  interpolation between consecutive breakpoints,
* a ``final_slope`` applying to the right of the last breakpoint,
* an optional finite ``cutoff``: the function equals ``+inf`` strictly
  beyond the cutoff.  This encodes the pure-delay element
  ``delta_d(t) = 0 if t <= d else +inf`` (paper Eq. (4)) and, more
  generally, service curves of systems that deliver all traffic within a
  deadline.

By network-calculus convention the functions are extended by ``0`` for
``t < 0``.  Instances are immutable; all operations return new objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """One linear piece of a piecewise-linear function.

    ``length`` may be ``math.inf`` for the final piece.
    """

    length: float
    slope: float


def _merge_close(values: Iterable[float], tol: float = _EPS) -> list[float]:
    """Sort values and merge those closer than ``tol`` (relative)."""
    ordered = sorted(values)
    merged: list[float] = []
    for v in ordered:
        if merged and abs(v - merged[-1]) <= tol * max(1.0, abs(v)):
            continue
        merged.append(v)
    return merged


class PiecewiseLinear:
    """An exact piecewise-linear function ``f: [0, inf) -> [0, inf]``.

    Parameters
    ----------
    xs, ys:
        Breakpoint coordinates.  ``xs`` must start at ``0`` and be strictly
        increasing; ``ys`` must be finite.
    final_slope:
        Slope to the right of the last breakpoint (finite).
    cutoff:
        The function is ``+inf`` for ``t > cutoff``.  Must satisfy
        ``cutoff >= xs[-1]``; defaults to ``math.inf`` (no cutoff).

    Examples
    --------
    >>> f = PiecewiseLinear.rate_latency(rate=2.0, latency=3.0)
    >>> f(3.0), f(5.0)
    (0.0, 4.0)
    >>> delta = PiecewiseLinear.delay(4.0)
    >>> delta(4.0), delta(4.5)
    (0.0, inf)
    """

    __slots__ = ("_xs", "_ys", "_final_slope", "_cutoff")

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        final_slope: float = 0.0,
        cutoff: float = math.inf,
    ) -> None:
        if len(xs) != len(ys) or not xs:
            raise ValueError("xs and ys must be equal-length, non-empty")
        if abs(xs[0]) > _EPS:
            raise ValueError(f"first breakpoint must be at x=0, got {xs[0]}")
        xs_t = tuple(float(x) for x in xs)
        ys_t = tuple(float(y) for y in ys)
        for a, b in zip(xs_t, xs_t[1:]):
            if b <= a:
                raise ValueError(f"breakpoint xs must be strictly increasing: {a} >= {b}")
        for y in ys_t:
            if not math.isfinite(y):
                raise ValueError("breakpoint values must be finite")
        if not math.isfinite(final_slope):
            raise ValueError("final_slope must be finite; use cutoff for +inf tails")
        if cutoff < xs_t[-1] - _EPS:
            raise ValueError(f"cutoff {cutoff} lies before last breakpoint {xs_t[-1]}")
        object.__setattr__(self, "_xs", xs_t)
        object.__setattr__(self, "_ys", ys_t)
        object.__setattr__(self, "_final_slope", float(final_slope))
        object.__setattr__(self, "_cutoff", float(cutoff))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PiecewiseLinear instances are immutable")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zero(cls) -> "PiecewiseLinear":
        """The identically-zero function."""
        return cls((0.0,), (0.0,), 0.0)

    @classmethod
    def constant_rate(cls, rate: float) -> "PiecewiseLinear":
        """Service curve of a constant-rate link: ``S(t) = rate * t``."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        return cls((0.0,), (0.0,), rate)

    @classmethod
    def token_bucket(cls, rate: float, burst: float) -> "PiecewiseLinear":
        """Leaky-bucket envelope ``E(t) = rate * t + burst`` (``E(0)=burst``).

        Note: envelopes are conventionally evaluated for ``t > 0``; the value
        at exactly ``t = 0`` is immaterial for all bounds computed here.
        """
        if rate < 0 or burst < 0:
            raise ValueError("rate and burst must be >= 0")
        return cls((0.0,), (burst,), rate)

    @classmethod
    def rate_latency(cls, rate: float, latency: float) -> "PiecewiseLinear":
        """Rate-latency service curve ``S(t) = rate * max(0, t - latency)``."""
        if rate < 0 or latency < 0:
            raise ValueError("rate and latency must be >= 0")
        if latency == 0:
            return cls.constant_rate(rate)
        return cls((0.0, latency), (0.0, 0.0), rate)

    @classmethod
    def delay(cls, d: float) -> "PiecewiseLinear":
        """Pure-delay element ``delta_d`` (paper Eq. (4))."""
        if d < 0:
            raise ValueError(f"delay must be >= 0, got {d}")
        return cls((0.0,), (0.0,), 0.0, cutoff=d)

    @classmethod
    def affine(cls, slope: float, intercept: float) -> "PiecewiseLinear":
        """The affine function ``f(t) = slope * t + intercept``."""
        return cls((0.0,), (float(intercept),), float(slope))

    @classmethod
    def from_points(
        cls, points: Sequence[tuple[float, float]], final_slope: float = 0.0
    ) -> "PiecewiseLinear":
        """Build from a list of ``(x, y)`` pairs (must start at ``x = 0``)."""
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(xs, ys, final_slope)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def xs(self) -> tuple[float, ...]:
        """Breakpoint abscissae (starting at 0)."""
        return self._xs

    @property
    def ys(self) -> tuple[float, ...]:
        """Breakpoint values."""
        return self._ys

    @property
    def final_slope(self) -> float:
        """Slope right of the last breakpoint (up to the cutoff)."""
        return self._final_slope

    @property
    def cutoff(self) -> float:
        """The function is ``+inf`` strictly beyond this abscissa."""
        return self._cutoff

    @property
    def has_cutoff(self) -> bool:
        """True if the function jumps to ``+inf`` at a finite time."""
        return math.isfinite(self._cutoff)

    def value_at_cutoff(self) -> float:
        """Function value at the cutoff (the last finite value)."""
        return self._eval_finite(min(self._cutoff, self._xs[-1])) + (
            self._final_slope * max(0.0, self._cutoff - self._xs[-1])
            if math.isfinite(self._cutoff)
            else 0.0
        )

    def segments(self) -> list[Segment]:
        """Decompose into linear segments; the last has infinite length
        unless the function has a finite cutoff (then a final vertical
        segment of infinite slope is appended)."""
        segs: list[Segment] = []
        for (x0, y0), (x1, y1) in zip(
            zip(self._xs, self._ys), zip(self._xs[1:], self._ys[1:])
        ):
            segs.append(Segment(x1 - x0, (y1 - y0) / (x1 - x0)))
        if self.has_cutoff:
            tail = self._cutoff - self._xs[-1]
            if tail > _EPS:
                segs.append(Segment(tail, self._final_slope))
            segs.append(Segment(math.inf, math.inf))
        else:
            segs.append(Segment(math.inf, self._final_slope))
        return segs

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _eval_finite(self, t: float) -> float:
        """Evaluate ignoring the cutoff (t must be >= 0)."""
        xs, ys = self._xs, self._ys
        if t >= xs[-1]:
            return ys[-1] + self._final_slope * (t - xs[-1])
        # binary search for the bracketing interval
        lo, hi = 0, len(xs) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if xs[mid] <= t:
                lo = mid
            else:
                hi = mid
        x0, y0, x1, y1 = xs[lo], ys[lo], xs[hi], ys[hi]
        return y0 + (y1 - y0) * (t - x0) / (x1 - x0)

    def __call__(self, t: float) -> float:
        """Evaluate at ``t``; returns 0 for ``t < 0`` and ``inf`` past the cutoff."""
        if t < 0:
            return 0.0
        if t > self._cutoff + _EPS:
            return math.inf
        return self._eval_finite(min(t, self._cutoff))

    def slope_at(self, t: float) -> float:
        """Right-derivative at ``t >= 0`` (``inf`` at/after a finite cutoff)."""
        if t < 0:
            raise ValueError("slope_at requires t >= 0")
        if t >= self._cutoff - _EPS and self.has_cutoff:
            return math.inf
        xs = self._xs
        if t >= xs[-1]:
            return self._final_slope
        for (x0, x1), (y0, y1) in zip(
            zip(xs, xs[1:]), zip(self._ys, self._ys[1:])
        ):
            if x0 <= t < x1:
                return (y1 - y0) / (x1 - x0)
        return self._final_slope

    # ------------------------------------------------------------------ #
    # structural predicates
    # ------------------------------------------------------------------ #

    def is_nondecreasing(self, tol: float = 1e-9) -> bool:
        """True if the function never decreases."""
        return all(seg.slope >= -tol for seg in self.segments())

    def is_convex(self, tol: float = 1e-9) -> bool:
        """True if slopes are nondecreasing along the curve (and there is no
        downward jump; cutoffs are fine, they act as a final +inf slope)."""
        slopes = [seg.slope for seg in self.segments()]
        return all(b >= a - tol for a, b in zip(slopes, slopes[1:]))

    def is_concave(self, tol: float = 1e-9) -> bool:
        """True if slopes are nonincreasing (a finite cutoff breaks concavity)."""
        if self.has_cutoff:
            return False
        slopes = [seg.slope for seg in self.segments()]
        return all(b <= a + tol for a, b in zip(slopes, slopes[1:]))

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #

    def shift_right(self, d: float) -> "PiecewiseLinear":
        """Min-plus convolution with ``delta_d``: ``t -> f(t - d)``.

        Requires ``f(0) == 0`` (otherwise the shift would create a jump
        discontinuity that a piecewise-linear interpolation cannot represent
        soundly).  All service curves in this library satisfy ``S(0) = 0``.
        """
        if d < 0:
            raise ValueError("shift distance must be >= 0")
        if d == 0:
            return self
        if self._ys[0] > _EPS:
            raise ValueError(
                "shift_right requires f(0) == 0; shifting a curve with a "
                "positive origin value would create a discontinuity"
            )
        xs = [0.0, d] + [x + d for x in self._xs[1:]]
        ys = [0.0, self._ys[0]] + list(self._ys[1:])
        cutoff = self._cutoff + d if math.isfinite(self._cutoff) else math.inf
        return PiecewiseLinear(xs, ys, self._final_slope, cutoff)

    def add_constant(self, c: float) -> "PiecewiseLinear":
        """Vertical shift ``t -> f(t) + c`` (result clipped at 0 if negative)."""
        ys = [max(0.0, y + c) for y in self._ys]
        return PiecewiseLinear(self._xs, ys, self._final_slope, self._cutoff)

    def shift_left(self, d: float) -> "PiecewiseLinear":
        """Exact left shift ``t -> f(t + d)`` for ``d >= 0`` (no cutoff).

        The new origin value is ``f(d)``; breakpoints left of ``d`` drop out.
        """
        if d < 0:
            raise ValueError("shift distance must be >= 0")
        if self.has_cutoff:
            raise ValueError("shift_left does not support cutoffs")
        if d == 0:
            return self
        xs = [0.0]
        ys = [self(d)]
        for x, y in zip(self._xs, self._ys):
            if x - d > _EPS:
                xs.append(x - d)
                ys.append(y)
        return PiecewiseLinear(xs, ys, self._final_slope)

    def translate(self, c: float) -> "PiecewiseLinear":
        """Vertical shift ``t -> f(t) + c`` without clipping (values may go
        negative; clip afterwards with :meth:`clip_nonnegative` if needed)."""
        ys = [y + c for y in self._ys]
        return PiecewiseLinear(self._xs, ys, self._final_slope, self._cutoff)

    def flatten_left(self, x0: float) -> "PiecewiseLinear":
        """Replace values left of ``x0`` by the constant ``f(x0)``.

        Used by the leftover-service construction to express
        ``inf_{s >= max(t, x0)} f(s)`` region curves.  Requires a finite
        ``f(x0)``.
        """
        if x0 <= 0:
            return self
        level = self(x0)
        if not math.isfinite(level):
            raise ValueError(f"f({x0}) is not finite")
        xs = [0.0, x0]
        ys = [level, level]
        for x, y in zip(self._xs, self._ys):
            if x > x0 + _EPS:
                xs.append(x)
                ys.append(y)
        return PiecewiseLinear(xs, ys, self._final_slope, self._cutoff)

    def scale(self, factor: float) -> "PiecewiseLinear":
        """Vertical scaling ``t -> factor * f(t)`` with ``factor >= 0``."""
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        ys = [factor * y for y in self._ys]
        return PiecewiseLinear(self._xs, ys, factor * self._final_slope, self._cutoff)

    def clip_nonnegative(self) -> "PiecewiseLinear":
        """Pointwise ``max(f, 0)`` — the ``[.]_+`` operator of the paper.

        Values within roundoff of zero are snapped to exactly zero so the
        clipped plateau is genuinely flat (pseudo-inverses distinguish
        flat segments from infinitesimally sloped ones).
        """
        from repro.algebra.operations import pointwise_max

        clipped = pointwise_max(self, PiecewiseLinear.zero())
        if any(0.0 < y < 1e-9 for y in clipped.ys):
            ys = [0.0 if y < 1e-9 else y for y in clipped.ys]
            return PiecewiseLinear(
                clipped.xs, ys, clipped.final_slope, clipped.cutoff
            )
        return clipped

    def nondecreasing_hull(self) -> "PiecewiseLinear":
        """The largest nondecreasing function below ``f``:
        ``hull(t) = inf_{s >= t} f(s)``.

        Used to turn a momentarily-decreasing leftover curve into a valid
        (sound, since smaller) service curve.  Requires ``final_slope >= 0``
        and no cutoff (otherwise the infimum is degenerate).
        """
        if self.has_cutoff:
            raise ValueError("nondecreasing_hull does not support cutoffs")
        if self._final_slope < 0:
            raise ValueError(
                "nondecreasing_hull requires final_slope >= 0 "
                f"(got {self._final_slope}); the infimum would be -inf"
            )
        if self.is_nondecreasing():
            return self
        # walk from the right: hull at x_i is min(f(x_i), hull at x_{i+1});
        # on each interval the hull is min(f(t), next_hull), which adds a
        # breakpoint where an increasing segment crosses next_hull
        n = len(self._xs)
        hull_vals = [0.0] * n
        hull_vals[-1] = self._ys[-1]
        points: list[tuple[float, float]] = [(self._xs[-1], self._ys[-1])]
        for i in range(n - 2, -1, -1):
            nxt = hull_vals[i + 1]
            x0, y0 = self._xs[i], self._ys[i]
            x1, y1 = self._xs[i + 1], self._ys[i + 1]
            hull_vals[i] = min(y0, nxt)
            if y0 <= nxt:
                # segment may rise above the later minimum: crossing point
                if y1 > nxt + _EPS and y1 > y0:
                    cross = x0 + (nxt - y0) * (x1 - x0) / (y1 - y0)
                    points.append((cross, nxt))
                points.append((x0, y0))
            else:
                # hull is flat at nxt across this whole interval
                points.append((x0, nxt))
        points.sort()
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        # deduplicate abscissae
        keep_x, keep_y = [xs[0]], [ys[0]]
        for x, y in zip(xs[1:], ys[1:]):
            if x - keep_x[-1] <= _EPS:
                keep_y[-1] = min(keep_y[-1], y)
            else:
                keep_x.append(x)
                keep_y.append(y)
        return PiecewiseLinear(keep_x, keep_y, self._final_slope)

    # ------------------------------------------------------------------ #
    # inverse and deviations support
    # ------------------------------------------------------------------ #

    def inverse(self, y: float) -> float:
        """Pseudo-inverse ``inf { t >= 0 : f(t) >= y }`` for nondecreasing f.

        Returns ``math.inf`` if the level ``y`` is never reached.
        """
        if y <= self._ys[0]:
            return 0.0
        xs, ys = self._xs, self._ys
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            if y1 >= y:
                if y1 == y0:
                    return x1 if y > y0 else x0
                return x0 + (y - y0) * (x1 - x0) / (y1 - y0)
        # beyond the last breakpoint
        if self._final_slope > 0:
            t = xs[-1] + (y - ys[-1]) / self._final_slope
            if t <= self._cutoff + _EPS:
                return min(t, self._cutoff)
        if self.has_cutoff:
            # the function jumps to +inf just past the cutoff
            return self._cutoff
        return math.inf

    def inverse_strict(self, y: float) -> float:
        """Strict pseudo-inverse ``inf { t >= 0 : f(t) > y }`` (nondecreasing f).

        Differs from :meth:`inverse` exactly where ``f`` has a flat segment
        at level ``y``: the strict inverse lands at the right end of the
        plateau.  Returns ``math.inf`` if ``f`` never exceeds ``y``.
        """
        tol = _EPS * max(1.0, abs(y))
        xs, ys = self._xs, self._ys
        if ys[0] > y + tol:
            return 0.0
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            if y1 > y + tol:
                if y0 >= y - tol:  # plateau at level y ends at x0
                    return x0
                return x0 + (y - y0) * (x1 - x0) / (y1 - y0)
        if self._final_slope > 0:
            t = xs[-1] + max(0.0, (y - ys[-1])) / self._final_slope
            if t <= self._cutoff + _EPS:
                return min(t, self._cutoff)
        if self.has_cutoff:
            return self._cutoff
        return math.inf

    def breakpoints_until(self, horizon: float) -> list[float]:
        """All breakpoint abscissae (plus cutoff) not exceeding ``horizon``."""
        points = [x for x in self._xs if x <= horizon]
        if self.has_cutoff and self._cutoff <= horizon:
            points.append(self._cutoff)
        return points

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseLinear):
            return NotImplemented
        return (
            self._xs == other._xs
            and self._ys == other._ys
            and self._final_slope == other._final_slope
            and self._cutoff == other._cutoff
        )

    def __hash__(self) -> int:
        return hash((self._xs, self._ys, self._final_slope, self._cutoff))

    def equals_approx(self, other: "PiecewiseLinear", tol: float = 1e-9) -> bool:
        """Pointwise approximate equality on a probe grid (for tests)."""
        horizon = max(
            self._xs[-1],
            other._xs[-1],
            1.0,
            self._cutoff if self.has_cutoff else 0.0,
            other._cutoff if other.has_cutoff else 0.0,
        ) * 2.0
        probes = _merge_close(
            list(self._xs)
            + list(other._xs)
            + [horizon, horizon / 3.0, horizon / 7.0]
        )
        for t in probes:
            a, b = self(t), other(t)
            if math.isinf(a) != math.isinf(b):
                return False
            if math.isfinite(a) and abs(a - b) > tol * max(1.0, abs(a), abs(b)):
                return False
        return True

    def __repr__(self) -> str:
        pts = ", ".join(f"({x:g}, {y:g})" for x, y in zip(self._xs, self._ys))
        cut = f", cutoff={self._cutoff:g}" if self.has_cutoff else ""
        return f"PiecewiseLinear([{pts}], final_slope={self._final_slope:g}{cut})"

    # ------------------------------------------------------------------ #
    # sampling (numeric fallbacks, plotting, simulation cross-checks)
    # ------------------------------------------------------------------ #

    def sample(self, ts: Iterable[float]) -> list[float]:
        """Evaluate at each ``t`` in ``ts``."""
        return [self(t) for t in ts]


def as_callable(curve: "PiecewiseLinear | Callable[[float], float]") -> Callable[[float], float]:
    """Accept either a :class:`PiecewiseLinear` or a plain callable."""
    if isinstance(curve, PiecewiseLinear):
        return curve
    if callable(curve):
        return curve
    raise TypeError(f"expected a curve, got {curve!r}")
