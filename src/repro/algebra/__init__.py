"""Min-plus algebra substrate.

Network calculus manipulates nondecreasing functions of time ("curves")
with the operators of the min-plus algebra: pointwise minimum/maximum/sum,
min-plus convolution and deconvolution, and the horizontal/vertical
deviations that turn an arrival envelope and a service curve into delay and
backlog bounds.

This package provides an exact implementation for piecewise-linear curves
(:class:`repro.algebra.functions.PiecewiseLinear`), which covers every curve
family used by the paper — token buckets, constant-rate and rate-latency
service curves, the pure-delay element ``delta_d`` — together with numeric
fallbacks for arbitrary curves.
"""

from repro.algebra.functions import PiecewiseLinear, Segment
from repro.algebra.minplus import (
    convolve,
    convolve_numeric,
    deconvolve_numeric,
    horizontal_deviation,
    vertical_deviation,
)
from repro.algebra.operations import (
    pointwise_add,
    pointwise_max,
    pointwise_min,
)

__all__ = [
    "PiecewiseLinear",
    "Segment",
    "convolve",
    "convolve_numeric",
    "deconvolve_numeric",
    "horizontal_deviation",
    "vertical_deviation",
    "pointwise_add",
    "pointwise_max",
    "pointwise_min",
]
