"""Min-plus convolution, deconvolution, and deviations.

The operators of the min-plus algebra used throughout the network calculus:

* **convolution** ``(f * g)(t) = inf_{0<=s<=t} f(s) + g(t-s)`` — composes
  service curves along a path (paper Sec. II-B);
* **deconvolution** ``(f / g)(t) = sup_{u>=0} f(t+u) - g(u)`` — yields
  output envelopes;
* **horizontal deviation** ``h(E, S)`` — the worst-case delay bound of an
  arrival envelope ``E`` through a service curve ``S``;
* **vertical deviation** ``v(E, S)`` — the worst-case backlog bound.

For piecewise-linear operands every operator here is *exact*:

* convolution of convex curves by the classical slope-sorting construction
  (segments concatenated in order of increasing slope);
* convolution of concave curves by the endpoint rule
  ``(f * g)(t) = min(f(t) + g(0), g(t) + f(0))``;
* convolution with a pure-delay element ``delta_d`` by shifting;
* deviations and deconvolution by breakpoint enumeration.

A grid-based numeric convolution is provided as a fallback and as an
independent cross-check for the exact algorithms (used heavily in tests).
Note the numeric version evaluates the infimum over grid points only and is
therefore an *upper* bound on the true convolution.
"""

from __future__ import annotations

import math

from repro.algebra.functions import PiecewiseLinear, Segment, _merge_close
from repro.algebra.operations import pointwise_min

_EPS = 1e-12


def _as_delay(curve: PiecewiseLinear) -> float | None:
    """Return ``d`` if ``curve`` is the pure-delay element ``delta_d``."""
    if not curve.has_cutoff:
        return None
    if any(abs(y) > _EPS for y in curve.ys):
        return None
    if abs(curve.final_slope) > _EPS:
        return None
    return curve.cutoff


def _convolve_convex(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Slope-sorting construction for convex piecewise-linear curves."""
    segments: list[Segment] = f.segments() + g.segments()
    segments.sort(key=lambda s: s.slope)
    xs = [0.0]
    ys = [f(0.0) + g(0.0)]
    final_slope = 0.0
    cutoff = math.inf
    for seg in segments:
        if math.isinf(seg.length):
            if math.isinf(seg.slope):
                cutoff = xs[-1]
            else:
                final_slope = seg.slope
            break
        if seg.length <= _EPS:
            continue
        xs.append(xs[-1] + seg.length)
        ys.append(ys[-1] + seg.slope * seg.length)
    # collapse consecutive collinear breakpoints
    keep_x = [xs[0]]
    keep_y = [ys[0]]
    for i in range(1, len(xs)):
        if len(keep_x) >= 2:
            s_prev = (keep_y[-1] - keep_y[-2]) / (keep_x[-1] - keep_x[-2])
            s_new = (ys[i] - keep_y[-1]) / (xs[i] - keep_x[-1])
            if abs(s_prev - s_new) <= 1e-9 * max(1.0, abs(s_prev)):
                keep_x[-1] = xs[i]
                keep_y[-1] = ys[i]
                continue
        keep_x.append(xs[i])
        keep_y.append(ys[i])
    if len(keep_x) >= 2:
        s_last = (keep_y[-1] - keep_y[-2]) / (keep_x[-1] - keep_x[-2])
        if not math.isfinite(cutoff) and abs(s_last - final_slope) <= 1e-9 * max(
            1.0, abs(final_slope)
        ):
            keep_x.pop()
            keep_y.pop()
    return PiecewiseLinear(keep_x, keep_y, final_slope, cutoff)


def _flat_shift(curve: PiecewiseLinear, anchor: float, offset: float) -> PiecewiseLinear:
    """The candidate curve ``t -> offset + curve(max(0, t - anchor))``.

    Flat at ``offset + curve(0)`` on ``[0, anchor]``, then the shifted
    curve.  Continuous by construction.
    """
    base_value = offset + curve.ys[0]
    if anchor <= 0:
        return PiecewiseLinear(
            curve.xs, [y + offset for y in curve.ys], curve.final_slope
        )
    xs = [0.0, anchor] + [x + anchor for x in curve.xs[1:]]
    ys = [base_value, base_value] + [y + offset for y in curve.ys[1:]]
    return PiecewiseLinear(xs, ys, curve.final_slope)


def _convolve_general(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact min-plus convolution of *general* nondecreasing finite curves.

    For fixed ``t`` the inner function ``s -> f(s) + g(t - s)`` is
    piecewise linear in ``s``, so its minimum over ``[0, t]`` is attained
    at a breakpoint of ``f`` or at a point where ``t - s`` is a breakpoint
    of ``g``.  Hence

        ``(f * g)(t) = min_i [ f(x_i) + g(max(0, t - x_i)) ]
                     ∧ min_j [ g(x_j) + f(max(0, t - x_j)) ]``

    Each candidate is a flat-extended shifted copy of one operand.  The
    flat extension (constant ``f(x_i) + g(0)`` left of the anchor) keeps
    the candidate *above* the convolution there (monotonicity of ``f``),
    so the pointwise minimum over all candidates equals the convolution
    everywhere — including the crossing-induced breakpoints that pairwise
    sums of operand breakpoints would miss.  O((|f| + |g|)^2) work.
    """
    if f.has_cutoff or g.has_cutoff:
        raise ValueError("general convolution does not support cutoffs")
    if not (f.is_nondecreasing() and g.is_nondecreasing()):
        raise ValueError("general convolution requires nondecreasing curves")

    result: PiecewiseLinear | None = None
    for anchor_curve, moving_curve in ((f, g), (g, f)):
        for x in anchor_curve.xs:
            candidate = _flat_shift(moving_curve, x, anchor_curve(x))
            result = (
                candidate if result is None else pointwise_min(result, candidate)
            )
    assert result is not None
    return result


def convolve(f: PiecewiseLinear, g: PiecewiseLinear) -> PiecewiseLinear:
    """Exact min-plus convolution ``f * g`` of piecewise-linear curves.

    Dispatches on shape:

    * either operand a pure-delay element ``delta_d`` — shift;
    * both convex — the classical slope-sorting construction;
    * both concave with no cutoff — the endpoint rule;
    * general nondecreasing finite curves — exact pairwise-breakpoint
      enumeration (:func:`_convolve_general`).

    Raises :class:`ValueError` only for curves with finite cutoffs that
    are not pure-delay elements (those arise nowhere in the library).
    """
    d = _as_delay(f)
    if d is not None:
        return g.shift_right(d)
    d = _as_delay(g)
    if d is not None:
        return f.shift_right(d)
    if f.is_convex() and g.is_convex():
        return _convolve_convex(f, g)
    if f.is_concave() and g.is_concave():
        return pointwise_min(f.add_constant(g(0.0)), g.add_constant(f(0.0)))
    return _convolve_general(f, g)


def convolve_numeric(
    f: PiecewiseLinear,
    g: PiecewiseLinear,
    horizon: float,
    dt: float,
) -> PiecewiseLinear:
    """Grid-based min-plus convolution on ``[0, horizon]`` with step ``dt``.

    The infimum is taken over grid points only, so the result upper-bounds
    the true convolution; shrink ``dt`` to tighten.  Values beyond the
    horizon follow the sum of the final slopes.
    """
    if dt <= 0 or horizon <= 0:
        raise ValueError("horizon and dt must be > 0")
    steps = int(round(horizon / dt))
    ts = [i * dt for i in range(steps + 1)]
    ys: list[float] = []
    for t in ts:
        best = math.inf
        s = 0.0
        while s <= t + _EPS:
            val = f(s) + g(t - s)
            if val < best:
                best = val
            s += dt
        ys.append(best)
    final_slope = f.final_slope + g.final_slope
    # drop non-finite tail values (inside a cutoff region nothing is inf)
    if any(not math.isfinite(y) for y in ys):
        cut_idx = next(i for i, y in enumerate(ys) if not math.isfinite(y))
        if cut_idx == 0:
            raise ValueError("convolution is +inf at t=0; invalid operands")
        return PiecewiseLinear(
            ts[:cut_idx], ys[:cut_idx], 0.0, cutoff=ts[cut_idx - 1]
        )
    return PiecewiseLinear(ts, ys, final_slope)


def deconvolve_numeric(
    f: PiecewiseLinear,
    g: PiecewiseLinear,
    *,
    t_points: list[float] | None = None,
) -> PiecewiseLinear:
    """Min-plus deconvolution ``(f / g)(t) = sup_{u>=0} f(t+u) - g(u)``.

    Exact for piecewise-linear operands when the supremum is finite: for
    each ``t`` the inner function of ``u`` is piecewise linear with
    breakpoints among ``g.xs`` and ``{x - t : x in f.xs}``, so evaluating at
    those points (plus the tail) is exact.  Raises :class:`ValueError` when
    ``f`` eventually grows faster than ``g`` (the deconvolution is infinite).
    """
    if f.final_slope > g.final_slope + _EPS and not g.has_cutoff:
        raise ValueError(
            "deconvolution diverges: f grows faster than g "
            f"({f.final_slope} > {g.final_slope})"
        )

    def value_at(t: float) -> float:
        candidates = [0.0]
        candidates += [u for u in g.xs if u > 0]
        if math.isfinite(g.cutoff):
            candidates.append(g.cutoff)
        candidates += [x - t for x in f.xs if x - t > 0]
        # tail beyond the last candidate: slope f.final - g.final <= 0,
        # so the last candidate dominates the tail
        best = -math.inf
        for u in candidates:
            gu = g(u)
            if not math.isfinite(gu):
                continue
            val = f(t + u) - gu
            if val > best:
                best = val
        return best

    if t_points is None:
        raw = set(f.xs)
        for xf in f.xs:
            for xg in g.xs:
                if xf - xg > 0:
                    raw.add(xf - xg)
            if math.isfinite(g.cutoff) and xf - g.cutoff > 0:
                raw.add(xf - g.cutoff)
        raw.add(0.0)
        t_points = _merge_close(raw)
    ys = [value_at(t) for t in t_points]
    return PiecewiseLinear(t_points, ys, f.final_slope)


def horizontal_deviation(envelope: PiecewiseLinear, service: PiecewiseLinear) -> float:
    """Worst-case delay bound ``h(E, S) = sup_t inf {d : S(t+d) >= E(t)}``.

    Exact for piecewise-linear curves: the inner infimum equals
    ``S^{-1}(E(t)) - t`` (pseudo-inverse), which is piecewise linear in ``t``
    between breakpoints of ``E`` and preimages of ``S``'s breakpoint levels,
    so the supremum is attained at one of those candidates.  Returns
    ``math.inf`` when the envelope eventually outgrows the service curve.
    """
    if not envelope.is_nondecreasing() or not service.is_nondecreasing():
        raise ValueError("deviations require nondecreasing curves")
    if envelope.final_slope > service.final_slope + _EPS and not service.has_cutoff:
        return math.inf

    candidates = list(envelope.xs)
    # preimages (under E) of the service curve's breakpoint levels
    levels = list(service.ys)
    if service.has_cutoff:
        levels.append(service.value_at_cutoff())
    for level in levels:
        t = envelope.inverse(level)
        if math.isfinite(t):
            candidates.append(t)
    tail_probe = max(candidates) + 1.0
    candidates.append(tail_probe)
    candidates = _merge_close(candidates)

    worst = 0.0
    for t in candidates:
        level = envelope(t)
        reach = service.inverse(level)
        if math.isinf(reach):
            return math.inf
        worst = max(worst, reach - t)
        # where the envelope is strictly increasing, the deviation just
        # right of t approaches the *strict* inverse — which differs from
        # the plain pseudo-inverse exactly when the level sits on a flat
        # segment of the service curve (e.g. a burst-free envelope against
        # a rate-latency curve: the supremum is the latency, approached as
        # t -> 0+ but never attained)
        if envelope.slope_at(t) > _EPS:
            reach_strict = service.inverse_strict(level)
            if math.isinf(reach_strict):
                return math.inf
            worst = max(worst, reach_strict - t)
    # equal tail slopes: the deviation is constant past the last candidate,
    # already captured by tail_probe.
    return max(0.0, worst)


def vertical_deviation(envelope: PiecewiseLinear, service: PiecewiseLinear) -> float:
    """Worst-case backlog bound ``v(E, S) = sup_t E(t) - S(t)`` (exact)."""
    if not envelope.is_nondecreasing() or not service.is_nondecreasing():
        raise ValueError("deviations require nondecreasing curves")
    if envelope.final_slope > service.final_slope + _EPS and not service.has_cutoff:
        return math.inf
    candidates = list(envelope.xs) + list(service.xs)
    if service.has_cutoff:
        candidates.append(service.cutoff)
    candidates.append(max(candidates) + 1.0)
    worst = 0.0
    for t in _merge_close(candidates):
        s_val = service(t)
        if math.isinf(s_val):
            continue
        worst = max(worst, envelope(t) - s_val)
    return max(0.0, worst)
