"""repro.lint — AST-based invariant checker for the repro codebase.

The repo's correctness rests on conventions no generic linter knows:
content-keyed cell caching is only sound if cells are pure functions of
their params, the ``backend=`` selector is only trustworthy while every
backend is covered by an equivalence test, and the process-pool
executors silently require everything crossing the boundary to pickle.
``repro.lint`` encodes those invariants as named, suppressible rules
(RPR001-RPR006) over the project's ASTs.

Run it::

    PYTHONPATH=src python -m repro.lint              # gate (exit 1 on findings)
    PYTHONPATH=src python -m repro.lint --explain RPR001
    PYTHONPATH=src python -m repro.lint --format sarif --output lint.sarif

Suppress a justified false positive inline::

    time.sleep(wait)  # repro: noqa=RPR001 -- diagnostic probe cell

Programmatic use::

    from repro.lint import LintConfig, lint_repo
    report = lint_repo(Path("."), config=LintConfig())
    assert report.ok, report.violations
"""

from repro.lint.core import (
    LintConfig,
    LintReport,
    SourceFile,
    Violation,
    collect_files,
    lint_files,
    lint_repo,
    load_source_file,
)
from repro.lint.explain import EXPLANATIONS, explain
from repro.lint.output import format_json, format_sarif, format_text
from repro.lint.rules import RULES

__all__ = [
    "EXPLANATIONS",
    "LintConfig",
    "LintReport",
    "RULES",
    "SourceFile",
    "Violation",
    "collect_files",
    "explain",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_files",
    "lint_repo",
    "load_source_file",
]
