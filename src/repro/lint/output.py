"""Report renderers: human text, machine JSON, and SARIF 2.1.0.

SARIF is the interchange format CI code-scanning UIs ingest; the
driver block carries the full rule catalog (short description from the
rule class, long description from :mod:`repro.lint.explain`) and each
result maps one :class:`~repro.lint.core.Violation`.  Suppressed
findings are emitted as SARIF ``suppressions`` so justified noqas stay
auditable instead of disappearing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.core import LintReport, Violation
from repro.lint.explain import EXPLANATIONS
from repro.lint.rules import RULES

__all__ = ["format_json", "format_sarif", "format_text"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro.lint"


def format_text(report: LintReport, *, verbose: bool = False) -> str:
    """One line per violation plus a summary footer."""
    lines = [violation.render() for violation in report.violations]
    if verbose and report.suppressed:
        lines.append("")
        lines.append("suppressed (justified noqa):")
        for violation, justification in report.suppressed:
            lines.append(f"  {violation.render()}  [{justification}]")
    lines.append("")
    if report.ok:
        lines.append(
            f"repro.lint: {report.checked_files} files clean"
            + (
                f" ({len(report.suppressed)} justified suppressions)"
                if report.suppressed
                else ""
            )
        )
    else:
        by_rule = ", ".join(
            f"{rule} x{count}"
            for rule, count in sorted(report.counts.items())
        )
        lines.append(
            f"repro.lint: {len(report.violations)} violation(s) in "
            f"{report.checked_files} files ({by_rule})"
        )
    return "\n".join(lines)


def _violation_dict(violation: Violation) -> dict[str, Any]:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
    }


def format_json(report: LintReport) -> str:
    """Stable machine-readable report."""
    payload: dict[str, Any] = {
        "tool": TOOL_NAME,
        "checked_files": report.checked_files,
        "ok": report.ok,
        "violations": [
            _violation_dict(violation) for violation in report.violations
        ],
        "suppressed": [
            {
                **_violation_dict(violation),
                "justification": justification,
            }
            for violation, justification in report.suppressed
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules() -> list[dict[str, Any]]:
    catalog: list[dict[str, Any]] = [
        {
            "id": "RPR000",
            "name": "suppression-hygiene",
            "shortDescription": {
                "text": "noqa suppressions must carry a justification"
            },
            "fullDescription": {"text": EXPLANATIONS["RPR000"]},
        }
    ]
    for rule in RULES:
        catalog.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {
                    "text": EXPLANATIONS.get(rule.id, rule.summary)
                },
            }
        )
    return catalog


def _sarif_result(
    violation: Violation, justification: str | None = None
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                }
            }
        ],
    }
    if justification is not None:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": justification,
            }
        ]
    return result


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log with rule metadata and in-source suppressions."""
    results = [
        _sarif_result(violation) for violation in report.violations
    ]
    results.extend(
        _sarif_result(violation, justification)
        for violation, justification in report.suppressed
    )
    log: dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
