"""``python -m repro.lint`` — run the invariant checker.

Exit codes: 0 clean, 1 violations found, 2 usage error.  On failure the
tool prints exact-command hints (mirroring ``benchmarks/
check_regression.py``): how to read the rule's rationale and how to
suppress a justified false positive.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.core import (
    LintConfig,
    LintReport,
    collect_files,
    lint_files,
    lint_repo,
)
from repro.lint.explain import EXPLANATIONS, explain
from repro.lint.output import format_json, format_sarif, format_text
from repro.lint.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker: cache purity, backend parity, "
            "executor safety, obs conventions, numeric safety."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "files or directories to lint (default: the repository's "
            "src/repro, with tests/ indexed for cross-references)"
        ),
    )
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=None,
        help="repository root (default: auto-detect from this package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--explain",
        metavar="RPRxxx",
        default=None,
        help="print the rationale and fix guidance for one rule and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule catalog and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show justified suppressions in text output",
    )
    return parser


def _split_codes(raw: str) -> tuple[str, ...]:
    return tuple(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )


def _run(args: argparse.Namespace) -> LintReport:
    config = LintConfig(
        select=_split_codes(args.select), ignore=_split_codes(args.ignore)
    )
    if args.paths:
        src_files = []
        for path in args.paths:
            root = path if path.is_dir() else path.parent
            if path.is_dir():
                src_files.extend(collect_files(path, root=root))
            else:
                from repro.lint.core import load_source_file

                src_files.append(load_source_file(path, root=root))
        return lint_files(src_files, config=config)
    repo_root = args.repo_root
    if repo_root is None:
        # src/repro/lint/__main__.py -> repository root three levels up.
        repo_root = Path(__file__).resolve().parents[3]
    if not (repo_root / "src" / "repro").is_dir():
        raise SystemExit(
            f"error: {repo_root} does not look like the repository root "
            "(no src/repro); pass --repo-root or explicit paths"
        )
    return lint_repo(repo_root, config=config)


def _failure_hints(report: LintReport) -> str:
    rules = sorted(report.counts)
    example = rules[0] if rules else "RPR001"
    lines = [
        "",
        "repro.lint failed. To understand a rule:",
    ]
    for rule in rules:
        lines.append(
            f"  PYTHONPATH=src python -m repro.lint --explain {rule}"
        )
    lines.extend(
        [
            "",
            "If a finding is a false positive, suppress it on its line "
            "with a justification:",
            f"  # repro: noqa={example} -- <why the invariant does not "
            "apply here>",
            "",
            "Re-run locally with:",
            "  PYTHONPATH=src python -m repro.lint",
        ]
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print("RPR000  suppression-hygiene  "
              "noqa suppressions must carry a justification")
        for rule in RULES:
            print(f"{rule.id}  {rule.name}  {rule.summary}")
        return 0

    if args.explain is not None:
        text = explain(args.explain)
        if text is None:
            known = ", ".join(sorted(EXPLANATIONS))
            print(
                f"unknown rule {args.explain!r}; known rules: {known}",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    try:
        report = _run(args)
    except SystemExit as exit_error:
        print(exit_error, file=sys.stderr)
        return 2

    if args.format == "json":
        rendered = format_json(report)
    elif args.format == "sarif":
        rendered = format_sarif(report)
    else:
        rendered = format_text(report, verbose=args.verbose)

    if args.output is not None:
        args.output.write_text(rendered + "\n")
        if args.format != "text":
            # Keep the human-readable summary on stdout.
            print(format_text(report, verbose=args.verbose))
    else:
        print(rendered)

    if not report.ok:
        print(_failure_hints(report), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
