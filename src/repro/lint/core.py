"""The invariant-lint framework: files, suppressions, config, engine.

The repo's correctness rests on conventions no generic linter checks —
cell purity for the content-keyed cache, backend parity for the
``backend=`` selector, picklability across the executor boundary (see
``python -m repro.lint --explain RPRxxx`` for the catalog).  This
module is the rule-agnostic machinery:

* :class:`Violation` — one finding: rule id, location, message.
* :class:`SourceFile` — a parsed file: path, module name, AST, and its
  inline suppressions.
* **Suppressions** — ``# repro: noqa=RPR001 -- justification`` on the
  reported line silences that rule there.  The justification is
  mandatory: a bare ``noqa`` is itself reported (as ``RPR000``), so
  every suppression documents *why* the invariant does not apply.
* :class:`LintConfig` — which rules run plus per-rule options
  (frozen dataclasses, one per rule, with repo defaults).
* :func:`lint_files` / :func:`lint_repo` — the engine: build the
  cross-file :class:`~repro.lint.project.ProjectIndex`, run every
  selected rule over every target file, apply suppressions.

Rules themselves live in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "LintConfig",
    "LintReport",
    "Noqa",
    "SourceFile",
    "Violation",
    "collect_files",
    "lint_files",
    "lint_repo",
    "load_source_file",
]

#: Inline suppression syntax.  The justification after ``--`` is
#: required (enforced as RPR000); multiple codes separate with commas.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa=(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*\S|\S))?\s*$"
)

#: Directory names never walked for lintable or index files (fixture
#: snippets under tests/lint/fixtures/ are deliberately violating).
EXCLUDED_DIR_NAMES = ("fixtures", "__pycache__")


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Noqa:
    """One parsed ``# repro: noqa=...`` directive."""

    line: int
    codes: frozenset[str]
    justification: str | None


@dataclass(frozen=True)
class SourceFile:
    """A parsed Python file plus the metadata rules need."""

    path: Path
    rel: str
    module: str | None
    text: str
    tree: ast.Module
    noqa: Mapping[int, Noqa]
    is_test: bool

    def violation(
        self, rule: str, node: ast.AST, message: str
    ) -> Violation:
        """A :class:`Violation` of ``rule`` anchored at ``node``."""
        return Violation(
            rule=rule,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def parse_noqa(text: str) -> dict[int, Noqa]:
    """Line number -> suppression directive, for every noqa comment."""
    directives: dict[int, Noqa] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        directives[number] = Noqa(
            line=number, codes=codes, justification=match.group("why")
        )
    return directives


def module_name_for(path: Path, root: Path) -> str | None:
    """Dotted module name of ``path`` relative to package root ``root``."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(rel.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


def load_source_file(
    path: Path, *, root: Path, rel_to: Path | None = None, is_test: bool = False
) -> SourceFile:
    """Parse ``path`` into a :class:`SourceFile`.

    ``root`` is the package root the dotted module name is derived
    from; ``rel_to`` (default ``root``) anchors the *displayed* path.
    """
    text = path.read_text()
    tree = ast.parse(text, filename=str(path))
    base = rel_to if rel_to is not None else root
    try:
        rel = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return SourceFile(
        path=path,
        rel=rel,
        module=module_name_for(path, root),
        text=text,
        tree=tree,
        noqa=parse_noqa(text),
        is_test=is_test,
    )


def collect_files(
    directory: Path,
    *,
    root: Path,
    rel_to: Path | None = None,
    is_test: bool = False,
) -> list[SourceFile]:
    """Every ``.py`` file under ``directory``, parsed, in sorted order."""
    files = []
    for path in sorted(directory.rglob("*.py")):
        if any(part in EXCLUDED_DIR_NAMES for part in path.parts):
            continue
        files.append(
            load_source_file(path, root=root, rel_to=rel_to, is_test=is_test)
        )
    return files


# --------------------------------------------------------------------- #
# per-rule options (repo defaults; override programmatically or not at all)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PurityOptions:
    """RPR001: what a registered sweep-cell function must not touch."""

    #: Modules whose mere use inside a cell is nondeterministic state.
    forbidden_modules: tuple[str, ...] = ("random", "secrets", "uuid")
    #: Dotted prefixes (resolved through import aliases) a cell must not
    #: read: wall clocks, process environment, ambient RNG.
    forbidden_attributes: tuple[str, ...] = (
        "time.",
        "os.environ",
        "os.getenv",
        "os.putenv",
        "os.urandom",
        "datetime.",
        "numpy.random.",
        "socket.",
    )
    #: Builtin calls that reach outside the params -> payload contract.
    forbidden_calls: tuple[str, ...] = ("open", "input", "eval", "exec")


@dataclass(frozen=True)
class CacheKeyOptions:
    """RPR002: what may appear in a cell signature (= the cache key)."""

    #: Annotation names accepted as JSON-canonicalizable plain values.
    allowed_annotations: tuple[str, ...] = (
        "str", "int", "float", "bool", "tuple", "None",
    )


@dataclass(frozen=True)
class ParityOptions:
    """RPR003: the registered backends every ``backend=`` API must cover."""

    backends: tuple[str, ...] = ("numpy", "scalar")


@dataclass(frozen=True)
class PicklabilityOptions:
    """RPR004: how work reaches the process-pool executors."""

    #: Method names whose first argument fans out across processes.
    boundary_attributes: tuple[str, ...] = (
        "map", "map_stream", "imap", "imap_unordered", "map_async",
    )


@dataclass(frozen=True)
class ObsOptions:
    """RPR005: metric naming and span usage conventions."""

    #: Registered metric namespaces (the segment before the first dot).
    namespaces: tuple[str, ...] = (
        "batch", "cache", "cell", "cli", "cprobe", "e2e", "executor",
        "lanes", "lint", "numeric", "obs", "optimization", "rare",
        "service", "simulation", "sweep", "topology", "vectorized",
    )
    #: Modules exempt from the rule (the obs facade itself).
    exempt_modules: tuple[str, ...] = ("repro.obs",)


@dataclass(frozen=True)
class NumericOptions:
    """RPR006: where bare ``math.exp`` is banned."""

    #: Dotted module prefixes counted as hot kernels.
    hot_modules: tuple[str, ...] = (
        "repro.algebra.",
        "repro.arrivals.",
        "repro.network.",
        "repro.simulation.",
        "repro.singlenode.",
    )
    #: The blessed overflow-safe helper.
    helper: str = "repro.utils.numeric.safe_exp"


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, with what options."""

    #: Rule ids to run; empty means every registered rule.
    select: tuple[str, ...] = ()
    #: Rule ids to skip (applied after ``select``).
    ignore: tuple[str, ...] = ()
    purity: PurityOptions = field(default_factory=PurityOptions)
    cache_key: CacheKeyOptions = field(default_factory=CacheKeyOptions)
    parity: ParityOptions = field(default_factory=ParityOptions)
    pickle: PicklabilityOptions = field(default_factory=PicklabilityOptions)
    obs: ObsOptions = field(default_factory=ObsOptions)
    numeric: NumericOptions = field(default_factory=NumericOptions)

    def active_rule_ids(self, all_ids: Iterable[str]) -> tuple[str, ...]:
        chosen = [
            rule_id
            for rule_id in all_ids
            if (not self.select or rule_id in self.select)
            and rule_id not in self.ignore
        ]
        return tuple(chosen)


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run found."""

    violations: tuple[Violation, ...]
    suppressed: tuple[tuple[Violation, str], ...]
    checked_files: int

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return not self.violations


def _apply_suppressions(
    file: SourceFile, found: Iterable[Violation]
) -> tuple[list[Violation], list[tuple[Violation, str]]]:
    """Split raw findings into (active, suppressed-with-justification)."""
    active: list[Violation] = []
    suppressed: list[tuple[Violation, str]] = []
    for violation in found:
        directive = file.noqa.get(violation.line)
        # RPR000 is never suppressible: `# repro: noqa=RPR000` would
        # otherwise silence its own missing-justification finding.
        if (
            directive is not None
            and violation.rule in directive.codes
            and violation.rule != "RPR000"
        ):
            suppressed.append((violation, directive.justification or ""))
        else:
            active.append(violation)
    return active, suppressed


def _noqa_hygiene(file: SourceFile) -> Iterator[Violation]:
    """RPR000: every suppression must carry a justification."""
    for directive in file.noqa.values():
        if not directive.justification:
            yield Violation(
                rule="RPR000",
                path=file.rel,
                line=directive.line,
                col=1,
                message=(
                    "suppression without a justification; write "
                    "`# repro: noqa="
                    + ",".join(sorted(directive.codes))
                    + " -- <why the invariant does not apply here>`"
                ),
            )


def lint_files(
    src_files: Sequence[SourceFile],
    test_files: Sequence[SourceFile] = (),
    *,
    config: LintConfig | None = None,
) -> LintReport:
    """Run the selected rules over ``src_files``.

    ``test_files`` are parsed into the project index (rule RPR003
    cross-references them for backend-equivalence evidence) but are not
    themselves lint targets.
    """
    # Imported here: rules import this module for the framework types.
    from repro.lint.project import ProjectIndex
    from repro.lint.rules import RULES

    config = config or LintConfig()
    index = ProjectIndex.build(
        list(src_files) + list(test_files), config=config
    )
    active_ids = config.active_rule_ids([rule.id for rule in RULES])
    rules = [rule for rule in RULES if rule.id in active_ids]

    violations: list[Violation] = []
    suppressed: list[tuple[Violation, str]] = []
    for file in src_files:
        found: list[Violation] = []
        for rule in rules:
            found.extend(rule.check(file, index, config))
        found.extend(_noqa_hygiene(file))
        found.sort(key=lambda v: (v.line, v.col, v.rule))
        kept, quiet = _apply_suppressions(file, found)
        violations.extend(kept)
        suppressed.extend(quiet)
    return LintReport(
        violations=tuple(violations),
        suppressed=tuple(suppressed),
        checked_files=len(src_files),
    )


def lint_repo(
    repo_root: Path, *, config: LintConfig | None = None
) -> LintReport:
    """Lint the repository layout: ``src/repro`` gated, ``tests/`` indexed."""
    src_root = repo_root / "src"
    src_files = collect_files(
        src_root / "repro", root=src_root, rel_to=repo_root
    )
    tests_dir = repo_root / "tests"
    test_files = (
        collect_files(
            tests_dir, root=repo_root, rel_to=repo_root, is_test=True
        )
        if tests_dir.is_dir()
        else []
    )
    return lint_files(src_files, test_files, config=config)
