"""Long-form rule documentation for ``python -m repro.lint --explain``.

Each entry states the invariant, why the repo depends on it, what the
checker actually looks at, and how to fix or suppress a finding.  The
same catalog feeds the SARIF rule metadata.
"""

from __future__ import annotations

__all__ = ["EXPLANATIONS", "explain"]

EXPLANATIONS: dict[str, str] = {
    "RPR000": """\
RPR000 — suppression hygiene

Every inline suppression must carry a justification:

    # repro: noqa=RPR001 -- deliberate I/O: diagnostic probe cell

A bare `# repro: noqa=RPRxxx` is reported as RPR000.  The justification
is the reviewable artifact: it records *why* the invariant does not
apply at that line, so a suppression never silently outlives its
reason.  RPR000 itself cannot be suppressed.
""",
    "RPR001": """\
RPR001 — cell purity

Functions registered as sweep cells (via `Cell.make("module:function")`
or a `*_CELL_FN` constant) are cached by a content hash of
(qualname, params).  The cache is only sound if the cell is a
deterministic pure function of its parameters, so inside a cell body
the checker forbids:

  * nondeterministic modules: random, secrets, uuid
  * ambient state: time.*, os.environ/getenv, datetime.*, numpy.random.*
  * I/O builtins: open(), input(), eval(), exec()
  * global / nonlocal declarations
  * reading module-level *mutable* state — any module name that is
    rebound, written through a subscript/attribute, or mutated in
    place (append/update/...) anywhere in its module
  * free variables that resolve to nothing at all

Never-mutated module constants, imports, and top-level definitions are
fine: they are part of the code content the cache already keys on.
The cell must also be a top-level function so the sweep runner can
resolve and pickle it.

Fix: thread the offending value through the cell's keyword parameters,
or hoist it into a real module constant.  For a deliberately
side-effectful diagnostic cell, suppress with a justified noqa.
""",
    "RPR002": """\
RPR002 — cache-key soundness

Cell parameters *are* the cache key: they are canonicalized to JSON and
hashed.  A parameter that does not canonicalize either crashes the
cache or, worse, hashes unstably across runs and silently defeats it.
The checker requires registered cells to declare:

  * keyword-only parameters (the sweep grid passes params by name)
  * no *args / **kwargs — the key needs an explicit parameter list
  * annotations drawn from JSON-canonicalizable types: str, int,
    float, bool, None, tuple[...] of the same, Optional/Union/Literal
    combinations, or a frozen dataclass
  * defaults that are literals, literal tuples, or module constants

Fix: tighten the annotation (e.g. `traffic: tuple` instead of a bare
object), freeze the dataclass the param carries, or decompose the
value into plain literals.
""",
    "RPR003": """\
RPR003 — backend parity

Any public function exposing a `backend=` selector is a claim that all
registered backends (currently: numpy, scalar) compute the same
answer.  The claim is only trustworthy while an equivalence test
exercises *every* backend, so the checker cross-references the test
ASTs and collects evidence per function name:

  * literal keywords: fn(..., backend="scalar")
  * parametrized loops: for backend in BACKENDS: fn(..., backend=backend)
    (credited with every backend named in the test module, and all
    registered backends when the BACKENDS constant itself is used)
  * cells driven through Cell.make("mod:cell_fn", backend=...)

Fix: add a test that calls the function once per registered backend
and asserts the results agree (see tests/experiments/
test_backend_parity.py for the pattern).
""",
    "RPR004": """\
RPR004 — executor picklability

The parallel and work-stealing executors ship work to worker processes
with pickle.  Two things therefore hold on everything crossing the
pool boundary (`.map` / `.map_stream` / `.imap` / `Process(target=)`):

  * the mapped callable must be a top-level function — lambdas and
    nested defs do not pickle
  * every dataclass reachable through the mapped callable's signature
    (transitively, through field annotations) must be declared
    @dataclass(frozen=True), so results are immutable value objects
    once they fan back in from the pool

Fix: hoist the callable to module level; add frozen=True to the
flagged dataclass (and fix any in-place field writes that reveals).
""",
    "RPR005": """\
RPR005 — obs conventions

Dashboards and the perf harness key on metric names, so names must be
statically knowable and namespaced.  The checker enforces, for every
`obs.add/observe/set_gauge` (and `registry.` equivalents):

  * the metric name is a string literal (or an f-string with a literal
    `namespace.` prefix) in dotted lower-snake form
  * the first segment is a registered namespace (batch, cache, cell,
    cli, cprobe, e2e, executor, lanes, lint, numeric, obs,
    optimization, rare, simulation, sweep, topology, vectorized)

and for `obs.trace`:

  * spans are opened only as `with obs.trace(...)` so they always
    close, even on exceptions.

Fix: rename the metric into its subsystem's namespace, or register a
new namespace in the lint config *and* the obs docs.
""",
    "RPR006": """\
RPR006 — numeric safety

`math.exp` raises OverflowError past ~709.78.  In the hot bound and
simulation kernels the exponent is a free optimization variable, so a
sufficiently bad (s, gamma) probe turns a merely-vacuous bound into a
crash deep inside an argmin sweep.  `repro.utils.numeric.safe_exp` is
bitwise-identical to math.exp below the overflow knee and saturates to
+inf above it, which propagates honestly through min/argmin searches.

The checker flags every `math.exp(X)` on a non-constant X inside the
hot modules (repro.algebra, repro.arrivals, repro.network,
repro.simulation, repro.singlenode).

Fix: `from repro.utils.numeric import safe_exp` and call that instead.
Vectorized numpy code is unaffected (np.exp overflows to inf with a
warning, not an exception).
""",
}


def explain(rule_id: str) -> str | None:
    """The long-form explanation for ``rule_id``, or None if unknown."""
    return EXPLANATIONS.get(rule_id.upper())
