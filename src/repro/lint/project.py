"""Cross-file facts the invariant rules consume: the project index.

Single-file AST checks cannot see the invariants that matter here —
whether a function is *registered* as a sweep cell (any file may call
``Cell.make``), whether a ``backend=`` API is exercised by an
equivalence test (the evidence lives in ``tests/``), or whether a
dataclass is reachable from a function mapped across the process-pool
boundary (the closure spans modules).  :class:`ProjectIndex` walks every
parsed file once up front and answers those questions for the rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lint.core import (
    LintConfig,
    PicklabilityOptions,
    SourceFile,
)

__all__ = [
    "CellRegistration",
    "DataclassInfo",
    "FunctionInfo",
    "ModuleBindings",
    "ProjectIndex",
    "dotted_name",
    "find_boundary_sites",
]

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Module constants named like ``FIG4_CELL_FN`` register their literal
#: ``"module:function"`` value as a sweep cell.
CELL_CONSTANT = re.compile(r"(?:^|_)CELL_FN$")
QUALNAME = re.compile(r"^[\w.]+:\w+$")

#: Method names that mutate their receiver in place: a module-level
#: name they are called on counts as module-level mutable state.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def chain_root(node: ast.AST) -> str | None:
    """The root Name of an Attribute/Subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ModuleBindings:
    """What the module-level names of one file are bound to."""

    #: Local alias -> real dotted source (``np`` -> ``numpy``,
    #: ``sleep`` -> ``time.sleep``).
    imports: dict[str, str]
    #: Top-level ``def``/``class`` names.
    defs: set[str]
    #: Names assigned at module level.
    assigned: set[str]
    #: Module-level names observed being rebound or mutated in place
    #: anywhere in the file — *not* constants.
    mutated: set[str]
    #: Single-assignment module names -> their value expression.
    constants: dict[str, ast.expr]

    def resolve(self, dotted: str) -> str:
        """Rewrite the chain root through the import table."""
        root, _, rest = dotted.partition(".")
        source = self.imports.get(root)
        if source is None:
            return dotted
        return source + ("." + rest if rest else "")


def _relative_source(file: SourceFile, node: ast.ImportFrom) -> str:
    if not node.level:
        return node.module or ""
    package = (file.module or "").split(".")
    base = package[: -node.level] if len(package) >= node.level else []
    if node.module:
        base = base + [node.module]
    return ".".join(base)


def module_bindings(file: SourceFile) -> ModuleBindings:
    """Scan one file for its module-level bindings and their mutations."""
    bindings = ModuleBindings(
        imports={}, defs=set(), assigned=set(), mutated=set(), constants={}
    )
    seen_assignments: dict[str, int] = {}

    def record_assign(name: str, value: ast.expr | None) -> None:
        bindings.assigned.add(name)
        seen_assignments[name] = seen_assignments.get(name, 0) + 1
        if value is not None:
            bindings.constants[name] = value

    def handle(stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    bindings.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings.imports[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            source = _relative_source(file, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings.imports[local] = (
                    f"{source}.{alias.name}" if source else alias.name
                )
        elif isinstance(stmt, FUNCTION_NODES + (ast.ClassDef,)):
            bindings.defs.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    record_assign(target.id, stmt.value)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            record_assign(element.id, None)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                record_assign(stmt.target.id, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                bindings.assigned.add(stmt.target.id)
                bindings.mutated.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    handle(child)
                elif isinstance(child, ast.ExceptHandler):
                    for grandchild in child.body:
                        handle(grandchild)

    for stmt in file.tree.body:
        handle(stmt)

    for name, count in seen_assignments.items():
        if count > 1:
            bindings.mutated.add(name)
            bindings.constants.pop(name, None)

    # Mutation scan over the whole file: in-place writes or rebinding
    # of module-level names anywhere (``global`` declarations included).
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Global):
            bindings.mutated.update(
                name for name in node.names if name in bindings.assigned
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = chain_root(target)
                    if root is not None and root in bindings.assigned:
                        bindings.mutated.add(root)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = chain_root(target)
                if root is not None and root in bindings.assigned:
                    bindings.mutated.add(root)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                root = chain_root(func.value)
                if root is not None and root in bindings.assigned:
                    bindings.mutated.add(root)

    for name in bindings.mutated:
        bindings.constants.pop(name, None)
    return bindings


@dataclass
class CellRegistration:
    """One ``module:function`` sweep-cell registration and where it is."""

    qualname: str
    path: str
    line: int

    @property
    def module(self) -> str:
        return self.qualname.split(":", 1)[0]

    @property
    def function(self) -> str:
        return self.qualname.split(":", 1)[1]


@dataclass
class FunctionInfo:
    """One top-level function definition."""

    name: str
    module: str | None
    file: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    has_backend_param: bool


@dataclass
class DataclassInfo:
    """One ``@dataclass`` definition and its field annotation names."""

    name: str
    module: str | None
    file: SourceFile
    node: ast.ClassDef
    frozen: bool
    field_types: tuple[str, ...]


def _dataclass_info(
    node: ast.ClassDef, file: SourceFile
) -> DataclassInfo | None:
    for decorator in node.decorator_list:
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        name = dotted_name(target)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    frozen = True
        field_types: list[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                field_types.extend(_annotation_names(stmt.annotation))
        return DataclassInfo(
            name=node.name,
            module=file.module,
            file=file,
            node=node,
            frozen=frozen,
            field_types=tuple(field_types),
        )
    return None


def _annotation_names(annotation: ast.AST) -> list[str]:
    """Every identifier appearing in a type annotation."""
    names: list[str] = []
    nodes: list[ast.AST] = [annotation]
    if (
        isinstance(annotation, ast.Constant)
        and isinstance(annotation.value, str)
    ):
        # String (forward-reference) annotation: re-parse it.
        try:
            nodes = [ast.parse(annotation.value, mode="eval").body]
        except SyntaxError:
            nodes = []
    for top in nodes:
        for node in ast.walk(top):
            if isinstance(node, ast.Name):
                names.append(node.id)
            elif isinstance(node, ast.Attribute):
                names.append(node.attr)
    return names


def _backend_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does this signature expose an optional ``backend=`` selector?

    Keyword-only ``backend`` counts always; positional ``backend``
    counts only when it carries a default (a bare positional is a
    validator-style helper, not a selectable API).
    """
    for arg in node.args.kwonlyargs:
        if arg.arg == "backend":
            return True
    positional = node.args.posonlyargs + node.args.args
    defaults_start = len(positional) - len(node.args.defaults)
    for position, arg in enumerate(positional):
        if arg.arg == "backend" and position >= defaults_start:
            return True
    return False


def _literal_qualname(
    node: ast.expr | None, bindings: ModuleBindings
) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Name):
        node = bindings.constants.get(node.id)
        if node is None:
            return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if QUALNAME.match(node.value):
            return node.value
    return None


def find_boundary_sites(
    file: SourceFile, options: PicklabilityOptions
) -> list[tuple[ast.Call, ast.expr]]:
    """Call sites shipping a callable across the process-pool boundary.

    Returns ``(call, callable_expr)`` pairs for ``x.map(fn, ...)``-style
    calls (any boundary attribute), calls through locals bound from
    ``getattr(executor, "map_stream", ...)`` or ``executor.map``, and
    ``Process(target=fn)`` spawns.
    """
    aliases: set[str] = set()
    for node in ast.walk(file.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        bound: str | None = None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "getattr"
            and len(value.args) >= 2
            and isinstance(value.args[1], ast.Constant)
            and value.args[1].value in options.boundary_attributes
        ):
            bound = "alias"
        elif (
            isinstance(value, ast.Attribute)
            and value.attr in options.boundary_attributes
        ):
            bound = "alias"
        if bound is not None:
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)

    sites: list[tuple[ast.Call, ast.expr]] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in options.boundary_attributes
            and node.args
        ):
            sites.append((node, node.args[0]))
        elif (
            isinstance(func, ast.Name) and func.id in aliases and node.args
        ):
            sites.append((node, node.args[0]))
        else:
            dotted = dotted_name(func)
            if dotted is not None and dotted.split(".")[-1] == "Process":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        sites.append((node, keyword.value))
    return sites


class ProjectIndex:
    """Cross-file facts: cells, backends, boundary closure, bindings."""

    def __init__(
        self,
        files: Sequence[SourceFile],
        config: LintConfig,
    ) -> None:
        self.files: tuple[SourceFile, ...] = tuple(files)
        self.config = config
        self._bindings: dict[str, ModuleBindings] = {}
        #: (module, name) -> top-level function definition.
        self.functions: dict[tuple[str | None, str], FunctionInfo] = {}
        #: bare class name -> dataclass definitions with that name.
        self.dataclasses: dict[str, list[DataclassInfo]] = {}
        #: "module:function" -> first registration site.
        self.cells: dict[str, CellRegistration] = {}
        #: bare function name -> backends evidenced by test calls.
        self.backend_evidence: dict[str, set[str]] = {}
        #: (file rel, class name) -> why it crosses the pool boundary.
        self.boundary_dataclasses: dict[tuple[str, str], str] = {}

    @classmethod
    def build(
        cls, files: Sequence[SourceFile], *, config: LintConfig
    ) -> "ProjectIndex":
        index = cls(files, config)
        for file in files:
            index._index_definitions(file)
        for file in files:
            index._index_cells(file)
        for file in files:
            if file.is_test:
                index._index_backend_evidence(file)
        index._index_boundary_closure()
        return index

    # -- per-file caches ------------------------------------------------

    def bindings_for(self, file: SourceFile) -> ModuleBindings:
        cached = self._bindings.get(file.rel)
        if cached is None:
            cached = module_bindings(file)
            self._bindings[file.rel] = cached
        return cached

    # -- definitions ----------------------------------------------------

    def _index_definitions(self, file: SourceFile) -> None:
        for stmt in file.tree.body:
            if isinstance(stmt, FUNCTION_NODES):
                info = FunctionInfo(
                    name=stmt.name,
                    module=file.module,
                    file=file,
                    node=stmt,
                    has_backend_param=_backend_param(stmt),
                )
                self.functions[(file.module, stmt.name)] = info
            elif isinstance(stmt, ast.ClassDef):
                info_dc = _dataclass_info(stmt, file)
                if info_dc is not None:
                    self.dataclasses.setdefault(stmt.name, []).append(
                        info_dc
                    )

    # -- cell registrations ---------------------------------------------

    def _register_cell(
        self, qualname: str, file: SourceFile, line: int
    ) -> None:
        self.cells.setdefault(
            qualname,
            CellRegistration(qualname=qualname, path=file.rel, line=line),
        )

    def _index_cells(self, file: SourceFile) -> None:
        bindings = self.bindings_for(file)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                tail = dotted.split(".")
                if tail[-1] == "make" and len(tail) >= 2 and tail[-2] == "Cell":
                    qualname = _literal_qualname(
                        node.args[0] if node.args else None, bindings
                    )
                    if qualname is not None:
                        self._register_cell(qualname, file, node.lineno)
                elif tail[-1] == "Cell":
                    for keyword in node.keywords:
                        if keyword.arg == "fn":
                            qualname = _literal_qualname(
                                keyword.value, bindings
                            )
                            if qualname is not None:
                                self._register_cell(
                                    qualname, file, node.lineno
                                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and CELL_CONSTANT.search(
                        target.id
                    ):
                        qualname = _literal_qualname(node.value, bindings)
                        if qualname is not None:
                            self._register_cell(qualname, file, node.lineno)

    def cell_registrations_in(
        self, file: SourceFile
    ) -> list[CellRegistration]:
        """Registered cells whose target function lives in ``file``."""
        if file.module is None:
            return []
        return [
            registration
            for registration in self.cells.values()
            if registration.module == file.module
        ]

    # -- backend evidence -----------------------------------------------

    def _index_backend_evidence(self, file: SourceFile) -> None:
        backends = set(self.config.parity.backends)
        module_literals: set[str] = set()
        references_backends_constant = False
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Constant) and node.value in backends:
                module_literals.add(str(node.value))
            elif isinstance(node, ast.Name) and node.id == "BACKENDS":
                references_backends_constant = True
        if references_backends_constant:
            module_literals |= backends

        def credit(name: str, evidenced: set[str]) -> None:
            if evidenced:
                self.backend_evidence.setdefault(name, set()).update(
                    evidenced
                )

        bindings = self.bindings_for(file)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            keyword = next(
                (kw for kw in node.keywords if kw.arg == "backend"), None
            )
            if keyword is None:
                continue
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                evidenced = {keyword.value.value} & backends
            else:
                evidenced = set(module_literals)
            dotted = dotted_name(node.func)
            callee = dotted.split(".")[-1] if dotted else None
            if callee is None:
                continue
            if callee == "make":
                # Cell.make("module:function", backend=...): credit the
                # cell function itself.
                qualname = _literal_qualname(
                    node.args[0] if node.args else None, bindings
                )
                if qualname is not None:
                    credit(qualname.split(":", 1)[1], evidenced)
            else:
                credit(callee, evidenced)

    # -- executor-boundary closure --------------------------------------

    def resolve_function(
        self, node: ast.expr, file: SourceFile
    ) -> FunctionInfo | None:
        """Resolve a callable expression to a top-level definition."""
        if isinstance(node, ast.Call):
            # functools.partial(fn, ...): the mapped callable is arg 0.
            dotted = dotted_name(node.func)
            if (
                dotted is not None
                and dotted.split(".")[-1] == "partial"
                and node.args
            ):
                return self.resolve_function(node.args[0], file)
            return None
        bindings = self.bindings_for(file)
        if isinstance(node, ast.Name):
            if node.id in bindings.defs:
                return self.functions.get((file.module, node.id))
            source = bindings.imports.get(node.id)
            if source is not None and "." in source:
                module, _, name = source.rpartition(".")
                return self.functions.get((module, name))
            return None
        dotted = dotted_name(node)
        if dotted is not None:
            resolved = bindings.resolve(dotted)
            if "." in resolved:
                module, _, name = resolved.rpartition(".")
                return self.functions.get((module, name))
        return None

    def _index_boundary_closure(self) -> None:
        roots: list[FunctionInfo] = []
        for file in self.files:
            if file.is_test:
                continue
            for _, fn_expr in find_boundary_sites(file, self.config.pickle):
                info = self.resolve_function(fn_expr, file)
                if info is not None:
                    roots.append(info)

        for root in roots:
            names: list[str] = []
            if root.node.returns is not None:
                names.extend(_annotation_names(root.node.returns))
            for arg in (
                root.node.args.posonlyargs
                + root.node.args.args
                + root.node.args.kwonlyargs
            ):
                if arg.annotation is not None:
                    names.extend(_annotation_names(arg.annotation))
            queue: list[tuple[str, tuple[str, ...]]] = [
                (name, ()) for name in names
            ]
            while queue:
                name, chain = queue.pop()
                for info_dc in self.dataclasses.get(name, ()):
                    key = (info_dc.file.rel, info_dc.name)
                    if key in self.boundary_dataclasses:
                        continue
                    path = " -> ".join(chain + (info_dc.name,))
                    self.boundary_dataclasses[key] = (
                        f"reachable from `{root.name}` "
                        f"(mapped across the executor pool boundary) "
                        f"via {path}"
                    )
                    for field_type in info_dc.field_types:
                        queue.append(
                            (field_type, chain + (info_dc.name,))
                        )
