"""The invariant rules: RPR001-RPR006.

Each rule is a small class with ``id``/``name``/``summary`` metadata and
a ``check(file, index, config)`` generator over violations.  The rules
lean on :class:`~repro.lint.project.ProjectIndex` for every cross-file
fact (cell registrations, test backend evidence, the executor-boundary
dataclass closure) so each ``check`` stays a single-file walk.

The catalog (also rendered by ``python -m repro.lint --list-rules``):

======  ==============================================================
RPR001  registered sweep cells must be pure functions of their params
RPR002  cell params (the cache key) must be JSON-canonicalizable
RPR003  every ``backend=`` API needs all backends test-exercised
RPR004  callables/dataclasses crossing the pool boundary must pickle
RPR005  metric names in registered namespaces; spans via ``with``
RPR006  hot kernels use ``safe_exp``, never bare ``math.exp``
======  ==============================================================
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Callable, ClassVar, Iterator

from repro.lint.core import (
    LintConfig,
    PurityOptions,
    SourceFile,
    Violation,
)
from repro.lint.project import (
    FUNCTION_NODES,
    ModuleBindings,
    ProjectIndex,
    dotted_name,
    find_boundary_sites,
)

__all__ = ["RULES", "Rule", "rules_by_id"]

_BUILTIN_NAMES = frozenset(dir(builtins)) | {
    "__name__",
    "__file__",
    "__doc__",
    "__package__",
    "__spec__",
}

#: Lower-snake dotted metric names: ``namespace.metric[.sub]``.
_METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


class Rule:
    """Base class: metadata plus the per-file check hook."""

    id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover


def _function_locals(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Every name bound inside ``node``: params, assignments, imports..."""
    bound: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.arg):
            bound.add(child.arg)
        elif isinstance(child, ast.Name) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            bound.add(child.id)
        elif isinstance(child, FUNCTION_NODES + (ast.ClassDef,)):
            if child is not node:
                bound.add(child.name)
        elif isinstance(child, (ast.Import, ast.ImportFrom)):
            for alias in child.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(child, ast.ExceptHandler) and child.name:
            bound.add(child.name)
    return bound


class CellPurity(Rule):
    """RPR001: registered sweep cells are pure functions of their params.

    The sweep cache keys results by ``(qualname, params)`` content hash;
    anything a cell reads outside its parameters silently poisons every
    cache hit.  Cells must be top-level (picklable), must not touch
    clocks/RNG/environment, and every free variable must resolve to an
    import, a top-level definition, or a never-mutated module constant.
    """

    id = "RPR001"
    name = "cell-purity"
    summary = "registered sweep cells must be pure functions of their params"

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        registrations = index.cell_registrations_in(file)
        if not registrations:
            return
        bindings = index.bindings_for(file)
        top_level = {
            stmt.name: stmt
            for stmt in file.tree.body
            if isinstance(stmt, FUNCTION_NODES)
        }
        options = config.purity
        for registration in registrations:
            node = top_level.get(registration.function)
            if node is None:
                nested = next(
                    (
                        candidate
                        for candidate in ast.walk(file.tree)
                        if isinstance(candidate, FUNCTION_NODES)
                        and candidate.name == registration.function
                    ),
                    None,
                )
                if nested is not None:
                    yield file.violation(
                        self.id,
                        nested,
                        f"cell `{registration.qualname}` is not a "
                        "top-level function; nested functions cannot be "
                        "resolved or pickled by the sweep runner",
                    )
                continue
            yield from self._check_body(
                node, registration.qualname, file, index, bindings, options
            )

    def _check_body(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        file: SourceFile,
        index: ProjectIndex,
        bindings: ModuleBindings,
        options: PurityOptions,
    ) -> Iterator[Violation]:
        local_names = _function_locals(node)
        seen: set[tuple[int, int, str]] = set()
        # Root Names of Attribute chains are reported at the Attribute
        # (with the full dotted path); skip the bare-Name duplicate.
        attribute_roots: set[int] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                target = child.value
                while isinstance(target, ast.Attribute):
                    target = target.value
                if isinstance(target, ast.Name):
                    attribute_roots.add(id(target))

        def emit(
            anchor: ast.AST, message: str
        ) -> Iterator[Violation]:
            key = (
                getattr(anchor, "lineno", 0),
                getattr(anchor, "col_offset", 0),
                message,
            )
            if key not in seen:
                seen.add(key)
                yield file.violation(self.id, anchor, message)

        for child in ast.walk(node):
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                yield from emit(
                    child,
                    f"cell `{qualname}` declares "
                    f"{'global' if isinstance(child, ast.Global) else 'nonlocal'}"
                    " state; cells must only write through their return "
                    "value",
                )
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Name
            ):
                called = child.func.id
                if (
                    called in options.forbidden_calls
                    and called not in local_names
                ):
                    yield from emit(
                        child,
                        f"cell `{qualname}` calls `{called}(...)`; cells "
                        "must not perform I/O outside the cached payload",
                    )
            elif isinstance(child, ast.Attribute):
                dotted = dotted_name(child)
                if dotted is None:
                    continue
                root = dotted.split(".")[0]
                if root in local_names:
                    continue
                reason = self._forbidden(
                    bindings.resolve(dotted), options
                )
                if reason is not None:
                    yield from emit(
                        child, f"cell `{qualname}` {reason}"
                    )
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Load
            ):
                name = child.id
                if name in local_names or name in _BUILTIN_NAMES:
                    continue
                if name in bindings.imports:
                    if id(child) in attribute_roots:
                        continue
                    source = bindings.imports[name]
                    reason = self._forbidden(source, options)
                    if reason is not None:
                        yield from emit(
                            child, f"cell `{qualname}` {reason}"
                        )
                    else:
                        yield from self._check_imported_mutable(
                            child, name, source, qualname, index, emit
                        )
                elif name in bindings.mutated:
                    yield from emit(
                        child,
                        f"cell `{qualname}` reads module-level mutable "
                        f"state `{name}`; pass it through params or make "
                        "it a constant",
                    )
                elif (
                    name not in bindings.defs
                    and name not in bindings.assigned
                ):
                    yield from emit(
                        child,
                        f"cell `{qualname}` reads free variable `{name}` "
                        "that does not flow from its params or module "
                        "constants",
                    )

    @staticmethod
    def _forbidden(resolved: str, options: PurityOptions) -> str | None:
        root = resolved.split(".")[0]
        if root in options.forbidden_modules:
            return (
                f"uses nondeterministic module `{root}` "
                f"(via `{resolved}`)"
            )
        for prefix in options.forbidden_attributes:
            base = prefix[:-1] if prefix.endswith(".") else prefix
            if resolved == base or resolved.startswith(base + "."):
                return f"reads `{resolved}` (ambient state)"
        return None

    @staticmethod
    def _check_imported_mutable(
        anchor: ast.AST,
        name: str,
        source: str,
        qualname: str,
        index: ProjectIndex,
        emit: Callable[[ast.AST, str], Iterator[Violation]],
    ) -> Iterator[Violation]:
        if "." not in source:
            return
        module, _, imported = source.rpartition(".")
        for other in index.files:
            if other.module == module:
                other_bindings = index.bindings_for(other)
                if imported in other_bindings.mutated:
                    yield from emit(
                        anchor,
                        f"cell `{qualname}` reads `{name}` which is "
                        f"module-level mutable state in `{module}`",
                    )
                break


class CacheKeySoundness(Rule):
    """RPR002: cell signatures (= cache keys) must canonicalize.

    The cell cache serializes params with canonical JSON; a parameter
    that is not a plain literal, tuple, or frozen dataclass either fails
    to serialize or (worse) serializes unstably across runs.
    """

    id = "RPR002"
    name = "cache-key-soundness"
    summary = "cell params must be JSON-canonicalizable literals"

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        registrations = index.cell_registrations_in(file)
        if not registrations:
            return
        bindings = index.bindings_for(file)
        top_level = {
            stmt.name: stmt
            for stmt in file.tree.body
            if isinstance(stmt, FUNCTION_NODES)
        }
        allowed = config.cache_key.allowed_annotations
        for registration in registrations:
            node = top_level.get(registration.function)
            if node is None:
                continue
            qualname = registration.qualname
            if node.args.args or node.args.posonlyargs:
                yield file.violation(
                    self.id,
                    node,
                    f"cell `{qualname}` takes positional parameters; "
                    "cell params are passed by keyword from the sweep "
                    "grid and must be keyword-only",
                )
            if node.args.vararg is not None or node.args.kwarg is not None:
                anchor = node.args.vararg or node.args.kwarg
                yield file.violation(
                    self.id,
                    anchor if anchor is not None else node,
                    f"cell `{qualname}` takes *args/**kwargs; the cache "
                    "key needs an explicit, annotated parameter list",
                )
            for arg, default in zip(
                node.args.kwonlyargs, node.args.kw_defaults
            ):
                if arg.annotation is None:
                    yield file.violation(
                        self.id,
                        arg,
                        f"cell `{qualname}` parameter `{arg.arg}` has no "
                        "annotation; annotate with a JSON-canonicalizable "
                        "type",
                    )
                elif not self._canonical(
                    arg.annotation, allowed, index
                ):
                    yield file.violation(
                        self.id,
                        arg,
                        f"cell `{qualname}` parameter `{arg.arg}` is "
                        "annotated with a type that does not "
                        "JSON-canonicalize; use literals, tuples, or a "
                        "frozen dataclass",
                    )
                if default is not None and not self._stable_default(
                    default
                ):
                    yield file.violation(
                        self.id,
                        default,
                        f"cell `{qualname}` parameter `{arg.arg}` has a "
                        "mutable or unstable default; defaults must be "
                        "literals or module constants",
                    )

    def _canonical(
        self,
        annotation: ast.AST,
        allowed: tuple[str, ...],
        index: ProjectIndex,
    ) -> bool:
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._canonical(parsed, allowed, index)
            return False
        if isinstance(annotation, ast.Name):
            if annotation.id in allowed:
                return True
            return any(
                info.frozen
                for info in index.dataclasses.get(annotation.id, ())
            )
        if isinstance(annotation, ast.Attribute):
            if annotation.attr in allowed:
                return True
            return any(
                info.frozen
                for info in index.dataclasses.get(annotation.attr, ())
            )
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return self._canonical(
                annotation.left, allowed, index
            ) and self._canonical(annotation.right, allowed, index)
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value)
            base_tail = base.split(".")[-1] if base else None
            if base_tail in ("tuple", "Tuple", "Optional", "Union", "Literal"):
                inner = annotation.slice
                elements = (
                    list(inner.elts)
                    if isinstance(inner, ast.Tuple)
                    else [inner]
                )
                if base_tail == "Literal":
                    return all(
                        isinstance(element, ast.Constant)
                        for element in elements
                    )
                return all(
                    isinstance(element, ast.Constant)
                    and element.value is Ellipsis
                    or self._canonical(element, allowed, index)
                    for element in elements
                )
        return False

    @staticmethod
    def _stable_default(default: ast.expr) -> bool:
        if isinstance(default, ast.Constant):
            return True
        if isinstance(default, ast.UnaryOp) and isinstance(
            default.operand, ast.Constant
        ):
            return True
        if isinstance(default, ast.Tuple):
            return all(
                CacheKeySoundness._stable_default(element)
                for element in default.elts
            )
        # A Name/Attribute default is a module constant resolved at def
        # time (e.g. DEFAULT_BACKEND); its value is pinned thereafter.
        return isinstance(default, (ast.Name, ast.Attribute))


class BackendParity(Rule):
    """RPR003: every ``backend=`` API has all backends test-exercised.

    The selector is only trustworthy if an equivalence test calls the
    function with *each* registered backend; the evidence is collected
    by cross-referencing the test ASTs (literal ``backend=`` keywords,
    loops over ``BACKENDS``, and ``Cell.make(..., backend=...)``).
    """

    id = "RPR003"
    name = "backend-parity"
    summary = "every backend= API needs all backends exercised by tests"

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        if file.is_test:
            return
        backends = set(config.parity.backends)
        for (module, name), info in index.functions.items():
            if info.file is not file:
                continue
            if not info.has_backend_param or name.startswith("_"):
                continue
            covered = index.backend_evidence.get(name, set())
            missing = sorted(backends - covered)
            if missing:
                yield file.violation(
                    self.id,
                    info.node,
                    f"`{name}` exposes backend= but no test exercises "
                    f"backend(s) {', '.join(repr(b) for b in missing)}; "
                    "add an equivalence test calling it with every "
                    "registered backend",
                )


class ExecutorPicklability(Rule):
    """RPR004: work crossing the process-pool boundary must pickle.

    Callables handed to ``map``/``map_stream``/``imap`` (or spawned as
    ``Process(target=...)``) must be top-level functions, and every
    dataclass reachable through their signatures must be frozen, so
    results are immutable once they cross process boundaries.
    """

    id = "RPR004"
    name = "executor-picklability"
    summary = "pool-boundary callables top-level; result dataclasses frozen"

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        sites = find_boundary_sites(file, config.pickle)
        if sites:
            site_map = {id(call): fn for call, fn in sites}
            yield from self._check_sites(file, site_map)
        for stmt in file.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            reason = index.boundary_dataclasses.get((file.rel, stmt.name))
            if reason is None:
                continue
            infos = [
                info
                for info in index.dataclasses.get(stmt.name, ())
                if info.file is file
            ]
            if infos and not infos[0].frozen:
                yield file.violation(
                    self.id,
                    stmt,
                    f"dataclass `{stmt.name}` is {reason} but is not "
                    "frozen; declare it @dataclass(frozen=True) so "
                    "pool results stay immutable",
                )

    def _check_sites(
        self, file: SourceFile, site_map: dict[int, ast.expr]
    ) -> Iterator[Violation]:
        def visit(
            node: ast.AST, scopes: tuple[frozenset[str], ...]
        ) -> Iterator[Violation]:
            if isinstance(node, ast.Call) and id(node) in site_map:
                fn_expr = site_map[id(node)]
                if isinstance(fn_expr, ast.Lambda):
                    yield file.violation(
                        self.id,
                        fn_expr,
                        "lambda passed across the executor pool "
                        "boundary; lambdas do not pickle — use a "
                        "top-level function",
                    )
                elif isinstance(fn_expr, ast.Name) and any(
                    fn_expr.id in scope for scope in scopes
                ):
                    yield file.violation(
                        self.id,
                        fn_expr,
                        f"`{fn_expr.id}` is a lambda or nested "
                        "definition but crosses the executor pool "
                        "boundary; it will not pickle — make it a "
                        "top-level function",
                    )
            if isinstance(node, ast.Module):
                module_lambdas = {
                    target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Lambda)
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                }
                scopes = scopes + (frozenset(module_lambdas),)
            if isinstance(node, FUNCTION_NODES):
                nested: set[str] = set()
                for stmt in node.body:
                    for child in ast.walk(stmt):
                        if (
                            isinstance(child, FUNCTION_NODES)
                            and child is not node
                        ):
                            nested.add(child.name)
                        elif isinstance(child, ast.Assign) and isinstance(
                            child.value, ast.Lambda
                        ):
                            for target in child.targets:
                                if isinstance(target, ast.Name):
                                    nested.add(target.id)
                scopes = scopes + (frozenset(nested),)
            for child in ast.iter_child_nodes(node):
                yield from visit(child, scopes)

        yield from visit(file.tree, ())


class ObsConventions(Rule):
    """RPR005: metric names live in registered namespaces; spans via with.

    Metric names must be literal dotted lower-snake strings whose first
    segment is a registered namespace (f-strings need a literal
    namespace prefix), and ``obs.trace`` spans may only be opened as
    ``with`` context managers so they always close.
    """

    id = "RPR005"
    name = "obs-conventions"
    summary = "metric names in registered namespaces; spans only via with"

    _RECEIVERS = frozenset({"obs", "registry"})
    _EMITTERS = frozenset({"add", "observe", "set_gauge"})

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        module = file.module or ""
        if any(
            module == exempt or module.startswith(exempt + ".")
            for exempt in config.obs.exempt_modules
        ):
            return
        with_contexts = {
            id(item.context_expr)
            for node in ast.walk(file.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        namespaces = set(config.obs.namespaces)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self._RECEIVERS
            ):
                continue
            if func.attr == "trace":
                if id(node) not in with_contexts:
                    yield file.violation(
                        self.id,
                        node,
                        "span opened outside a with-statement; use "
                        "`with obs.trace(...):` so the span always "
                        "closes",
                    )
                yield from self._check_name(file, node, namespaces)
            elif func.attr in self._EMITTERS:
                yield from self._check_name(file, node, namespaces)

    def _check_name(
        self, file: SourceFile, call: ast.Call, namespaces: set[str]
    ) -> Iterator[Violation]:
        name_expr: ast.expr | None = None
        if call.args:
            name_expr = call.args[0]
        else:
            for keyword in call.keywords:
                if keyword.arg == "name":
                    name_expr = keyword.value
        if name_expr is None:
            return
        if isinstance(name_expr, ast.Constant) and isinstance(
            name_expr.value, str
        ):
            name = name_expr.value
            if not _METRIC_NAME.match(name):
                yield file.violation(
                    self.id,
                    name_expr,
                    f"metric name {name!r} is not dotted lower-snake "
                    "(`namespace.metric`)",
                )
            elif name.split(".")[0] not in namespaces:
                yield file.violation(
                    self.id,
                    name_expr,
                    f"metric name {name!r} is outside the registered "
                    f"namespaces ({', '.join(sorted(namespaces))})",
                )
        elif isinstance(name_expr, ast.JoinedStr):
            first = name_expr.values[0] if name_expr.values else None
            prefix = (
                first.value
                if isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                else ""
            )
            if "." not in prefix or prefix.split(".")[0] not in namespaces:
                yield file.violation(
                    self.id,
                    name_expr,
                    "f-string metric name must start with a literal "
                    "`namespace.` prefix from the registered namespaces",
                )
        else:
            yield file.violation(
                self.id,
                name_expr,
                "metric name must be a string literal (or f-string "
                "with a literal namespace prefix) so the namespace is "
                "statically checkable",
            )


class NumericSafety(Rule):
    """RPR006: hot kernels route unbounded exponents through safe_exp.

    A bare ``math.exp`` raises :class:`OverflowError` past ~709.78; in
    the bound/simulation kernels that turns a vacuous bound into a
    crash deep inside an argmin sweep.  ``repro.utils.numeric.safe_exp``
    is bitwise-identical below the knee and saturates to ``inf`` above.
    """

    id = "RPR006"
    name = "numeric-safety"
    summary = "hot kernels use safe_exp, never bare math.exp"

    def check(
        self, file: SourceFile, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Violation]:
        module = file.module or ""
        if not any(
            module.startswith(prefix) or module == prefix.rstrip(".")
            for prefix in config.numeric.hot_modules
        ):
            return
        bindings = index.bindings_for(file)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if bindings.resolve(dotted) != "math.exp":
                continue
            argument = node.args[0] if node.args else None
            if isinstance(argument, ast.Constant) or (
                isinstance(argument, ast.UnaryOp)
                and isinstance(argument.operand, ast.Constant)
            ):
                continue
            yield file.violation(
                self.id,
                node,
                "bare math.exp on an unbounded expression in a hot "
                f"kernel; use {config.numeric.helper} (saturates to inf "
                "instead of raising OverflowError)",
            )


RULES: tuple[Rule, ...] = (
    CellPurity(),
    CacheKeySoundness(),
    BackendParity(),
    ExecutorPicklability(),
    ObsConventions(),
    NumericSafety(),
)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in RULES}
