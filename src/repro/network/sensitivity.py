"""Sensitivity sweeps around the end-to-end delay bound.

Diagnostic helpers a user of the library reaches for right after
computing a bound:

* :func:`delay_vs_epsilon` — how expensive is a stricter violation
  probability?  (For EBB traffic: affine in ``log(1/eps)``.)
* :func:`delay_vs_gamma` — the shape of the inner free-parameter
  objective, exposing how sharp the numeric optimum is;
* :func:`delay_vs_utilization` — the figure-2-style load curve for one
  scheduler;
* :func:`scheduler_gap_vs_hops` — the paper's question in one series:
  the relative FIFO-vs-BMUX and EDF-vs-BMUX gaps as the path grows.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.arrivals.ebb import EBB
from repro.arrivals.mmoo import MMOOParameters
from repro.network.e2e import (
    e2e_delay_bound,
    e2e_delay_bound_at_gamma,
    e2e_delay_bound_mmoo,
)
from repro.utils.validation import check_int, check_positive


def delay_vs_epsilon(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilons: Sequence[float],
    **kwargs,
) -> list[tuple[float, float]]:
    """Delay bound for each violation probability in ``epsilons``."""
    results = []
    for epsilon in epsilons:
        bound = e2e_delay_bound(
            through, cross, hops, capacity, delta, epsilon, **kwargs
        )
        results.append((epsilon, bound.delay))
    return results


def delay_vs_gamma(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    points: int = 25,
) -> list[tuple[float, float]]:
    """The inner objective ``d(gamma)`` on a log-spaced grid.

    Useful for inspecting how flat the optimum is (and hence how much
    grid resolution the numeric optimization needs).
    """
    check_int(points, "points", minimum=2)
    headroom = capacity - cross.rate - through.rate
    if headroom <= 0:
        return []
    gamma_max = headroom / (hops + 1)
    lo, hi = gamma_max * 1e-5, gamma_max * (1.0 - 1e-9)
    ratio = (hi / lo) ** (1.0 / (points - 1))
    results = []
    for i in range(points):
        gamma = lo * ratio**i
        bound = e2e_delay_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, gamma
        )
        results.append((gamma, bound.delay))
    return results


def delay_vs_utilization(
    traffic: MMOOParameters,
    n_through: int,
    utilizations: Sequence[float],
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    nominal_flow_rate: float = 0.15,
    s_grid: int = 12,
    gamma_grid: int = 12,
) -> list[tuple[float, float]]:
    """Delay bound as the cross load grows (through aggregate fixed)."""
    check_positive(nominal_flow_rate, "nominal_flow_rate")
    results = []
    for utilization in utilizations:
        n_total = round(utilization * capacity / nominal_flow_rate)
        n_cross = max(n_total - n_through, 0)
        bound = e2e_delay_bound_mmoo(
            traffic, n_through, n_cross, hops, capacity, delta, epsilon,
            s_grid=s_grid, gamma_grid=gamma_grid,
        )
        results.append((utilization, bound.delay))
    return results


def scheduler_gap_vs_hops(
    through: EBB,
    cross: EBB,
    hops_list: Sequence[int],
    capacity: float,
    epsilon: float,
    *,
    edf_delta: float = -10.0,
    **kwargs,
) -> list[tuple[int, float, float]]:
    """Per path length: relative gaps ``(H, fifo_gap, edf_gap)``.

    ``fifo_gap = 1 - d_FIFO / d_BMUX`` (shrinks toward 0 on long paths —
    the paper's FIFO-degenerates-to-BMUX finding); ``edf_gap`` likewise
    for EDF with the given ``Delta < 0`` (persists).
    """
    results = []
    for hops in hops_list:
        bmux = e2e_delay_bound(
            through, cross, hops, capacity, math.inf, epsilon, **kwargs
        ).delay
        fifo = e2e_delay_bound(
            through, cross, hops, capacity, 0.0, epsilon, **kwargs
        ).delay
        edf = e2e_delay_bound(
            through, cross, hops, capacity, edf_delta, epsilon, **kwargs
        ).delay
        if not math.isfinite(bmux) or bmux <= 0:
            results.append((hops, math.nan, math.nan))
            continue
        results.append((hops, 1.0 - fifo / bmux, 1.0 - edf / bmux))
    return results
