"""End-to-end backlog bounds through the network service curve.

A natural companion of the Section IV delay analysis: with the network
service curve ``S_net`` and the through envelope ``G = (rho + gamma) t``,

    ``b(sigma) = sup_t [ G(t) + sigma - S_net(t) ]``

bounds the total traffic of the through flow inside the network with the
same combined violation probability as the delay bound.  We construct
``S_net`` explicitly (Theorem 1 leftover curves at the delay-optimal
thetas, convolved per Eq. (30)) and take the exact vertical deviation.
Any theta choice yields a valid bound; reusing the delay-optimal thetas
is a good heuristic and the gamma/alpha parameters are re-optimized
numerically for the backlog objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrivals.ebb import EBB
from repro.arrivals.mmoo import MMOOParameters
from repro.network.convolution import network_service_curve
from repro.network.e2e import (
    _max_feasible_s,
    check_backend,
    mmoo_ebb_pair,
    sigma_for_epsilon,
)
from repro.network.optimization import homogeneous_hops, solve_exact
from repro.scheduling.delta import CustomDelta
from repro.service.leftover import leftover_service_curve
from repro.singlenode.backlog import backlog_bound_at_sigma
from repro.utils.numeric import grid_then_golden
from repro.utils.validation import check_int, check_positive, check_probability


@dataclass(frozen=True)
class BacklogResult:
    """Outcome of an end-to-end backlog-bound computation."""

    backlog: float
    sigma: float
    gamma: float
    alpha: float

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.backlog)


_INFEASIBLE = BacklogResult(math.inf, math.inf, 0.0, 0.0)


def e2e_backlog_bound_at_gamma(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    gamma: float,
    *,
    backend: str = "scalar",
) -> BacklogResult:
    """End-to-end backlog bound for a fixed rate degradation ``gamma``.

    ``backend="numpy"`` swaps the theta-optimization to the O(H log H)
    slope sweep (:func:`repro.network.vectorized.solve_exact_fast`),
    which returns the same ``x``/``thetas`` as :func:`solve_exact`; the
    service-curve machinery is shared.
    """
    check_backend(backend)
    hops = check_int(hops, "hops", minimum=1)
    check_positive(capacity, "capacity")
    check_probability(epsilon, "epsilon")
    if (hops + 1) * gamma >= capacity - cross.rate - through.rate:
        return _INFEASIBLE
    try:
        sigma = sigma_for_epsilon(through, [cross] * hops, gamma, epsilon)
    except ValueError:
        return _INFEASIBLE

    if backend == "numpy":
        from repro.network.vectorized import solve_exact_fast as solver
    else:
        solver = solve_exact
    # thetas: reuse the delay-optimal point (any choice is valid)
    solution = solver(
        homogeneous_hops(hops, capacity, gamma, cross.rate, delta), sigma
    )
    scheduler = CustomDelta({("through", "cross"): delta})
    cross_env = cross.sample_path_envelope(gamma)
    curves = [
        leftover_service_curve(
            scheduler, "through", capacity, {"cross": cross_env}, theta
        )
        for theta in solution.thetas
    ]
    net = network_service_curve(curves, gamma)
    through_env = through.sample_path_envelope(gamma)
    backlog, _ = backlog_bound_at_sigma(through_env, net, sigma)
    return BacklogResult(backlog, sigma, gamma, through.decay)


def e2e_backlog_bound(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    gamma: float | None = None,
    gamma_grid: int = 24,
    backend: str = "numpy",
) -> BacklogResult:
    """End-to-end backlog bound, optimizing ``gamma`` numerically."""
    check_backend(backend)
    if gamma is not None:
        return e2e_backlog_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, gamma,
            backend=backend,
        )
    headroom = capacity - cross.rate - through.rate
    if headroom <= 0:
        return _INFEASIBLE
    gamma_max = headroom / (hops + 1)
    g_best, _ = grid_then_golden(
        lambda g: e2e_backlog_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, g,
            backend=backend,
        ).backlog,
        gamma_max * 1e-6,
        gamma_max * (1.0 - 1e-9),
        grid_points=gamma_grid,
        log_spaced=True,
    )
    return e2e_backlog_bound_at_gamma(
        through, cross, hops, capacity, delta, epsilon, g_best,
        backend=backend,
    )


def e2e_backlog_bound_mmoo(
    traffic: MMOOParameters,
    n_through: int,
    n_cross: int,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    s_grid: int = 16,
    gamma_grid: int = 16,
    backend: str = "numpy",
) -> BacklogResult:
    """Backlog bound for MMOO aggregates, optimizing ``(s, gamma)``."""
    n_through = check_int(n_through, "n_through", minimum=1)
    n_cross = check_int(n_cross, "n_cross", minimum=0)
    if (n_through + n_cross) * traffic.mean_rate >= capacity:
        return _INFEASIBLE
    s_max = _max_feasible_s(traffic, n_through + max(n_cross, 1), capacity)

    def at_s(s: float) -> BacklogResult:
        through, cross = mmoo_ebb_pair(traffic, n_through, n_cross, s)
        return e2e_backlog_bound(
            through, cross, hops, capacity, delta, epsilon,
            gamma_grid=gamma_grid, backend=backend,
        )

    s_best, _ = grid_then_golden(
        lambda s: at_s(s).backlog,
        s_max * 1e-4,
        s_max * (1.0 - 1e-9),
        grid_points=s_grid,
        log_spaced=True,
    )
    return at_s(s_best)
