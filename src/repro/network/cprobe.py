"""Generated-C batch evaluator for the scalar end-to-end probe.

The batched sweep execution of :mod:`repro.network.lanes` evaluates the
same scalar objective as :func:`repro.network.vectorized._e2e_probe`,
but tens of thousands of times per cell group — every golden-section
refinement step of every (lane, s) search chain.  At that volume the
Python interpreter is the bottleneck, not the math.  This module emits a
small C translation unit that mirrors the probe's floating-point
expression trees *operation for operation* — the Eq. (33) sigma chain,
the FIFO/BMUX closed forms (Eqs. 43-44), and the slope-sweep exact
theta minimization with its near-minimum re-evaluation window — and
compiles it on first use with the system C compiler.

Bitwise contract
----------------
The C kernel computes the identical IEEE-754 double sequence as
``_e2e_probe``: same operations in the same association order, libm
``expm1``/``log``/``exp`` (the same functions CPython's ``math`` module
calls in-process), and strict FP semantics (``-fno-fast-math
-ffp-contract=off``, no reassociation, no FMA contraction).  The test
suite pins value equality against ``_e2e_probe`` over randomized
parameters in every ``Delta`` case.

Availability
------------
Compilation needs a C compiler (``cc``) on ``PATH``.  When compilation
is impossible, :func:`available` is ``False`` and
:func:`probe_values` transparently falls back to looping
``_e2e_probe`` in Python — identical results, just slower.  The shared
object is cached in the system temp directory keyed by a hash of the C
source, so the compiler runs once per source revision, not once per
process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Sequence

import numpy as np

from repro import obs
from repro.arrivals.ebb import EBB

__all__ = [
    "available",
    "ProbeTable",
    "probe_values",
    "golden_values",
    "CTX_FIELDS",
]

#: Per-context field layout of the C kernel's context table (one row per
#: registered (lane, s) search context).
CTX_FIELDS = (
    "through_prefactor",
    "through_decay",
    "through_rate",
    "cross_prefactor",
    "cross_decay",
    "cross_rate",
    "hops",
    "capacity",
    "delta",
    "epsilon",
)
_NFIELDS = len(CTX_FIELDS)

#: Paths longer than this fall back to the Python probe (the C kernel
#: uses fixed-size stack buffers).
MAX_HOPS = 1024

_C_SOURCE = r"""
#include <math.h>
#include <stdlib.h>

#define TPRE 0
#define TDEC 1
#define TRATE 2
#define CPRE 3
#define CDEC 4
#define CRATE 5
#define HOPS 6
#define CAP 7
#define DELTA 8
#define EPS 9
#define NF 10

#define MAX_HOPS 1024
#define SWEEP_WINDOW 1e-9

/* mirror of vectorized._sigma_fast (inf on underflow) */
static double sigma_fast(const double *c, int hops, double gamma)
{
    double geo_t = -expm1(-c[TDEC] * gamma);
    double geo_c = -expm1(-c[CDEC] * gamma);
    if (!(geo_t > 0.0) || !(geo_c > 0.0))
        return INFINITY;
    double w = 1.0 / c[TDEC];
    for (int i = 0; i < hops; i++)
        w += 1.0 / c[CDEC];
    double log_m = log(w);
    log_m += log((c[TPRE] / geo_t) * c[TDEC]) / (c[TDEC] * w);
    double last = c[CPRE] / geo_c;
    double inflated = last / geo_c;
    double term_inflated = log(inflated * c[CDEC]) / (c[CDEC] * w);
    for (int i = 0; i < hops - 1; i++)
        log_m += term_inflated;
    log_m += log(last * c[CDEC]) / (c[CDEC] * w);
    double prefactor = exp(log_m);
    double alpha = 1.0 / w;
    double sigma = log(prefactor / c[EPS]) / alpha;
    /* Python max(0.0, v): returns 0.0 unless v > 0.0 (incl. v = NaN) */
    return sigma > 0.0 ? sigma : 0.0;
}

/* mirror of vectorized._fifo_closed_form (Eq. 44) */
static double fifo_closed_form(int hops, double capacity, double rho_cross,
                               double gamma, double sigma)
{
    double r = rho_cross + gamma;
    double tails[MAX_HOPS + 1];
    tails[hops] = 0.0;
    for (int k = hops - 1; k >= 0; k--) {
        double r_svc = capacity - k * gamma;
        tails[k] = tails[k + 1] + (r_svc - r) / r_svc;
    }
    int k = hops;
    for (int kk = 0; kk <= hops; kk++) {
        if (tails[kk] < 1.0) { k = kk; break; }
    }
    if (k == 0) {
        double total = 0.0;
        for (int h = 1; h <= hops; h++)
            total += sigma / (capacity - (h - 1) * gamma);
        return total;
    }
    double denom = capacity - rho_cross - k * gamma;
    if (denom <= 0.0)
        return INFINITY;
    double x = sigma / denom;
    double total = x;
    for (int h = k + 1; h <= hops; h++)
        total += (h - k) * gamma * x / (capacity - (h - 1) * gamma);
    return total;
}

/* mirror of vectorized._objective_homogeneous */
static double objective_homog(double capacity, double r, double delta,
                              double sigma, int hops, double gamma, double x)
{
    double total = 0.0;
    if (delta == -INFINITY) {
        for (int k = 0; k < hops; k++) {
            double t = sigma / (capacity - k * gamma) - x;
            if (t > 0.0) total += t;
        }
    } else if (delta == INFINITY) {
        for (int k = 0; k < hops; k++) {
            double t = sigma / ((capacity - k * gamma) - r) - x;
            if (t > 0.0) total += t;
        }
    } else if (delta <= 0.0) {
        double clipped = x + delta;
        if (clipped < 0.0) clipped = 0.0;
        double numerator = sigma + r * clipped;
        for (int k = 0; k < hops; k++) {
            double t = numerator / (capacity - k * gamma) - x;
            if (t > 0.0) total += t;
        }
    } else {
        for (int k = 0; k < hops; k++) {
            double r_svc = capacity - k * gamma;
            double denom = r_svc - r;
            double theta_low = (sigma - denom * x) / denom;
            if (theta_low <= delta) {
                if (theta_low > 0.0) total += theta_low;
            } else {
                double t = (sigma + r * (x + delta)) / r_svc - x;
                total += t > delta ? t : delta;
            }
        }
    }
    return x + total;
}

/* events sort like Python tuples: by x, ties by change */
static int ev_cmp(const void *pa, const void *pb)
{
    const double *a = (const double *)pa;
    const double *b = (const double *)pb;
    if (a[0] < b[0]) return -1;
    if (a[0] > b[0]) return 1;
    if (a[1] < b[1]) return -1;
    if (a[1] > b[1]) return 1;
    return 0;
}

/* mirror of vectorized._sweep_homogeneous (delay value only) */
static double sweep_homog(double capacity, double r, double delta,
                          double sigma, int hops, double gamma)
{
    double events[(3 * MAX_HOPS + 8) * 2];
    int n_ev = 0;
    double d0 = 0.0;
    double slope = 1.0;

    if (delta == -INFINITY) {
        for (int k = 0; k < hops; k++) {
            double k1 = sigma / (capacity - k * gamma);
            if (k1 > 0.0) {
                d0 += k1;
                slope -= 1.0;
                events[2 * n_ev] = k1; events[2 * n_ev + 1] = 1.0; n_ev++;
            }
        }
    } else if (delta == INFINITY) {
        for (int k = 0; k < hops; k++) {
            double denom = (capacity - k * gamma) - r;
            if (denom <= 0.0)
                return INFINITY;
            double k1 = sigma / denom;
            if (k1 > 0.0) {
                d0 += k1;
                slope -= 1.0;
                events[2 * n_ev] = k1; events[2 * n_ev + 1] = 1.0; n_ev++;
            }
        }
    } else if (delta <= 0.0) {
        double a = -delta;
        for (int k = 0; k < hops; k++) {
            double r_svc = capacity - k * gamma;
            double k1 = sigma / r_svc;
            double denom = r_svc - r;
            if (k1 <= 0.0)
                continue;
            if (k1 < a) {
                d0 += k1;
                slope -= 1.0;
                events[2 * n_ev] = k1; events[2 * n_ev + 1] = 1.0; n_ev++;
                events[2 * n_ev] = a; events[2 * n_ev + 1] = 0.0; n_ev++;
                if (denom > 0.0) {
                    double k2 = (sigma + r * delta) / denom;
                    if (k2 > 0.0 && isfinite(k2)) {
                        events[2 * n_ev] = k2;
                        events[2 * n_ev + 1] = 0.0; n_ev++;
                    }
                }
            } else {
                if (denom <= 0.0)
                    return INFINITY;
                double ratio = r / r_svc;
                double k2 = (sigma + r * delta) / denom;
                d0 += k1;
                if (a > 0.0) {
                    slope -= 1.0;
                    events[2 * n_ev] = a;
                    events[2 * n_ev + 1] = ratio; n_ev++;
                    events[2 * n_ev] = k2;
                    events[2 * n_ev + 1] = 1.0 - ratio; n_ev++;
                } else {
                    slope += ratio - 1.0;
                    if (k2 > 0.0) {
                        events[2 * n_ev] = k2;
                        events[2 * n_ev + 1] = 1.0 - ratio; n_ev++;
                    }
                }
                events[2 * n_ev] = k1; events[2 * n_ev + 1] = 0.0; n_ev++;
            }
        }
    } else {
        for (int k = 0; k < hops; k++) {
            double r_svc = capacity - k * gamma;
            double denom = r_svc - r;
            if (denom <= 0.0)
                return INFINITY;
            double z = sigma / denom;
            if (z <= 0.0)
                continue;
            double ratio = r / r_svc;
            double bp = z - delta;
            double aux = (sigma + r * (0.0 + delta)) / r_svc;
            if (bp <= 0.0) {
                d0 += z;
                slope -= 1.0;
                events[2 * n_ev] = z; events[2 * n_ev + 1] = 1.0; n_ev++;
            } else {
                d0 += (sigma + r * delta) / r_svc;
                slope += ratio - 1.0;
                events[2 * n_ev] = bp;
                events[2 * n_ev + 1] = -ratio; n_ev++;
                events[2 * n_ev] = z; events[2 * n_ev + 1] = 1.0; n_ev++;
            }
            if (aux > 0.0 && isfinite(aux)) {
                events[2 * n_ev] = aux; events[2 * n_ev + 1] = 0.0; n_ev++;
            }
        }
    }

    qsort(events, n_ev, 2 * sizeof(double), ev_cmp);

    double cand_x[3 * MAX_HOPS + 9];
    double cand_a[3 * MAX_HOPS + 9];
    int n_cand = 0;
    cand_x[n_cand] = 0.0;
    cand_a[n_cand] = d0;
    n_cand++;
    double acc = d0;
    double acc_min = d0;
    double cur = slope;
    double prev = 0.0;
    for (int i = 0; i < n_ev; i++) {
        double x = events[2 * i];
        double change = events[2 * i + 1];
        acc += cur * (x - prev);
        prev = x;
        cand_x[n_cand] = x;
        cand_a[n_cand] = acc;
        n_cand++;
        if (acc < acc_min)
            acc_min = acc;
        cur += change;
    }

    /* Python max(1.0, abs(m)): 1.0 unless abs(m) > 1.0 (incl. NaN) */
    double am = fabs(acc_min);
    double scale = am > 1.0 ? am : 1.0;
    double window = acc_min + SWEEP_WINDOW * scale;
    double best_d = INFINITY;
    for (int i = 0; i < n_cand; i++) {
        if (cand_a[i] <= window) {
            double d = objective_homog(capacity, r, delta, sigma, hops,
                                       gamma, cand_x[i]);
            if (d < best_d)
                best_d = d;
        }
    }
    return best_d;
}

/* mirror of vectorized._e2e_probe */
static double probe_one(const double *c, double gamma)
{
    int hops = (int)c[HOPS];
    if (hops < 1 || hops > MAX_HOPS)
        return NAN;
    if ((hops + 1) * gamma >= c[CAP] - c[CRATE] - c[TRATE])
        return INFINITY;
    double sigma = sigma_fast(c, hops, gamma);
    if (!isfinite(sigma))
        return INFINITY;
    double delta = c[DELTA];
    if (delta == INFINITY) {
        double denom = (c[CAP] - (hops - 1) * gamma) - (c[CRATE] + gamma);
        return denom > 0.0 ? sigma / denom : INFINITY;
    }
    if (delta == 0.0)
        return fifo_closed_form(hops, c[CAP], c[CRATE], gamma, sigma);
    double r = c[CRATE] + gamma;
    return sweep_homog(c[CAP], r, delta, sigma, hops, gamma);
}

void probe_values(long n, const double *ctx, const long *idx,
                  const double *gammas, double *out)
{
    for (long i = 0; i < n; i++)
        out[i] = probe_one(ctx + NF * idx[i], gammas[i]);
}

/* (sqrt(5) - 1) / 2, same double as Python's _GOLDEN (IEEE sqrt is
 * correctly rounded, the rest is exact arithmetic) */
#define GOLDEN ((sqrt(5.0) - 1.0) / 2.0)

/* mirror of numeric.golden_section_min driven by probe_one; NaN out
 * signals "recompute in Python" (path beyond MAX_HOPS) */
static void golden_refine(const double *c, double lo, double hi,
                          double tol, long max_iter, double *out)
{
    double a = lo, b = hi;
    double x1 = b - GOLDEN * (b - a);
    double x2 = a + GOLDEN * (b - a);
    double f1 = probe_one(c, x1);
    double f2 = probe_one(c, x2);
    for (long i = 0; i < max_iter; i++) {
        if (isnan(f1) || isnan(f2)) {
            out[0] = NAN;
            out[1] = NAN;
            return;
        }
        /* Python max(1.0, abs(a) + abs(b)) */
        double span = fabs(a) + fabs(b);
        double scale = span > 1.0 ? span : 1.0;
        if (b - a <= tol * scale)
            break;
        if (f1 <= f2) {
            b = x2; x2 = x1; f2 = f1;
            x1 = b - GOLDEN * (b - a);
            f1 = probe_one(c, x1);
        } else {
            a = x1; x1 = x2; f1 = f2;
            x2 = a + GOLDEN * (b - a);
            f2 = probe_one(c, x2);
        }
    }
    if (isnan(f1) || isnan(f2)) {
        out[0] = NAN;
        out[1] = NAN;
        return;
    }
    if (f1 <= f2) {
        out[0] = x1;
        out[1] = f1;
    } else {
        out[0] = x2;
        out[1] = f2;
    }
}

void golden_values(long n, const double *ctx, const long *idx,
                   const double *los, const double *his,
                   double tol, long max_iter,
                   double *out_x, double *out_f)
{
    for (long i = 0; i < n; i++) {
        double pair[2];
        golden_refine(ctx + NF * idx[i], los[i], his[i], tol, max_iter,
                      pair);
        out_x[i] = pair[0];
        out_f[i] = pair[1];
    }
}
"""

_STRICT_FLAGS = [
    "-O2",
    "-fPIC",
    "-shared",
    "-fno-fast-math",
    "-ffp-contract=off",
]

_lib: ctypes.CDLL | None = None
_lib_checked = False


def _source_key() -> str:
    return hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]


def _compile() -> ctypes.CDLL | None:
    """Compile (or reuse) the kernel; ``None`` when no compiler works."""
    cache_dir = os.environ.get("REPRO_CPROBE_DIR") or tempfile.gettempdir()
    so_path = os.path.join(cache_dir, f"repro_cprobe_{_source_key()}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(
            cache_dir, f"repro_cprobe_{_source_key()}.c"
        )
        try:
            with open(src_path, "w") as handle:
                handle.write(_C_SOURCE)
            tmp_so = so_path + f".tmp{os.getpid()}"
            subprocess.run(
                ["cc", *_STRICT_FLAGS, "-o", tmp_so, src_path, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_so, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(so_path)
        lib.probe_values.argtypes = [
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_long),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_double),
        ]
        lib.probe_values.restype = None
        lib.golden_values.argtypes = [
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_long),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_double,
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_double),
        ]
        lib.golden_values.restype = None
        return lib
    except OSError:
        return None


def _get_lib() -> ctypes.CDLL | None:
    global _lib, _lib_checked
    if not _lib_checked:
        _lib = _compile()
        _lib_checked = True
        if obs.enabled():
            obs.set_gauge("cprobe.available", bool(_lib))
    return _lib


def available() -> bool:
    """Whether the compiled kernel is usable in this environment."""
    return _get_lib() is not None


class ProbeTable:
    """A registry of probe contexts for one batched solve.

    Each context is one ``(through, cross, hops, capacity, delta,
    epsilon)`` tuple — everything of the probe except ``gamma``.  The
    table keeps both a packed float row (for the C kernel, in a
    geometrically grown buffer so registrations between kernel calls
    never trigger a full repack) and the original
    :class:`~repro.arrivals.ebb.EBB` pair (for the Python fallback), so
    either execution path serves the same requests.
    """

    def __init__(self) -> None:
        self._buf = np.empty((256, _NFIELDS), dtype=np.float64)
        self._n = 0
        self._objs: list[tuple[EBB, EBB, int, float, float, float]] = []

    def __len__(self) -> int:
        return self._n

    def add(
        self,
        through: EBB,
        cross: EBB,
        hops: int,
        capacity: float,
        delta: float,
        epsilon: float,
    ) -> int:
        """Register a context; returns its index."""
        if self._n == len(self._buf):
            grown = np.empty((2 * len(self._buf), _NFIELDS), dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = (
            through.prefactor,
            through.decay,
            through.rate,
            cross.prefactor,
            cross.decay,
            cross.rate,
            float(hops),
            capacity,
            delta,
            epsilon,
        )
        self._objs.append(
            (through, cross, hops, capacity, delta, epsilon)
        )
        self._n += 1
        return self._n - 1

    def context(self, index: int) -> tuple[EBB, EBB, int, float, float, float]:
        return self._objs[index]

    def packed(self) -> np.ndarray:
        return self._buf


def _probe_python(
    table: ProbeTable, indices: Sequence[int], gammas: Sequence[float]
) -> np.ndarray:
    from repro.network.vectorized import _e2e_probe

    out = np.empty(len(indices), dtype=np.float64)
    for pos, (index, gamma) in enumerate(zip(indices, gammas)):
        through, cross, hops, capacity, delta, epsilon = table.context(index)
        out[pos] = _e2e_probe(
            through, cross, hops, capacity, delta, epsilon, gamma
        )
    return out


def _golden_python(
    table: ProbeTable,
    indices: Sequence[int],
    los: Sequence[float],
    his: Sequence[float],
    *,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, np.ndarray]:
    from repro.network.vectorized import _e2e_probe
    from repro.utils.numeric import golden_section_min

    out_x = np.empty(len(indices), dtype=np.float64)
    out_f = np.empty(len(indices), dtype=np.float64)
    for pos, (index, lo, hi) in enumerate(zip(indices, los, his)):
        through, cross, hops, capacity, delta, epsilon = table.context(index)
        out_x[pos], out_f[pos] = golden_section_min(
            lambda g: _e2e_probe(
                through, cross, hops, capacity, delta, epsilon, g
            ),
            lo,
            hi,
            tol=tol,
            max_iter=max_iter,
        )
    return out_x, out_f


def golden_values(
    table: ProbeTable,
    indices: Sequence[int],
    los: Sequence[float],
    his: Sequence[float],
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> tuple[np.ndarray, np.ndarray]:
    """Run a probe-driven golden-section refinement per request.

    Each request ``(context, lo, hi)`` runs the full
    :func:`repro.utils.numeric.golden_section_min` loop over the probe
    objective inside the C kernel — one C call for the whole batch
    instead of ~45 sequential probe rounds per search.  Returns
    ``(xs, fs)`` arrays, bitwise-identical to driving the Python golden
    section with scalar probes.
    """
    lib = _get_lib()
    if lib is None:
        return _golden_python(
            table, indices, los, his, tol=tol, max_iter=max_iter
        )
    n = len(indices)
    idx = np.ascontiguousarray(indices, dtype=np.int64)
    lo = np.ascontiguousarray(los, dtype=np.float64)
    hi = np.ascontiguousarray(his, dtype=np.float64)
    ctx = table.packed()
    out_x = np.empty(n, dtype=np.float64)
    out_f = np.empty(n, dtype=np.float64)
    as_double = ctypes.POINTER(ctypes.c_double)
    lib.golden_values(
        n,
        ctx.ctypes.data_as(as_double),
        idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        lo.ctypes.data_as(as_double),
        hi.ctypes.data_as(as_double),
        tol,
        max_iter,
        out_x.ctypes.data_as(as_double),
        out_f.ctypes.data_as(as_double),
    )
    bad = np.isnan(out_x)
    if bad.any():
        # paths beyond the C kernel's stack bound: Python fallback
        fix = [int(i) for i in np.nonzero(bad)[0]]
        out_x[bad], out_f[bad] = _golden_python(
            table,
            [indices[i] for i in fix],
            [los[i] for i in fix],
            [his[i] for i in fix],
            tol=tol,
            max_iter=max_iter,
        )
    return out_x, out_f


def probe_values(
    table: ProbeTable, indices: Sequence[int], gammas: Sequence[float]
) -> np.ndarray:
    """Evaluate the probe for every ``(context, gamma)`` request.

    One C call for the whole batch when the compiled kernel is
    available; a Python ``_e2e_probe`` loop otherwise.  Values are
    bitwise-identical either way.
    """
    lib = _get_lib()
    if lib is None:
        return _probe_python(table, indices, gammas)
    n = len(indices)
    idx = np.ascontiguousarray(indices, dtype=np.int64)
    g = np.ascontiguousarray(gammas, dtype=np.float64)
    ctx = table.packed()
    out = np.empty(n, dtype=np.float64)
    lib.probe_values(
        n,
        ctx.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        g.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    bad = np.isnan(out)
    if bad.any():
        # paths beyond the C kernel's stack bound: Python fallback
        fix = [int(i) for i in np.nonzero(bad)[0]]
        out[bad] = _probe_python(
            table, [indices[i] for i in fix], [gammas[i] for i in fix]
        )
    return out
