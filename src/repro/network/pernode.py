"""Node-by-node additive delay analysis (the Example 3 baseline).

This is the analysis sketched in the paper's first paragraph and evaluated
in Fig. 4: instead of convolving service curves into a network service
curve, bound the delay at each node separately — propagating the through
traffic's (degrading) EBB characterization from node to node — and add the
per-node bounds.  In discrete time the delays computed this way grow like
``O(H^3 log H)`` (paper Sec. V-C), far worse than the ``Theta(H log H)``
of the network-service-curve bound.

Recursion (blind multiplexing, following the discrete-time version of the
node-by-node analysis in [6]):

* at node ``h`` the through traffic is EBB ``(M_h, rho_h, alpha_h)`` with
  ``rho_h = rho + (h-1) gamma`` (each hop's sample-path envelope costs a
  rate slack ``gamma``);
* the node's leftover service is the constant rate ``C - rho_c - gamma``
  with the cross sample-path bound;
* the node delay bound is ``d_h(sigma_h) = sigma_h / (C - rho_c - gamma)``
  with the combined bound ``eps_h = (through sample-path) (+) (cross
  sample-path)``;
* the departures are EBB with rate ``rho_h + gamma`` and the same combined
  bound (output theorem), so ``alpha_{h+1} = (1/alpha_h + 1/alpha_c)^{-1}``
  — the decay degrades harmonically, and the prefactors pick up a
  ``1/(1 - e^{-alpha_h gamma})`` at every hop, which is what drives the
  cubic growth.

Because every ``d_h`` has the same coefficient ``1/(C - rho_c - gamma)``,
the optimal split of the total violation probability over nodes reduces to
a single application of Eq. (33): ``d_total = sigma_total / (C - rho_c -
gamma)`` with ``sigma_total`` from the combined per-node bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrivals.ebb import EBB
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.statistical import ExponentialBound, combine_bounds
from repro.utils.numeric import grid_then_golden
from repro.utils.validation import check_int, check_positive, check_probability


@dataclass(frozen=True)
class AdditiveResult:
    """Outcome of the node-by-node analysis."""

    delay: float
    gamma: float
    alpha: float
    sigma_total: float
    per_node_decays: tuple[float, ...]

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.delay)


_INFEASIBLE = AdditiveResult(math.inf, 0.0, 0.0, math.inf, ())


def additive_pernode_delay_bound_at_gamma(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    epsilon: float,
    gamma: float,
) -> AdditiveResult:
    """Additive bound for a fixed ``gamma`` (blind multiplexing nodes)."""
    hops = check_int(hops, "hops", minimum=1)
    check_positive(capacity, "capacity")
    check_positive(gamma, "gamma")
    check_probability(epsilon, "epsilon")
    if epsilon <= 0:
        raise ValueError("epsilon must be > 0")

    service_rate = capacity - cross.rate - gamma
    if service_rate <= 0:
        return _INFEASIBLE
    if min(through.decay, cross.decay) * gamma < 1e-15:
        return _INFEASIBLE  # geometric sums underflow at this gamma

    node_bounds: list[ExponentialBound] = []
    decays: list[float] = []
    prefactor, decay, rate = through.prefactor, through.decay, through.rate
    cross_sp = cross.sample_path_bound(gamma)
    for _ in range(hops):
        if rate + gamma > service_rate:
            return _INFEASIBLE
        geometric = -math.expm1(-decay * gamma)
        through_sp = ExponentialBound(prefactor / geometric, decay)
        node = combine_bounds([through_sp, cross_sp])
        node_bounds.append(node)
        decays.append(node.decay)
        # output EBB feeding the next node (stochastic output theorem)
        prefactor, decay = max(1.0, node.prefactor), node.decay
        rate += gamma

    combined = combine_bounds(node_bounds)
    sigma_total = combined.inverse(epsilon)
    return AdditiveResult(
        sigma_total / service_rate, gamma, through.decay, sigma_total, tuple(decays)
    )


def additive_pernode_delay_bound(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    epsilon: float,
    *,
    gamma: float | None = None,
    gamma_grid: int = 48,
    backend: str = "numpy",
) -> AdditiveResult:
    """Node-by-node additive delay bound, optimizing ``gamma`` numerically.

    Feasibility requires ``rho + H gamma + gamma <= C - rho_c`` for the
    last node, so ``gamma`` ranges over
    ``(0, (C - rho_c - rho) / (H + 1))``.  ``backend="numpy"`` (default)
    evaluates the ``gamma`` grid through one batched kernel call; the
    optimum is re-evaluated through the scalar path either way.
    """
    from repro.network.e2e import check_backend

    check_backend(backend)
    if gamma is not None:
        return additive_pernode_delay_bound_at_gamma(
            through, cross, hops, capacity, epsilon, gamma
        )
    headroom = capacity - cross.rate - through.rate
    if headroom <= 0:
        return _INFEASIBLE

    if backend == "numpy":
        from repro.network.vectorized import optimize_gamma_additive

        g_best, _ = optimize_gamma_additive(
            through, cross, hops, capacity, epsilon, gamma_grid=gamma_grid
        )
        return additive_pernode_delay_bound_at_gamma(
            through, cross, hops, capacity, epsilon, g_best
        )

    gamma_max = headroom / (hops + 1)

    def objective(g: float) -> float:
        return additive_pernode_delay_bound_at_gamma(
            through, cross, hops, capacity, epsilon, g
        ).delay

    g_best, _ = grid_then_golden(
        objective,
        gamma_max * 1e-6,
        gamma_max * (1.0 - 1e-9),
        grid_points=gamma_grid,
        log_spaced=True,
    )
    return additive_pernode_delay_bound_at_gamma(
        through, cross, hops, capacity, epsilon, g_best
    )


def additive_pernode_delay_bound_mmoo(
    traffic: MMOOParameters,
    n_through: int,
    n_cross: int,
    hops: int,
    capacity: float,
    epsilon: float,
    *,
    s_grid: int = 24,
    gamma_grid: int = 24,
    backend: str = "numpy",
) -> AdditiveResult:
    """Additive baseline for MMOO aggregates, optimizing ``(s, gamma)``."""
    n_through = check_int(n_through, "n_through", minimum=1)
    n_cross = check_int(n_cross, "n_cross", minimum=0)
    if (n_through + n_cross) * traffic.mean_rate >= capacity:
        return _INFEASIBLE

    from repro.network.e2e import _max_feasible_s, mmoo_ebb_pair

    s_max = _max_feasible_s(traffic, n_through + max(n_cross, 1), capacity)

    def at_s(s: float) -> AdditiveResult:
        through, cross = mmoo_ebb_pair(traffic, n_through, n_cross, s)
        return additive_pernode_delay_bound(
            through, cross, hops, capacity, epsilon,
            gamma_grid=gamma_grid, backend=backend,
        )

    s_best, _ = grid_then_golden(
        lambda s: at_s(s).delay,
        s_max * 1e-4,
        s_max * (1.0 - 1e-9),
        grid_points=s_grid,
        log_spaced=True,
    )
    return at_s(s_best)
