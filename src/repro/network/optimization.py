"""The end-to-end theta-optimization of Section IV (paper Eqs. (38)-(44)).

After the change of variables ``X = d(sigma) - sum_h theta^h``, the
end-to-end delay bound is the value of

    minimize    d(sigma) = X + sum_{h=1}^H theta^h
    subject to  (C_h - (h-1) gamma) (X + theta^h)
                  - (r_h) [ X + Delta_h(theta^h) ]_+  >=  sigma   for all h
                theta^h, X >= 0

with ``r_h = rho_c^h + gamma`` and ``Delta_h(y) = min(Delta_h, y)``.  For a
homogeneous path ``C_h = C``, ``r_h = rho_c + gamma``, ``Delta_h =
Delta_{0,c}`` for all ``h``; the module equally supports the paper's
non-homogeneous extension (per-hop parameters).

Two solvers are provided:

* :func:`solve_exact` — for fixed ``X`` the constraints decouple and the
  smallest feasible ``theta^h(X)`` is explicit and piecewise linear in
  ``X``; hence ``d(X) = X + sum_h theta^h(X)`` is piecewise linear and its
  exact minimum is found by enumerating all region breakpoints.
* :func:`solve_paper` — the paper's explicit procedure: pick the smallest
  index ``K`` satisfying Eq. (40), set ``X`` by Eq. (41) (``Delta >= 0``)
  or Eq. (42) (``Delta <= 0``), read off ``d`` from Eq. (39).  The paper
  itself notes these choices are near-optimal rather than optimal; the
  test-suite and the ablation benchmark quantify the (tiny) gap.

Closed forms used for cross-validation:

* blind multiplexing (``Delta = +inf``): ``d = sigma / (C - rho_c - H gamma)``
  (Eq. (43));
* FIFO (``Delta = 0``): Eq. (44).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.utils.numeric import minimize_piecewise_linear
from repro.utils.validation import check_non_negative, check_positive

_EPS = 1e-12


@dataclass(frozen=True)
class HopParameters:
    """Per-hop constraint parameters of the optimization problem.

    Attributes
    ----------
    service_rate:
        ``C_h - (h-1) gamma`` — the degraded link rate at this hop.
    cross_rate:
        ``r_h = rho_c^h + gamma`` — the cross-traffic envelope rate.
    delta:
        The scheduler constant ``Delta_{0,c}`` at this hop
        (``-inf``..``+inf``; ``+inf`` = BMUX, ``0`` = FIFO, negative =
        through traffic favored by EDF).
    """

    service_rate: float
    cross_rate: float
    delta: float

    def __post_init__(self) -> None:
        check_positive(self.service_rate, "service_rate")
        check_non_negative(self.cross_rate, "cross_rate")
        if math.isnan(self.delta):
            raise ValueError("delta must not be NaN")
        if self.service_rate <= self.cross_rate + _EPS and self.delta > -math.inf:
            raise ValueError(
                f"hop is saturated: service_rate {self.service_rate:g} <= "
                f"cross_rate {self.cross_rate:g}"
            )


@dataclass(frozen=True)
class ThetaSolution:
    """Result of the theta-optimization.

    ``delay = x + sum(thetas)`` is the end-to-end ``d(sigma)``.
    """

    delay: float
    x: float
    thetas: tuple[float, ...]

    @property
    def hops(self) -> int:
        return len(self.thetas)


def homogeneous_hops(
    hops: int,
    capacity: float,
    gamma: float,
    rho_cross: float,
    delta: float,
) -> list[HopParameters]:
    """Per-hop parameters of a homogeneous path (paper Sec. IV).

    Hop ``h`` (1-based) receives the degraded service rate
    ``C - (h-1) gamma`` from the network-service-curve construction of
    Eq. (30) and cross rate ``rho_c + gamma``.
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    check_positive(capacity, "capacity")
    check_non_negative(gamma, "gamma")
    check_non_negative(rho_cross, "rho_cross")
    return [
        HopParameters(capacity - (h - 1) * gamma, rho_cross + gamma, delta)
        for h in range(1, hops + 1)
    ]


def theta_for_x(hop: HopParameters, sigma: float, x: float) -> float:
    """Smallest ``theta >= 0`` satisfying hop's constraint at a given ``X``.

    The constraint is ``R (X + theta) - r [X + min(Delta, theta)]_+ >= sigma``
    with ``R = hop.service_rate``, ``r = hop.cross_rate``; its left side is
    nondecreasing in ``theta`` (``R > r`` in the sloped region), so the
    smallest solution is explicit by case analysis on ``Delta``.
    """
    r_svc, r_cross, delta = hop.service_rate, hop.cross_rate, hop.delta
    if delta == -math.inf:
        # cross traffic never interferes
        return max(0.0, sigma / r_svc - x)
    if delta == math.inf:
        # BMUX: min(Delta, theta) = theta for all theta >= 0
        return max(0.0, sigma / (r_svc - r_cross) - x)
    if delta <= 0:
        # min(Delta, theta) = Delta; the bracket [X + Delta]_+ is a constant
        clipped = max(0.0, x + delta)
        return max(0.0, (sigma + r_cross * clipped) / r_svc - x)
    # 0 < Delta < inf: two branches
    theta_low = (sigma - (r_svc - r_cross) * x) / (r_svc - r_cross)
    if theta_low <= delta:
        return max(0.0, theta_low)
    # theta > Delta: R (X + theta) - r (X + Delta) >= sigma
    theta_high = (sigma + r_cross * (x + delta)) / r_svc - x
    return max(theta_high, delta)


def _breakpoints_for_hop(hop: HopParameters, sigma: float) -> list[float]:
    """X-values where ``theta_h(X)`` changes slope (region boundaries)."""
    r_svc, r_cross, delta = hop.service_rate, hop.cross_rate, hop.delta
    points: list[float] = []
    if delta == -math.inf:
        points.append(sigma / r_svc)
    elif delta == math.inf:
        points.append(sigma / (r_svc - r_cross))
    elif delta <= 0:
        points.append(-delta)  # [X + Delta]_+ kink
        points.append(sigma / r_svc)  # theta -> 0 in the clipped region
        denom = r_svc - r_cross
        points.append((sigma + r_cross * delta) / denom)  # theta -> 0, unclipped
    else:
        denom = r_svc - r_cross
        points.append(sigma / denom)  # theta -> 0
        points.append(sigma / denom - delta)  # branch switch at theta = Delta
        points.append((sigma + r_cross * (0.0 + delta)) / r_svc)  # aux
    return [p for p in points if p > 0 and math.isfinite(p)]


def solve_exact(
    hop_params: Sequence[HopParameters], sigma: float
) -> ThetaSolution:
    """Exact solution of the optimization problem (38)-(39).

    ``d(X) = X + sum_h theta_h(X)`` is piecewise linear; the minimum over
    ``X >= 0`` is attained at a region breakpoint, all of which are known
    in closed form.
    """
    check_non_negative(sigma, "sigma")
    hops = list(hop_params)
    if not hops:
        raise ValueError("need at least one hop")

    def objective(x: float) -> float:
        return x + sum(theta_for_x(hop, sigma, x) for hop in hops)

    # sort + dedupe: hops sharing rates produce identical breakpoints, and
    # each duplicate would cost a redundant O(H) objective evaluation
    breakpoints: set[float] = set()
    for hop in hops:
        breakpoints.update(_breakpoints_for_hop(hop, sigma))
    ordered = sorted(breakpoints)
    if obs.enabled():
        obs.add("optimization.solve_exact_calls")
        obs.add("optimization.solve_exact_breakpoints", len(ordered))
    upper = (ordered[-1] if ordered else 0.0) + 1.0
    x_best, d_best = minimize_piecewise_linear(
        objective, ordered, lower=0.0, upper=upper
    )
    thetas = tuple(theta_for_x(hop, sigma, x_best) for hop in hops)
    return ThetaSolution(d_best, x_best, thetas)


def _paper_k(
    hops: Sequence[HopParameters],
) -> list[float]:
    """The Eq. (40) partial sums ``sum_{h>K} (R_h - r_h) / R_h`` per ``K``."""
    n = len(hops)
    sums = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        hop = hops[k]  # 1-based hop k+1
        term = (hop.service_rate - hop.cross_rate) / hop.service_rate
        sums[k] = sums[k + 1] + term
    return sums


def solve_paper(
    hop_params: Sequence[HopParameters], sigma: float
) -> ThetaSolution:
    """The paper's explicit near-optimal procedure (Eqs. (40)-(42)).

    Homogeneous in ``Delta`` (all hops must share the scheduler constant,
    as in the paper's setting); per-hop rates may differ.  For ``Delta``
    with mixed sign across hops use :func:`solve_exact`.
    """
    check_non_negative(sigma, "sigma")
    hops = list(hop_params)
    if not hops:
        raise ValueError("need at least one hop")
    deltas = {hop.delta for hop in hops}
    if len(deltas) != 1:
        raise ValueError("solve_paper requires a single Delta across hops")
    if obs.enabled():
        obs.add("optimization.solve_paper_calls")
    delta = deltas.pop()
    n = len(hops)
    tail_sums = _paper_k(hops)

    # The paper takes the *smallest* K with the Eq. (40) sum below 1 whose
    # Eq. (41) choice is valid; tail_sums[n] = 0 < 1 and K = n is always
    # valid, so the loop returns — no best-tracking across K is needed.
    for k in range(n + 1):
        if tail_sums[k] >= 1.0:
            continue
        if delta >= 0:
            if k == 0:
                x = 0.0
            else:
                hop_k = hops[k - 1]
                x = sigma / (hop_k.service_rate - hop_k.cross_rate)
            thetas = tuple(theta_for_x(hop, sigma, x) for hop in hops)
            # Eq. (41)'s validity condition: theta_h > Delta for h > K.
            # For Delta = +inf (BMUX) no finite theta qualifies, so the
            # only valid choice is K = H — which recovers Eq. (43).
            if any(thetas[h] <= delta + _EPS for h in range(k, n)):
                continue
        else:
            if k == 0:
                x = -delta
            else:
                # Eq. (42): X = max( sigma / (C - (K-1) gamma),
                #                    (sigma + (rho_c + gamma) Delta)
                #                      / (C - rho_c - K gamma) )
                hop_k = hops[k - 1]  # 1-based hop K: rate C - (K-1) gamma
                x = max(
                    sigma / hop_k.service_rate,
                    (sigma + hop_k.cross_rate * delta)
                    / (hop_k.service_rate - hop_k.cross_rate),
                )
            thetas = tuple(theta_for_x(hop, sigma, x) for hop in hops)
        return ThetaSolution(x + sum(thetas), x, thetas)
    raise AssertionError("unreachable: K = H is always valid")  # pragma: no cover


def bmux_delay(
    hops: int, capacity: float, gamma: float, rho_cross: float, sigma: float
) -> float:
    """Closed form Eq. (43): ``d = sigma / (C - rho_c - H gamma)``."""
    denom = capacity - rho_cross - hops * gamma
    if denom <= 0:
        return math.inf
    return sigma / denom


def fifo_delay(
    hops: int, capacity: float, gamma: float, rho_cross: float, sigma: float
) -> float:
    """Closed form Eq. (44) for FIFO (``Delta = 0``).

    ``K`` is the smallest index satisfying Eq. (40); then
    ``d = sigma/(C - rho_c - K gamma) * (1 + sum_{h>K} (h-K) gamma /
    (C - (h-1) gamma))``.
    """
    params = homogeneous_hops(hops, capacity, gamma, rho_cross, 0.0)
    tail = _paper_k(params)
    k = next((kk for kk in range(hops + 1) if tail[kk] < 1.0), hops)
    if k == 0:
        # Eq. (41) sets X = 0; every theta_h = sigma / (C - (h-1) gamma)
        return sum(
            sigma / (capacity - (h - 1) * gamma) for h in range(1, hops + 1)
        )
    denom = capacity - rho_cross - k * gamma
    if denom <= 0:
        return math.inf
    x = sigma / denom
    total = x
    for h in range(k + 1, hops + 1):
        total += (h - k) * gamma * x / (capacity - (h - 1) * gamma)
    return total
