"""Statistical network service curves (paper Eqs. (30)-(31)).

Given per-node statistical service curves ``S^1 .. S^H`` with exponential
bounding functions and a rate-degradation parameter ``gamma > 0``, the
discrete-time network service curve of [6] (paper Eq. (30)) is

    ``S_net = S^1 * S^2_gamma * ... * S^H_{(H-1)gamma}``,
    ``S^{h}_{(h-1)gamma}(t) = S^{h}(t) - (h-1) gamma t``,

with bounding function (Eq. (31))

    ``eps_net(sigma) = inf_{sum sigma_h = sigma} [ eps_H(sigma_H)
        + sum_{h<H} sum_{j>=0} eps_h(sigma_h + j gamma) ]``.

For exponential bounding functions the inner geometric sums evaluate to
``eps_h(sigma) / (1 - e^{-alpha_h gamma})`` and the infimum is the closed
form of Eq. (33), so ``eps_net`` is again exponential — for homogeneous
nodes exactly the paper's Eq. (34).

The convolution itself is exact in the factored representation: shifts
add, and the degraded bases (concave before clipping) convolve by the
endpoint rule.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.algebra.functions import PiecewiseLinear
from repro.algebra.minplus import convolve
from repro.algebra.operations import pointwise_sub
from repro.arrivals.statistical import ExponentialBound, combine_bounds
from repro.service.curves import StatisticalServiceCurve
from repro.utils.validation import check_non_negative


def degrade_rate(
    curve: StatisticalServiceCurve, rate: float
) -> StatisticalServiceCurve:
    """``S(t) - rate * t`` in factored form (clipped to stay a curve).

    With ``S(t) = base(t - shift) I(t > shift)``, subtracting ``rate * t``
    gives the base ``base(u) - rate (u + shift)`` on the same shift.  The
    result is clipped at zero (sound: smaller curve) and hulled if the
    subtraction made it momentarily decreasing.
    """
    check_non_negative(rate, "rate")
    if rate == 0.0:
        return curve
    line = PiecewiseLinear.affine(rate, rate * curve.shift)
    raw = pointwise_sub(curve.base, line)
    if raw.final_slope < 0:
        raise ValueError(
            f"rate degradation {rate:g} exceeds the long-term service rate "
            f"{curve.base.final_slope:g}"
        )
    clipped = raw.clip_nonnegative()
    if not clipped.is_nondecreasing():
        clipped = clipped.nondecreasing_hull()
    return StatisticalServiceCurve(clipped, curve.shift, curve.bound)


def network_service_curve(
    node_curves: Sequence[StatisticalServiceCurve], gamma: float
) -> StatisticalServiceCurve:
    """Eq. (30)/(31): the statistical service curve of the whole path.

    ``node_curves[h]`` is the Theorem-1 leftover curve of node ``h+1``
    (list order = path order).  ``gamma`` is the per-hop rate degradation;
    it must be positive when more than one node is statistical (the
    geometric sums of Eq. (31) diverge at ``gamma = 0``).

    For a single node the curve is returned unchanged.  Deterministic
    curves (prefactor 0) contribute no violation probability and need no
    geometric factor.
    """
    curves = list(node_curves)
    if not curves:
        raise ValueError("need at least one node curve")
    if len(curves) == 1:
        return curves[0]
    check_non_negative(gamma, "gamma")

    statistical_non_last = [
        c for c in curves[:-1] if not c.is_deterministic()
    ]
    if statistical_non_last and gamma <= 0:
        raise ValueError(
            "gamma must be > 0 to convolve statistical service curves "
            "(Eq. (31) diverges at gamma = 0)"
        )

    combined: StatisticalServiceCurve | None = None
    bounds: list[ExponentialBound] = []
    for index, curve in enumerate(curves):
        degraded = degrade_rate(curve, index * gamma)
        if combined is None:
            combined = degraded
        else:
            base = convolve(combined.base, degraded.base)
            combined = StatisticalServiceCurve(
                base, combined.shift + degraded.shift, ExponentialBound(0.0, 1.0)
            )
        is_last = index == len(curves) - 1
        bound = curve.bound
        if bound.is_deterministic():
            continue
        if is_last:
            bounds.append(bound)
        else:
            geometric = -math.expm1(-bound.decay * gamma)
            bounds.append(ExponentialBound(bound.prefactor / geometric, bound.decay))

    assert combined is not None
    net_bound = combine_bounds(bounds) if bounds else ExponentialBound(0.0, 1.0)
    return StatisticalServiceCurve(combined.base, combined.shift, net_bound)
