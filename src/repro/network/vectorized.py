"""Vectorized (numpy) kernels for the Section IV analytic bounds.

The scalar analysis stack evaluates the free-parameter search of the
end-to-end bounds one probe at a time: for every candidate ``gamma`` (and
``s`` for MMOO workloads) it recomputes ``sigma`` from the combined
bounding functions and solves the theta-optimization of Eq. (38) by
enumerating O(H) breakpoints with O(H) work each — thousands of
interpreter-level evaluations per curve point.  This module evaluates the
same mathematics as array operations:

* :func:`batched_theta_for_x` / :func:`batched_solve_exact` — the Eq. (38)
  case analysis and exact breakpoint minimization over a
  ``(batch, candidates, hops)`` broadcast, so one call solves the
  theta-optimization for a whole ``gamma`` grid at once;
* :func:`batched_sigma_for_epsilon` — the Eq. (33) combination and its
  inversion at ``epsilon`` over a ``gamma`` grid;
* :func:`e2e_delay_grid` / :func:`additive_delay_grid` — whole-grid
  evaluation of the end-to-end and node-by-node objectives, with
  closed-form fast paths for BMUX (Eq. (43)) and FIFO (Eq. (44));
* :func:`optimize_gamma_e2e` / :func:`optimize_gamma_additive` — the
  grid-then-refine search: one batched grid sweep, then golden-section
  refinement of the argmin bracket driven by cheap scalar probes;
* :func:`solve_exact_fast` — a drop-in O(H log H) replacement for
  :func:`~repro.network.optimization.solve_exact` built on a slope-sweep
  over the sorted breakpoints (used by the backlog probes, where the
  objective cannot be batched across ``gamma``).

Equivalence contract with the scalar path
-----------------------------------------
Every kernel mirrors the scalar code's floating-point expression trees
(same operations, same association order, sequential hop sums), so grid
values agree with the scalar objective to the last few ulps and the
grid-then-refine search follows the same trajectory as
:func:`repro.utils.numeric.grid_then_golden` except at exact
floating-point ties.  The optimized ``gamma``/``s`` is then re-evaluated
through the *scalar* ``..._at_gamma`` functions, so the numpy backend's
returned bounds match the scalar backend's to well within 1e-9 relative
(the randomized cross-validation suite pins this).  Two deliberate
semantic differences: where the scalar constructors *raise* (a saturated
hop, ``sigma`` underflow) the kernels return ``inf`` for the affected
lanes, matching the infeasible-result convention of the callers.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro import obs
from repro.arrivals.ebb import EBB
from repro.network.optimization import (
    _EPS,
    HopParameters,
    ThetaSolution,
    theta_for_x,
)
from repro.utils.numeric import safe_exp
from repro.utils.validation import check_non_negative

__all__ = [
    "batched_theta_for_x",
    "batched_sigma_for_epsilon",
    "batched_solve_exact",
    "e2e_delay_grid",
    "additive_delay_grid",
    "optimize_gamma_e2e",
    "optimize_gamma_additive",
    "solve_exact_fast",
]

#: Relative half-width of the window of near-minimal sweep candidates that
#: are re-evaluated exactly.  Must exceed the slope-sweep's accumulation
#: drift (~H ulps) by a wide margin so the exact re-evaluation always sees
#: the scalar argmin among its candidates.
_SWEEP_WINDOW = 1e-9


# --------------------------------------------------------------------- #
# theta_for_x / solve_exact on arrays
# --------------------------------------------------------------------- #


def batched_theta_for_x(service_rates, cross_rates, deltas, sigmas, xs):
    """Vectorized :func:`~repro.network.optimization.theta_for_x`.

    All arguments broadcast together; the result has the broadcast shape.
    Mirrors the scalar case analysis on ``Delta`` exactly (same
    floating-point expressions), so matching cells agree bitwise up to
    numpy/libm ulp differences.  Saturated cells (``R <= r`` with
    ``Delta > -inf``) are *not* rejected here — callers mask them.
    """
    r_svc = np.asarray(service_rates, dtype=float)
    r_cross = np.asarray(cross_rates, dtype=float)
    delta = np.asarray(deltas, dtype=float)
    sigma = np.asarray(sigmas, dtype=float)
    x = np.asarray(xs, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return _theta_kernel(r_svc, r_cross, delta, sigma, x)


def _theta_kernel(r_svc, r_cross, delta, sigma, x):
    """The Eq. (38) per-hop theta, elementwise (no errstate guard)."""
    denom = r_svc - r_cross
    is_ninf = np.isneginf(delta)
    is_pinf = np.isposinf(delta)
    is_le0 = (delta <= 0) & ~is_ninf
    # delta <= 0: min(Delta, theta) = Delta, bracket clipped at zero
    clipped = np.maximum(0.0, x + delta)
    t_le0 = np.maximum(0.0, (sigma + r_cross * clipped) / r_svc - x)
    # 0 < delta < inf: two branches, switch at theta = Delta
    theta_low = (sigma - denom * x) / denom
    theta_high = (sigma + r_cross * (x + delta)) / r_svc - x
    t_mid = np.where(
        theta_low <= delta,
        np.maximum(0.0, theta_low),
        np.maximum(theta_high, delta),
    )
    return np.select(
        [is_ninf, is_pinf, is_le0],
        [
            np.maximum(0.0, sigma / r_svc - x),
            np.maximum(0.0, sigma / denom - x),
            t_le0,
        ],
        t_mid,
    )


def _delta_case(delta: float) -> str:
    """Classify a scalar ``Delta`` into its Eq. (38) case."""
    if math.isinf(delta):
        return "pinf" if delta > 0 else "ninf"
    return "le0" if delta <= 0 else "mid"


def _theta_case_kernel(case, r_svc, r_cross, delta, sigma, x):
    """`_theta_kernel` restricted to one known ``Delta`` case.

    Same floating-point expressions as the matching `np.select` branch of
    :func:`_theta_kernel`; skipping the other branches only avoids work.
    ``case=None`` falls back to the general kernel.
    """
    if case is None:
        return _theta_kernel(r_svc, r_cross, delta, sigma, x)
    if case == "ninf":
        return np.maximum(0.0, sigma / r_svc - x)
    if case == "pinf":
        return np.maximum(0.0, sigma / (r_svc - r_cross) - x)
    if case == "le0":
        clipped = np.maximum(0.0, x + delta)
        return np.maximum(0.0, (sigma + r_cross * clipped) / r_svc - x)
    denom = r_svc - r_cross
    theta_low = (sigma - denom * x) / denom
    theta_high = (sigma + r_cross * (x + delta)) / r_svc - x
    return np.where(
        theta_low <= delta,
        np.maximum(0.0, theta_low),
        np.maximum(theta_high, delta),
    )


def batched_solve_exact(service_rates, cross_rates, deltas, sigmas, *, case=None):
    """Vectorized :func:`~repro.network.optimization.solve_exact`.

    Parameters
    ----------
    service_rates:
        ``(..., H)`` per-hop degraded link rates ``R_h``.
    cross_rates, deltas:
        Broadcastable to the shape of ``service_rates``.
    sigmas:
        ``(...)`` slack per batch lane.

    Returns ``(delay, x, thetas)`` with shapes ``(...)``, ``(...)`` and
    ``(..., H)``.  Each lane enumerates the same breakpoint candidate set
    as the scalar solver ({0, every positive finite breakpoint, max+1})
    in ascending order and takes the first minimum, so ``x`` matches the
    scalar tie-breaking.  Lanes with a saturated hop (where the scalar
    :class:`HopParameters` constructor raises) or non-finite ``sigma``
    come back with ``delay = inf``.
    """
    r_svc = np.asarray(service_rates, dtype=float)
    shape = r_svc.shape
    if not shape:
        raise ValueError("service_rates must have a trailing hop axis")
    delta_in = np.asarray(deltas, dtype=float)
    # scalar delta fixes the Eq. (38) case for every cell: skip the other
    # branches entirely (the expressions are the same, so results match
    # the general path bitwise).  Callers batching many lanes of a shared
    # case but varying delta (the cross-cell EDF fixed point) pass `case`
    # explicitly.
    if case is None:
        case = _delta_case(float(delta_in)) if delta_in.ndim == 0 else None
    r_cross = np.broadcast_to(np.asarray(cross_rates, dtype=float), shape)
    delta = np.broadcast_to(delta_in, shape)
    sigma = np.broadcast_to(
        np.asarray(sigmas, dtype=float), shape[:-1]
    ).astype(float, copy=False)
    lanes = int(np.prod(shape[:-1], dtype=int)) if shape[:-1] else 1
    hops = shape[-1]
    r_svc = r_svc.reshape(lanes, hops)
    r_cross = r_cross.reshape(lanes, hops)
    delta = delta.reshape(lanes, hops)
    sig = sigma.reshape(lanes)

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        sig1 = sig[:, None]
        denom = r_svc - r_cross
        is_ninf = np.isneginf(delta)
        if case == "ninf":
            bp = (sig1 / r_svc)[:, :, None]
        elif case == "pinf":
            bp = (sig1 / denom)[:, :, None]
        elif case == "le0":
            bp = np.stack(
                [-delta, sig1 / r_svc, (sig1 + r_cross * delta) / denom],
                axis=-1,
            )
        elif case == "mid":
            bp = np.stack(
                [
                    sig1 / denom,
                    sig1 / denom - delta,
                    (sig1 + r_cross * (0.0 + delta)) / r_svc,
                ],
                axis=-1,
            )
        else:
            is_pinf = np.isposinf(delta)
            is_le0 = (delta <= 0) & ~is_ninf
            is_mid = (delta > 0) & ~is_pinf
            # the scalar _breakpoints_for_hop set, (lanes, hops, 3)
            bp = np.full((lanes, hops, 3), np.nan)
            bp[..., 0] = np.select(
                [is_ninf, is_pinf, is_le0, is_mid],
                [sig1 / r_svc, sig1 / denom, -delta, sig1 / denom],
                np.nan,
            )
            bp[..., 1] = np.select(
                [is_le0, is_mid], [sig1 / r_svc, sig1 / denom - delta], np.nan
            )
            bp[..., 2] = np.select(
                [is_le0, is_mid],
                [
                    (sig1 + r_cross * delta) / denom,
                    (sig1 + r_cross * (0.0 + delta)) / r_svc,
                ],
                np.nan,
            )
        n_bp = bp.shape[-1]
        valid = np.isfinite(bp) & (bp > 0.0)
        flat = np.where(valid, bp, 0.0).reshape(lanes, n_bp * hops)
        upper = flat.max(axis=1) + 1.0
        cand = np.concatenate(
            [np.zeros((lanes, 1)), upper[:, None], flat], axis=1
        )
        cand.sort(axis=1)

        theta = _theta_case_kernel(
            case,
            r_svc[:, None, :],
            r_cross[:, None, :],
            delta[:, None, :],
            sig[:, None, None],
            cand[:, :, None],
        )
        # accumulate hops sequentially to mirror the scalar sum() order
        total = theta[:, :, 0].copy()
        for h in range(1, hops):
            total += theta[:, :, h]
        dvals = cand + total
        idx = np.argmin(np.where(np.isnan(dvals), np.inf, dvals), axis=1)
        take = idx[:, None]
        delay = np.take_along_axis(dvals, take, axis=1)[:, 0]
        x_best = np.take_along_axis(cand, take, axis=1)[:, 0]
        thetas = np.take_along_axis(theta, take[:, :, None], axis=1)[:, 0, :]

        saturated = ((r_svc <= r_cross + _EPS) & ~is_ninf) | (r_svc <= 0.0)
        bad = saturated.any(axis=1) | ~np.isfinite(sig) | (sig < 0.0)
        delay = np.where(bad, np.inf, delay)

    if obs.enabled():
        obs.add("vectorized.solve_batches")
        obs.add("vectorized.solve_lanes", lanes)
        obs.add("vectorized.solve_saturated_lanes", int(bad.sum()))
        obs.set_gauge("vectorized.solve_batch_shape", list(shape))
    return (
        delay.reshape(shape[:-1]),
        x_best.reshape(shape[:-1]),
        thetas.reshape(shape),
    )


# --------------------------------------------------------------------- #
# sigma over a gamma grid
# --------------------------------------------------------------------- #


def batched_sigma_for_epsilon(
    through: EBB, cross: EBB, hops: int, gammas, epsilon: float
) -> np.ndarray:
    """Vectorized :func:`~repro.network.e2e.sigma_for_epsilon` for the
    homogeneous case (``cross`` applies at every one of ``hops`` nodes).

    Lanes whose geometric factor underflows (where the scalar
    ``sample_path_bound`` raises) come back as ``inf``.
    """
    g = np.asarray(gammas, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        geo_t = -np.expm1(-through.decay * g)
        geo_c = -np.expm1(-cross.decay * g)
        # Eq. (33): w accumulated in the scalar bound-list order
        w = 1.0 / through.decay
        for _ in range(hops):
            w += 1.0 / cross.decay
        log_m = math.log(w) + np.log(
            (through.prefactor / geo_t) * through.decay
        ) / (through.decay * w)
        last = cross.prefactor / geo_c
        inflated = last / geo_c
        term_inflated = np.log(inflated * cross.decay) / (cross.decay * w)
        for _ in range(hops - 1):
            log_m = log_m + term_inflated
        log_m = log_m + np.log(last * cross.decay) / (cross.decay * w)
        prefactor = np.exp(log_m)
        alpha = 1.0 / w
        sigma = np.maximum(0.0, np.log(prefactor / epsilon) / alpha)
        sigma = np.where((geo_t <= 0.0) | (geo_c <= 0.0), np.inf, sigma)
    return sigma


def _sigma_fast(
    through: EBB, cross: EBB, hops: int, gamma: float, epsilon: float
) -> float:
    """Scalar mirror of :func:`batched_sigma_for_epsilon` (``inf`` on
    underflow), bitwise-equal to the scalar ``sigma_for_epsilon`` chain."""
    geo_t = -math.expm1(-through.decay * gamma)
    geo_c = -math.expm1(-cross.decay * gamma)
    if geo_t <= 0.0 or geo_c <= 0.0:
        return math.inf
    w = 1.0 / through.decay
    for _ in range(hops):
        w += 1.0 / cross.decay
    log_m = math.log(w)
    log_m += math.log(
        (through.prefactor / geo_t) * through.decay
    ) / (through.decay * w)
    last = cross.prefactor / geo_c
    inflated = last / geo_c
    term_inflated = math.log(inflated * cross.decay) / (cross.decay * w)
    for _ in range(hops - 1):
        log_m += term_inflated
    log_m += math.log(last * cross.decay) / (cross.decay * w)
    prefactor = safe_exp(log_m)
    alpha = 1.0 / w
    return max(0.0, math.log(prefactor / epsilon) / alpha)


# --------------------------------------------------------------------- #
# slope-sweep exact solve (scalar fast path)
# --------------------------------------------------------------------- #


def _hop_objective(hops_rrd, sigma: float, x: float) -> float:
    """``d(X) = X + sum_h theta_h(X)`` — bitwise mirror of the scalar
    ``solve_exact`` objective (sequential sum, same per-hop formulas)."""
    total = 0.0
    for r_svc, r_cross, delta in hops_rrd:
        if delta == -math.inf:
            total += max(0.0, sigma / r_svc - x)
        elif delta == math.inf:
            total += max(0.0, sigma / (r_svc - r_cross) - x)
        elif delta <= 0:
            clipped = max(0.0, x + delta)
            total += max(0.0, (sigma + r_cross * clipped) / r_svc - x)
        else:
            denom = r_svc - r_cross
            theta_low = (sigma - denom * x) / denom
            if theta_low <= delta:
                total += max(0.0, theta_low)
            else:
                total += max((sigma + r_cross * (x + delta)) / r_svc - x, delta)
    return x + total


def _sweep_solve(hops_rrd, sigma: float) -> tuple[float, float]:
    """Exact min of the piecewise-linear ``d(X)`` in O(H log H).

    Builds the slope-change events of every hop, sweeps the sorted
    breakpoints accumulating ``d``, then re-evaluates the near-minimal
    candidates exactly (ascending, strict ``<``) so the returned
    ``(delay, x)`` reproduces the scalar solver's value *and* argmin
    tie-breaking.  Returns ``(inf, 0.0)`` for a saturated hop, where the
    scalar path raises instead.
    """
    events: list[tuple[float, float]] = []
    d0 = 0.0
    slope = 1.0
    for r_svc, r_cross, delta in hops_rrd:
        if delta == -math.inf:
            k1 = sigma / r_svc
            if k1 > 0.0:
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
        elif delta == math.inf:
            denom = r_svc - r_cross
            if denom <= 0.0:
                return math.inf, 0.0
            k1 = sigma / denom
            if k1 > 0.0:
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
        elif delta <= 0:
            a = -delta
            k1 = sigma / r_svc
            denom = r_svc - r_cross
            if k1 <= 0.0:
                continue
            if k1 < a:
                # theta dies before the cross bracket activates
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
                # non-kink scalar candidates, kept for tie parity
                events.append((a, 0.0))
                if denom > 0.0:
                    k2 = (sigma + r_cross * delta) / denom
                    if k2 > 0.0 and math.isfinite(k2):
                        events.append((k2, 0.0))
            else:
                if denom <= 0.0:
                    return math.inf, 0.0
                ratio = r_cross / r_svc
                k2 = (sigma + r_cross * delta) / denom
                d0 += k1
                if a > 0.0:
                    slope -= 1.0
                    events.append((a, ratio))
                    events.append((k2, 1.0 - ratio))
                else:
                    slope += ratio - 1.0
                    if k2 > 0.0:
                        events.append((k2, 1.0 - ratio))
                events.append((k1, 0.0))  # non-kink scalar candidate
        else:
            denom = r_svc - r_cross
            if denom <= 0.0:
                return math.inf, 0.0
            z = sigma / denom
            if z <= 0.0:
                continue
            ratio = r_cross / r_svc
            bp = z - delta
            aux = (sigma + r_cross * (0.0 + delta)) / r_svc
            if bp <= 0.0:
                d0 += z
                slope -= 1.0
                events.append((z, 1.0))
            else:
                d0 += (sigma + r_cross * delta) / r_svc
                slope += ratio - 1.0
                events.append((bp, -ratio))
                events.append((z, 1.0))
            if aux > 0.0 and math.isfinite(aux):
                events.append((aux, 0.0))  # non-kink scalar candidate

    events.sort()
    candidates: list[tuple[float, float]] = [(0.0, d0)]
    acc = d0
    acc_min = d0
    cur = slope
    prev = 0.0
    for x, change in events:
        acc += cur * (x - prev)
        prev = x
        candidates.append((x, acc))
        if acc < acc_min:
            acc_min = acc
        cur += change

    window = acc_min + _SWEEP_WINDOW * max(1.0, abs(acc_min))
    best_d = math.inf
    best_x = 0.0
    for x, acc in candidates:
        if acc <= window:
            d = _hop_objective(hops_rrd, sigma, x)
            if d < best_d:
                best_d, best_x = d, x
    return best_d, best_x


def _objective_homogeneous(
    capacity: float,
    r: float,
    delta: float,
    sigma: float,
    hops: int,
    gamma: float,
    x: float,
) -> float:
    """:func:`_hop_objective` on a homogeneous path (same expressions,
    case dispatch hoisted out of the hop loop)."""
    total = 0.0
    if delta == -math.inf:
        for k in range(hops):
            t = sigma / (capacity - k * gamma) - x
            if t > 0.0:
                total += t
    elif delta == math.inf:
        for k in range(hops):
            t = sigma / ((capacity - k * gamma) - r) - x
            if t > 0.0:
                total += t
    elif delta <= 0:
        clipped = x + delta
        if clipped < 0.0:
            clipped = 0.0
        numerator = sigma + r * clipped
        for k in range(hops):
            t = numerator / (capacity - k * gamma) - x
            if t > 0.0:
                total += t
    else:
        for k in range(hops):
            r_svc = capacity - k * gamma
            denom = r_svc - r
            theta_low = (sigma - denom * x) / denom
            if theta_low <= delta:
                if theta_low > 0.0:
                    total += theta_low
            else:
                t = (sigma + r * (x + delta)) / r_svc - x
                total += t if t > delta else delta
    return x + total


def _sweep_homogeneous(
    capacity: float,
    r: float,
    delta: float,
    sigma: float,
    hops: int,
    gamma: float,
) -> tuple[float, float]:
    """:func:`_sweep_solve` on a homogeneous path.

    Generates the identical event multiset (``r_svc = capacity - k gamma``,
    shared ``r``/``delta``), so the candidate accumulation, window and
    re-evaluation reproduce the general sweep bitwise — the per-hop case
    dispatch and triple construction are just hoisted out of the hot
    per-probe loop.
    """
    events: list[tuple[float, float]] = []
    d0 = 0.0
    slope = 1.0
    if delta == -math.inf:
        for k in range(hops):
            k1 = sigma / (capacity - k * gamma)
            if k1 > 0.0:
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
    elif delta == math.inf:
        for k in range(hops):
            denom = (capacity - k * gamma) - r
            if denom <= 0.0:
                return math.inf, 0.0
            k1 = sigma / denom
            if k1 > 0.0:
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
    elif delta <= 0:
        a = -delta
        for k in range(hops):
            r_svc = capacity - k * gamma
            k1 = sigma / r_svc
            denom = r_svc - r
            if k1 <= 0.0:
                continue
            if k1 < a:
                d0 += k1
                slope -= 1.0
                events.append((k1, 1.0))
                events.append((a, 0.0))
                if denom > 0.0:
                    k2 = (sigma + r * delta) / denom
                    if k2 > 0.0 and math.isfinite(k2):
                        events.append((k2, 0.0))
            else:
                if denom <= 0.0:
                    return math.inf, 0.0
                ratio = r / r_svc
                k2 = (sigma + r * delta) / denom
                d0 += k1
                if a > 0.0:
                    slope -= 1.0
                    events.append((a, ratio))
                    events.append((k2, 1.0 - ratio))
                else:
                    slope += ratio - 1.0
                    if k2 > 0.0:
                        events.append((k2, 1.0 - ratio))
                events.append((k1, 0.0))
    else:
        for k in range(hops):
            r_svc = capacity - k * gamma
            denom = r_svc - r
            if denom <= 0.0:
                return math.inf, 0.0
            z = sigma / denom
            if z <= 0.0:
                continue
            ratio = r / r_svc
            bp = z - delta
            aux = (sigma + r * (0.0 + delta)) / r_svc
            if bp <= 0.0:
                d0 += z
                slope -= 1.0
                events.append((z, 1.0))
            else:
                d0 += (sigma + r * delta) / r_svc
                slope += ratio - 1.0
                events.append((bp, -ratio))
                events.append((z, 1.0))
            if aux > 0.0 and math.isfinite(aux):
                events.append((aux, 0.0))

    events.sort()
    acc = d0
    acc_min = d0
    cur = slope
    prev = 0.0
    candidates: list[tuple[float, float]] = [(0.0, d0)]
    for x, change in events:
        acc += cur * (x - prev)
        prev = x
        candidates.append((x, acc))
        if acc < acc_min:
            acc_min = acc
        cur += change

    window = acc_min + _SWEEP_WINDOW * max(1.0, abs(acc_min))
    best_d = math.inf
    best_x = 0.0
    for x, acc in candidates:
        if acc <= window:
            d = _objective_homogeneous(capacity, r, delta, sigma, hops, gamma, x)
            if d < best_d:
                best_d, best_x = d, x
    return best_d, best_x


def solve_exact_fast(
    hop_params: Sequence[HopParameters], sigma: float
) -> ThetaSolution:
    """O(H log H) drop-in for :func:`~repro.network.optimization.solve_exact`.

    Same candidate set, same objective arithmetic, same first-minimum
    tie-breaking — validated value- and argmin-equal in the test suite —
    but via a slope sweep instead of the O(H^2) candidate enumeration.
    """
    check_non_negative(sigma, "sigma")
    hops = list(hop_params)
    if not hops:
        raise ValueError("need at least one hop")
    triples = [(h.service_rate, h.cross_rate, h.delta) for h in hops]
    delay, x_best = _sweep_solve(triples, sigma)
    thetas = tuple(theta_for_x(hop, sigma, x_best) for hop in hops)
    return ThetaSolution(delay, x_best, thetas)


# --------------------------------------------------------------------- #
# end-to-end delay: whole-grid evaluation + fast probes
# --------------------------------------------------------------------- #


def _fifo_closed_form(
    hops: int, capacity: float, rho_cross: float, gamma: float, sigma: float
) -> float:
    """Scalar Eq. (44) mirror of :func:`~repro.network.optimization.fifo_delay`."""
    r = rho_cross + gamma
    tails = [0.0] * (hops + 1)
    for k in range(hops - 1, -1, -1):
        r_svc = capacity - k * gamma
        tails[k] = tails[k + 1] + (r_svc - r) / r_svc
    k = next((kk for kk in range(hops + 1) if tails[kk] < 1.0), hops)
    if k == 0:
        return sum(
            sigma / (capacity - (h - 1) * gamma) for h in range(1, hops + 1)
        )
    denom = capacity - rho_cross - k * gamma
    if denom <= 0:
        return math.inf
    x = sigma / denom
    total = x
    for h in range(k + 1, hops + 1):
        total += (h - k) * gamma * x / (capacity - (h - 1) * gamma)
    return total


def e2e_delay_grid(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    gammas,
) -> np.ndarray:
    """The :func:`~repro.network.e2e.e2e_delay_bound_at_gamma` objective
    over a whole ``gamma`` grid, as one batch of array operations.

    Infeasible lanes (Eq. (32) violated, ``sigma`` underflow) are ``inf``,
    matching the scalar ``_INFEASIBLE`` convention.  BMUX and FIFO take
    the closed forms Eq. (43)/(44); other ``Delta`` go through
    :func:`batched_solve_exact`.
    """
    g = np.asarray(gammas, dtype=float)
    feasible = (hops + 1) * g < capacity - cross.rate - through.rate
    sigma = batched_sigma_for_epsilon(through, cross, hops, g, epsilon)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if delta == math.inf:
            # Eq. (43): d = sigma / (R_H - r), flat-segment value of the
            # exact breakpoint minimum
            denom = (capacity - (hops - 1) * g) - (cross.rate + g)
            delays = np.where(denom > 0.0, sigma / denom, np.inf)
        elif delta == 0.0:
            delays = _fifo_grid(hops, capacity, cross.rate, g, sigma)
        else:
            h_index = np.arange(hops, dtype=float)
            r_svc = capacity - h_index[None, :] * g[..., None]
            r_cross = (cross.rate + g)[..., None]
            delays, _, _ = batched_solve_exact(r_svc, r_cross, delta, sigma)
        delays = np.where(feasible & np.isfinite(sigma), delays, np.inf)
    if obs.enabled():
        obs.add("vectorized.grid_points", int(g.size))
        obs.add("vectorized.grid_infeasible", int(np.isinf(delays).sum()))
    return delays


def _fifo_grid(
    hops: int, capacity: float, rho_cross: float, g: np.ndarray, sigma
) -> np.ndarray:
    """Eq. (44) over a gamma grid (vector mirror of ``fifo_delay``)."""
    h = np.arange(1, hops + 1, dtype=float)  # (H,)
    r_svc = capacity - (h - 1.0) * g[:, None]  # (G, H)
    r = (rho_cross + g)[:, None]
    terms = (r_svc - r) / r_svc
    tails = np.zeros((len(g), hops + 1))
    tails[:, :-1] = np.cumsum(terms[:, ::-1], axis=1)[:, ::-1]
    k = np.argmax(tails < 1.0, axis=1)  # first K with tail < 1
    denom = capacity - rho_cross - k * g
    x = sigma / denom
    beyond = h[None, :] > k[:, None]
    contrib = np.where(
        beyond, (h[None, :] - k[:, None]) * g[:, None] * x[:, None] / r_svc, 0.0
    )
    total = x + contrib.sum(axis=1)
    total_k0 = (sigma[:, None] / r_svc).sum(axis=1)
    delays = np.where(k == 0, total_k0, total)
    return np.where(denom > 0.0, delays, np.inf)


def e2e_delay_grid_rows(
    throughs: Sequence[EBB],
    crosses: Sequence[EBB],
    hops: int,
    capacity: float,
    deltas: Sequence[float],
    epsilon: float,
    gammas,
) -> np.ndarray:
    """Row-stacked :func:`e2e_delay_grid`: many lanes, one array program.

    Row ``i`` of the ``(lanes, grid)`` result equals
    ``e2e_delay_grid(throughs[i], crosses[i], hops, capacity, deltas[i],
    epsilon, gammas[i])`` bitwise: every kernel expression is elementwise
    (or row-local, for the candidate solves), so stacking lanes into
    taller arrays evaluates the identical IEEE sequence per row.  All
    ``deltas`` must fall in the same Eq. (38) case (the batch planner
    groups lanes accordingly); ``hops``, ``capacity`` and ``epsilon`` are
    shared across the stack.
    """
    g = np.asarray(gammas, dtype=float)
    if g.ndim != 2:
        raise ValueError("gammas must be (lanes, grid)")
    lanes, grid = g.shape
    delta_row = np.asarray(deltas, dtype=float)
    case = _delta_case(float(delta_row[0]))
    if any(_delta_case(float(d)) != case for d in delta_row[1:]):
        raise ValueError("all deltas must share one Eq. (38) case")
    tp = np.array([t.prefactor for t in throughs])[:, None]
    td = np.array([t.decay for t in throughs])[:, None]
    tr = np.array([t.rate for t in throughs])[:, None]
    cp = np.array([c.prefactor for c in crosses])[:, None]
    cd = np.array([c.decay for c in crosses])[:, None]
    cr = np.array([c.rate for c in crosses])[:, None]

    feasible = (hops + 1) * g < (capacity - cr) - tr
    # sigma: batched_sigma_for_epsilon with per-row EBB constants.  The
    # scalar `w` accumulation stays a scalar loop per row (same floats).
    w_rows = np.empty((lanes, 1))
    for i, (t, c) in enumerate(zip(throughs, crosses)):
        w = 1.0 / t.decay
        for _ in range(hops):
            w += 1.0 / c.decay
        w_rows[i, 0] = w
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        geo_t = -np.expm1(-td * g)
        geo_c = -np.expm1(-cd * g)
        log_m = np.log(w_rows) + np.log((tp / geo_t) * td) / (td * w_rows)
        last = cp / geo_c
        inflated = last / geo_c
        term_inflated = np.log(inflated * cd) / (cd * w_rows)
        for _ in range(hops - 1):
            log_m = log_m + term_inflated
        log_m = log_m + np.log(last * cd) / (cd * w_rows)
        prefactor = np.exp(log_m)
        alpha = 1.0 / w_rows
        sigma = np.maximum(0.0, np.log(prefactor / epsilon) / alpha)
        sigma = np.where((geo_t <= 0.0) | (geo_c <= 0.0), np.inf, sigma)

        any_zero = bool(np.any(delta_row == 0.0))
        if any_zero and not np.all(delta_row == 0.0):
            # the scalar path dispatches delta == 0 to the Eq. (44)
            # closed form; mixing it with the exact solve would break
            # the bitwise contract for the zero rows
            raise ValueError("cannot mix delta == 0 with other deltas")
        if case == "pinf":
            denom = (capacity - (hops - 1) * g) - (cr + g)
            delays = np.where(denom > 0.0, sigma / denom, np.inf)
        elif any_zero:
            delays = _fifo_grid(
                hops,
                capacity,
                np.repeat(cr[:, 0], grid),
                g.reshape(lanes * grid),
                sigma.reshape(lanes * grid),
            ).reshape(lanes, grid)
        else:
            h_index = np.arange(hops, dtype=float)
            g_flat = g.reshape(lanes * grid)
            r_svc = capacity - h_index[None, :] * g_flat[:, None]
            r_cross = (cr + g).reshape(lanes * grid)[:, None]
            d_flat = np.repeat(delta_row, grid)[:, None]
            delays, _, _ = batched_solve_exact(
                r_svc,
                r_cross,
                np.broadcast_to(d_flat, r_svc.shape),
                sigma.reshape(lanes * grid),
                case=case,
            )
            delays = delays.reshape(lanes, grid)
        delays = np.where(feasible & np.isfinite(sigma), delays, np.inf)
    if obs.enabled():
        obs.add("vectorized.grid_row_calls")
        obs.add("vectorized.grid_row_lanes", lanes)
        obs.add("vectorized.grid_points", int(g.size))
    return delays


def _e2e_probe(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    gamma: float,
) -> float:
    """Fast scalar mirror of the ``e2e_delay_bound_at_gamma`` objective."""
    if (hops + 1) * gamma >= capacity - cross.rate - through.rate:
        return math.inf
    sigma = _sigma_fast(through, cross, hops, gamma, epsilon)
    if not math.isfinite(sigma):
        return math.inf
    if delta == math.inf:
        denom = (capacity - (hops - 1) * gamma) - (cross.rate + gamma)
        return sigma / denom if denom > 0.0 else math.inf
    if delta == 0.0:
        return _fifo_closed_form(hops, capacity, cross.rate, gamma, sigma)
    r = cross.rate + gamma
    return _sweep_homogeneous(capacity, r, delta, sigma, hops, gamma)[0]


def optimize_gamma_e2e(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    gamma_grid: int = 48,
    tol: float = 1e-9,
) -> tuple[float, float]:
    """Grid-then-refine search for the delay-optimal ``gamma``.

    The grid stage is one :func:`e2e_delay_grid` call; the refinement is
    the same golden-section pass as the scalar path, driven by the cheap
    :func:`_e2e_probe`.  Returns ``(gamma, delay)``; the delay equals the
    scalar ``e2e_delay_bound_at_gamma(gamma).delay`` (callers wanting the
    full result re-evaluate through the scalar path).
    """
    from repro.utils.numeric import refine_grid_minimum

    with obs.trace("vectorized.optimize_gamma_e2e"):
        headroom = capacity - cross.rate - through.rate
        gamma_max = headroom / (hops + 1)
        xs = _log_grid(gamma_max * 1e-6, gamma_max * (1.0 - 1e-9), gamma_grid)
        fs = e2e_delay_grid(
            through, cross, hops, capacity, delta, epsilon, np.asarray(xs)
        )
        return refine_grid_minimum(
            lambda g: _e2e_probe(
                through, cross, hops, capacity, delta, epsilon, g
            ),
            xs,
            fs.tolist(),
            tol=tol,
        )


def _log_grid(low: float, high: float, points: int) -> list[float]:
    """The log-spaced grid of ``grid_then_golden``, same floats."""
    ratio = (high / low) ** (1.0 / (points - 1))
    return [low * ratio**i for i in range(points)]


# --------------------------------------------------------------------- #
# additive per-node bound: whole-grid evaluation + fast probe
# --------------------------------------------------------------------- #


def additive_delay_grid(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    epsilon: float,
    gammas,
) -> np.ndarray:
    """The node-by-node additive objective
    (:func:`~repro.network.pernode.additive_pernode_delay_bound_at_gamma`)
    over a whole ``gamma`` grid.

    The per-hop decay recursion is gamma-independent (harmonic updates of
    scalar decays), so only the prefactors are carried as arrays.
    """
    g = np.asarray(gammas, dtype=float)
    n = len(g)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        service_rate = capacity - cross.rate - g
        ok = service_rate > 0.0
        ok &= np.minimum(through.decay, cross.decay) * g >= 1e-15
        geo_c = -np.expm1(-cross.decay * g)
        cross_m = cross.prefactor / geo_c  # cross sample-path prefactor

        prefactor = np.full(n, through.prefactor)
        decay = through.decay  # scalar: identical across lanes
        rate = through.rate + 0.0 * g
        node_ms: list[np.ndarray] = []
        node_as: list[float] = []
        for _ in range(hops):
            ok &= rate + g <= service_rate
            geo_t = -np.expm1(-decay * g)
            through_m = prefactor / geo_t
            # combine_bounds([through_sp, cross_sp]), Eq. (33) order
            w = 1.0 / decay + 1.0 / cross.decay
            log_m = math.log(w)
            log_m = log_m + np.log(through_m * decay) / (decay * w)
            log_m = log_m + np.log(cross_m * cross.decay) / (cross.decay * w)
            node_m = np.exp(log_m)
            node_a = 1.0 / w
            node_ms.append(node_m)
            node_as.append(node_a)
            prefactor = np.maximum(1.0, node_m)
            decay = node_a
            rate = rate + g

        if hops == 1:  # combine_bounds single-member shortcut
            comb_m, comb_a = node_ms[0], node_as[0]
        else:
            w = 0.0
            for a in node_as:
                w += 1.0 / a
            log_m = math.log(w)
            for m, a in zip(node_ms, node_as):
                log_m = log_m + np.log(m * a) / (a * w)
            comb_m, comb_a = np.exp(log_m), 1.0 / w
        sigma_total = np.maximum(0.0, np.log(comb_m / epsilon) / comb_a)
        delays = np.where(ok, sigma_total / service_rate, np.inf)
    return delays


def _additive_probe(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    epsilon: float,
    gamma: float,
) -> float:
    """Fast scalar mirror of ``additive_pernode_delay_bound_at_gamma``."""
    service_rate = capacity - cross.rate - gamma
    if service_rate <= 0:
        return math.inf
    if min(through.decay, cross.decay) * gamma < 1e-15:
        return math.inf
    geo_c = -math.expm1(-cross.decay * gamma)
    cross_m = cross.prefactor / geo_c

    prefactor, decay, rate = through.prefactor, through.decay, through.rate
    node_ms: list[float] = []
    node_as: list[float] = []
    for _ in range(hops):
        if rate + gamma > service_rate:
            return math.inf
        geo_t = -math.expm1(-decay * gamma)
        through_m = prefactor / geo_t
        w = 1.0 / decay + 1.0 / cross.decay
        log_m = math.log(w)
        log_m += math.log(through_m * decay) / (decay * w)
        log_m += math.log(cross_m * cross.decay) / (cross.decay * w)
        node_m = safe_exp(log_m)
        node_a = 1.0 / w
        node_ms.append(node_m)
        node_as.append(node_a)
        prefactor, decay = max(1.0, node_m), node_a
        rate += gamma

    if hops == 1:
        comb_m, comb_a = node_ms[0], node_as[0]
    else:
        w = 0.0
        for a in node_as:
            w += 1.0 / a
        log_m = math.log(w)
        for m, a in zip(node_ms, node_as):
            log_m += math.log(m * a) / (a * w)
        comb_m, comb_a = safe_exp(log_m), 1.0 / w
    sigma_total = max(0.0, math.log(comb_m / epsilon) / comb_a)
    return sigma_total / service_rate


def optimize_gamma_additive(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    epsilon: float,
    *,
    gamma_grid: int = 48,
    tol: float = 1e-9,
) -> tuple[float, float]:
    """Grid-then-refine search for the additive bound's ``gamma``.

    Returns ``(gamma, delay)`` like :func:`optimize_gamma_e2e`.
    """
    from repro.utils.numeric import refine_grid_minimum

    with obs.trace("vectorized.optimize_gamma_additive"):
        headroom = capacity - cross.rate - through.rate
        gamma_max = headroom / (hops + 1)
        xs = _log_grid(gamma_max * 1e-6, gamma_max * (1.0 - 1e-9), gamma_grid)
        fs = additive_delay_grid(
            through, cross, hops, capacity, epsilon, np.asarray(xs)
        )
        return refine_grid_minimum(
            lambda g: _additive_probe(
                through, cross, hops, capacity, epsilon, g
            ),
            xs,
            fs.tolist(),
            tol=tol,
        )
