"""Network path descriptions (Fig. 1) — homogeneous and heterogeneous.

Thin, validated containers around the functional analysis API: a
:class:`HomogeneousPath` is the paper's setting (same capacity, identically
distributed cross traffic, same scheduler at every node);
:class:`HeterogeneousPath` implements the non-homogeneous extension
sketched at the end of Section IV (per-node capacities, cross rates,
scheduler constants, and bounding functions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.arrivals.ebb import EBB
from repro.arrivals.statistical import ExponentialBound, combine_bounds
from repro.network.e2e import E2EResult, Method, _solve, e2e_delay_bound
from repro.network.optimization import HopParameters
from repro.utils.numeric import grid_then_golden
from repro.utils.validation import check_int, check_positive, check_probability


@dataclass(frozen=True)
class HomogeneousPath:
    """A path of ``hops`` identical nodes with a common scheduler constant.

    ``delta`` is ``Delta_{0,c}``: ``math.inf`` for blind multiplexing,
    ``0.0`` for FIFO, ``d*_0 - d*_c`` for EDF.
    """

    hops: int
    capacity: float
    delta: float

    def __post_init__(self) -> None:
        check_int(self.hops, "hops", minimum=1)
        check_positive(self.capacity, "capacity")
        if math.isnan(self.delta):
            raise ValueError("delta must not be NaN")

    def delay_bound(
        self,
        through: EBB,
        cross: EBB,
        epsilon: float,
        *,
        gamma: float | None = None,
        method: Method = "exact",
    ) -> E2EResult:
        """End-to-end bound for EBB through/cross traffic on this path."""
        return e2e_delay_bound(
            through,
            cross,
            self.hops,
            self.capacity,
            self.delta,
            epsilon,
            gamma=gamma,
            method=method,
        )


@dataclass(frozen=True)
class HopSpec:
    """One node of a heterogeneous path."""

    capacity: float
    cross: EBB
    delta: float

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        if math.isnan(self.delta):
            raise ValueError("delta must not be NaN")
        if self.cross.rate >= self.capacity:
            raise ValueError(
                f"cross rate {self.cross.rate:g} saturates capacity "
                f"{self.capacity:g}"
            )


@dataclass(frozen=True)
class HeterogeneousPath:
    """Per-node capacities, cross traffic, and scheduler constants.

    Implements the remark at the end of Section IV: the optimization
    decomposes hop-wise exactly as in the homogeneous case with per-hop
    parameters, and the bounding functions combine through Eq. (33) even
    with distinct decays.
    """

    nodes: tuple[HopSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a path needs at least one node")

    @property
    def hops(self) -> int:
        return len(self.nodes)

    @classmethod
    def from_sequences(
        cls,
        capacities: Sequence[float],
        cross: Sequence[EBB],
        deltas: Sequence[float],
    ) -> "HeterogeneousPath":
        """Build a path from parallel per-node sequences.

        The three sequences must have one entry per node.  A length
        mismatch raises a :class:`ValueError` naming the offending
        field(s) immediately, instead of failing deep inside the solver
        with an index error.
        """
        lengths = {
            "capacities": len(capacities),
            "cross": len(cross),
            "deltas": len(deltas),
        }
        hops = max(lengths.values(), default=0)
        if hops == 0:
            raise ValueError("a path needs at least one node")
        short = [name for name, n in lengths.items() if n != hops]
        if short:
            detail = ", ".join(f"{name}={lengths[name]}" for name in short)
            raise ValueError(
                f"per-node sequences disagree in length: {detail} "
                f"(expected one entry per node, longest has {hops})"
            )
        return cls(
            nodes=tuple(
                HopSpec(capacity=float(c), cross=x, delta=float(d))
                for c, x, d in zip(capacities, cross, deltas)
            )
        )

    def _sigma(self, through: EBB, gamma: float, epsilon: float) -> float:
        bounds: list[ExponentialBound] = [through.sample_path_bound(gamma)]
        last = self.hops - 1
        for index, node in enumerate(self.nodes):
            bound = node.cross.sample_path_bound(gamma)
            if index < last:
                geometric = -math.expm1(-bound.decay * gamma)
                bound = ExponentialBound(bound.prefactor / geometric, bound.decay)
            bounds.append(bound)
        return combine_bounds(bounds).inverse(epsilon)

    def _hop_parameters(self, gamma: float) -> list[HopParameters]:
        return [
            HopParameters(
                node.capacity - index * gamma,
                node.cross.rate + gamma,
                node.delta,
            )
            for index, node in enumerate(self.nodes)
        ]

    def delay_bound_at_gamma(
        self,
        through: EBB,
        epsilon: float,
        gamma: float,
        *,
        method: Method = "exact",
    ) -> E2EResult:
        """End-to-end bound at a fixed rate degradation ``gamma``."""
        check_probability(epsilon, "epsilon")
        headroom = min(
            node.capacity - node.cross.rate - through.rate for node in self.nodes
        )
        if (self.hops + 1) * gamma >= headroom:
            return E2EResult(
                math.inf, math.inf, gamma, through.decay, 0.0, (), method
            )
        try:
            sigma = self._sigma(through, gamma, epsilon)
        except ValueError:  # decay * gamma underflow
            return E2EResult(
                math.inf, math.inf, gamma, through.decay, 0.0, (), method
            )
        solution = _solve(self._hop_parameters(gamma), sigma, method)
        return E2EResult(
            solution.delay, sigma, gamma, through.decay,
            solution.x, solution.thetas, method,
        )

    def delay_bound(
        self,
        through: EBB,
        epsilon: float,
        *,
        method: Method = "exact",
        gamma_grid: int = 48,
    ) -> E2EResult:
        """End-to-end bound with ``gamma`` optimized numerically."""
        headroom = min(
            node.capacity - node.cross.rate - through.rate for node in self.nodes
        )
        if headroom <= 0:
            return E2EResult(
                math.inf, math.inf, 0.0, through.decay, 0.0, (), method
            )
        gamma_max = headroom / (self.hops + 1)

        def objective(g: float) -> float:
            return self.delay_bound_at_gamma(
                through, epsilon, g, method=method
            ).delay

        g_best, _ = grid_then_golden(
            objective,
            gamma_max * 1e-6,
            gamma_max * (1.0 - 1e-9),
            grid_points=gamma_grid,
            log_spaced=True,
        )
        return self.delay_bound_at_gamma(through, epsilon, g_best, method=method)
