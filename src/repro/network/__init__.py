"""End-to-end analysis for Delta-schedulers over multi-node paths (Sec. IV).

Public surface:

* :func:`e2e_delay_bound` / :func:`e2e_delay_bound_mmoo` /
  :func:`e2e_delay_bound_edf` — the paper's probabilistic end-to-end delay
  bounds (network service curve + theta-optimization + numeric
  optimization over the free parameters);
* :class:`HomogeneousPath` / :class:`HeterogeneousPath` — path
  descriptions with ``delay_bound`` methods;
* :func:`additive_pernode_delay_bound` — the node-by-node additive
  baseline of Example 3;
* :func:`network_service_curve` — the generic Eq. (30)/(31) construction
  on explicit service curves (used for cross-validation);
* :mod:`repro.network.optimization` — the Eq. (38) solvers (exact and the
  paper's procedure) and the FIFO/BMUX closed forms;
* :mod:`repro.network.scaling` — growth-exponent utilities.
"""

from repro.network.backlog import (
    BacklogResult,
    e2e_backlog_bound,
    e2e_backlog_bound_at_gamma,
    e2e_backlog_bound_mmoo,
)
from repro.network.convolution import degrade_rate, network_service_curve
from repro.network.deterministic import (
    DeterministicE2EResult,
    deterministic_e2e_delay_at_theta,
    deterministic_e2e_delay_bound,
    pay_bursts_only_once,
)
from repro.network.e2e import (
    E2EResult,
    EDFBound,
    FixedPointDiagnostics,
    FixedPointError,
    check_backend,
    e2e_delay_bound,
    e2e_delay_bound_at_gamma,
    e2e_delay_bound_edf,
    e2e_delay_bound_mmoo,
    sigma_for_epsilon,
)
from repro.network.optimization import (
    HopParameters,
    ThetaSolution,
    bmux_delay,
    fifo_delay,
    homogeneous_hops,
    solve_exact,
    solve_paper,
    theta_for_x,
)
from repro.network.path import HeterogeneousPath, HomogeneousPath, HopSpec
from repro.network.pernode import (
    AdditiveResult,
    additive_pernode_delay_bound,
    additive_pernode_delay_bound_at_gamma,
    additive_pernode_delay_bound_mmoo,
)
from repro.network.scaling import (
    fit_growth_exponent,
    h_log_h_reference,
    is_superlinear,
)
from repro.network.sensitivity import (
    delay_vs_epsilon,
    delay_vs_gamma,
    delay_vs_utilization,
    scheduler_gap_vs_hops,
)
from repro.network.vectorized import (
    additive_delay_grid,
    batched_sigma_for_epsilon,
    batched_solve_exact,
    batched_theta_for_x,
    e2e_delay_grid,
    optimize_gamma_additive,
    optimize_gamma_e2e,
    solve_exact_fast,
)


class EndToEndAnalysis:
    """Convenience facade bundling the Section-IV analysis for one setting.

    Wraps a :class:`HomogeneousPath` together with the through/cross EBB
    triples so repeated queries (different epsilons, methods, schedulers)
    don't repeat boilerplate.
    """

    def __init__(self, path: HomogeneousPath, through, cross) -> None:
        self.path = path
        self.through = through
        self.cross = cross

    def delay_bound(self, epsilon: float, **kwargs) -> E2EResult:
        """End-to-end delay bound at violation probability ``epsilon``."""
        return self.path.delay_bound(self.through, self.cross, epsilon, **kwargs)

    def additive_delay_bound(self, epsilon: float, **kwargs) -> AdditiveResult:
        """The node-by-node additive baseline on the same setting."""
        return additive_pernode_delay_bound(
            self.through, self.cross, self.path.hops, self.path.capacity,
            epsilon, **kwargs,
        )


__all__ = [
    "E2EResult",
    "BacklogResult",
    "e2e_backlog_bound",
    "e2e_backlog_bound_at_gamma",
    "e2e_backlog_bound_mmoo",
    "DeterministicE2EResult",
    "deterministic_e2e_delay_at_theta",
    "deterministic_e2e_delay_bound",
    "pay_bursts_only_once",
    "delay_vs_epsilon",
    "delay_vs_gamma",
    "delay_vs_utilization",
    "scheduler_gap_vs_hops",
    "EndToEndAnalysis",
    "e2e_delay_bound",
    "e2e_delay_bound_at_gamma",
    "e2e_delay_bound_mmoo",
    "e2e_delay_bound_edf",
    "EDFBound",
    "FixedPointDiagnostics",
    "FixedPointError",
    "sigma_for_epsilon",
    "HopParameters",
    "ThetaSolution",
    "homogeneous_hops",
    "solve_exact",
    "solve_paper",
    "theta_for_x",
    "bmux_delay",
    "fifo_delay",
    "HomogeneousPath",
    "HeterogeneousPath",
    "HopSpec",
    "AdditiveResult",
    "additive_pernode_delay_bound",
    "additive_pernode_delay_bound_at_gamma",
    "additive_pernode_delay_bound_mmoo",
    "network_service_curve",
    "degrade_rate",
    "fit_growth_exponent",
    "h_log_h_reference",
    "is_superlinear",
    "check_backend",
    "additive_delay_grid",
    "batched_sigma_for_epsilon",
    "batched_solve_exact",
    "batched_theta_for_x",
    "e2e_delay_grid",
    "optimize_gamma_additive",
    "optimize_gamma_e2e",
    "solve_exact_fast",
]
