"""Scaling helpers for the Theta(H log H) analysis (Example 3).

Utilities for characterizing how a sequence of delay bounds grows with the
path length: least-squares growth exponents on log-log axes and the
``H log H`` reference shape.  The paper's remark (Sec. IV): for EBB traffic
the end-to-end delays of *every* Delta-scheduler grow as
``Theta(H log H)``, whereas node-by-node addition yields
``O(H^3 log H)`` in discrete time.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


def h_log_h_reference(hops: Sequence[int], anchor: float) -> list[float]:
    """The curve ``c * H log(1 + H)`` scaled to pass through the first point.

    ``anchor`` is the desired value at ``hops[0]``.
    """
    if not hops:
        return []
    check_positive(anchor, "anchor")
    h0 = hops[0]
    scale = anchor / (h0 * math.log1p(h0))
    return [scale * h * math.log1p(h) for h in hops]


def fit_growth_exponent(hops: Sequence[int], values: Sequence[float]) -> float:
    """Least-squares slope of ``log(values)`` against ``log(hops)``.

    An exponent near 1 indicates (quasi-)linear growth — the signature of
    the network-service-curve bounds; the additive baseline fits an
    exponent near 3.
    """
    if len(hops) != len(values) or len(hops) < 2:
        raise ValueError("need at least two (hops, value) pairs")
    hs = np.asarray(hops, dtype=float)
    vs = np.asarray(values, dtype=float)
    if np.any(hs <= 0) or np.any(vs <= 0) or not np.all(np.isfinite(vs)):
        raise ValueError("hops and values must be positive and finite")
    slope, _ = np.polyfit(np.log(hs), np.log(vs), 1)
    return float(slope)


def is_superlinear(hops: Sequence[int], values: Sequence[float], *,
                   threshold: float = 1.2) -> bool:
    """True when the fitted growth exponent exceeds ``threshold``."""
    return fit_growth_exponent(hops, values) > threshold
