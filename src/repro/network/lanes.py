"""Cross-cell batched execution of the MMOO (s, gamma) bound searches.

One sweep cell pays a deeply nested free-parameter search: the EDF
deadline fixed point iterates ``bound_at(delta)``, each of which runs a
golden-section search over ``s``, each step of which runs a
grid-then-golden search over ``gamma``, each probe of which solves the
Eq. (38) theta optimization.  Per cell that is tens of thousands of
*sequential* scalar probes.  Across a sweep grid, however, the cells
are independent — so the searches of many cells can advance in
lockstep, pooling every pending probe of every cell into one batched
kernel call per engine round.

This module implements that as a tiny cooperative scheduler over
*search chains*:

* a chain is a Python generator that mirrors one scalar search
  (``golden_section_min``, ``refine_grid_minimum``,
  ``grid_then_golden``, the ``s``-objective, the mmoo bound) bitwise —
  same brackets, same comparisons, same floats — but *yields* its probe
  requests instead of evaluating them;
* the engine gathers the pending requests of all live chains each
  round and executes them together: scalar objective probes go through
  the generated-C kernel of :mod:`repro.network.cprobe` (one C call for
  the whole round), gamma-grid evaluations go through the row-stacked
  :func:`repro.network.vectorized.e2e_delay_grid_rows`;
* :func:`edf_bound_lanes` drives the whole grid's EDF deadline vector
  through one such engine pass per fixed-point iteration, with
  per-lane convergence masking: a converged lane stops spawning
  chains (its diagnostics freeze at its own iteration count) while
  stragglers keep iterating.

Bitwise contract
----------------
Every lane's results — bounds, gammas, iteration counts, residuals,
convergence flags — are identical to what the per-cell functions
(:func:`repro.network.e2e.e2e_delay_bound_mmoo`,
:func:`repro.network.e2e.e2e_delay_bound_edf`) return, because every
floating-point decision runs through mirrored expression trees and the
final optimum is materialized through the very same scalar functions.
The equivalence suite pins this per scheduler, path length, and
backend.
"""

from __future__ import annotations

import math
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro import obs
from repro.arrivals.ebb import EBB
from repro.arrivals.mmoo import MMOOParameters
from repro.network import cprobe
from repro.network.e2e import (
    _INFEASIBLE,
    _max_feasible_s,
    E2EResult,
    EDFBound,
    FixedPointDiagnostics,
    FixedPointError,
    check_backend,
    e2e_delay_bound,
    mmoo_ebb_pair,
)
from repro.network.vectorized import _delta_case, _log_grid, e2e_delay_grid_rows
from repro.utils.validation import check_int, check_positive, check_probability

__all__ = [
    "LaneSpec",
    "EDFLaneSpec",
    "mmoo_bound_lanes",
    "edf_bound_lanes",
]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class LaneSpec:
    """One mmoo bound computation (one sweep cell) in a batched group."""

    traffic: MMOOParameters
    n_through: int
    n_cross: int
    hops: int
    capacity: float
    delta: float
    epsilon: float
    method: str = "exact"
    s_grid: int = 24
    gamma_grid: int = 24
    backend: str = "numpy"


@dataclass(frozen=True)
class EDFLaneSpec:
    """One EDF fixed-point computation in a batched group."""

    traffic: MMOOParameters
    n_through: int
    n_cross: int
    hops: int
    capacity: float
    epsilon: float
    deadline_weight_through: float = 1.0
    deadline_weight_cross: float = 10.0
    method: str = "exact"
    tol: float = 1e-4
    max_iter: int = 40
    s_grid: int = 24
    gamma_grid: int = 24
    backend: str = "numpy"
    on_nonconvergence: Literal["warn", "raise", "ignore"] = "warn"


class _Ctx:
    """One registered (lane, s) probe context."""

    __slots__ = ("index", "through", "cross", "hops", "capacity", "delta",
                 "epsilon", "gamma_grid", "backend")

    def __init__(self, index, through, cross, hops, capacity, delta,
                 epsilon, gamma_grid, backend):
        self.index = index
        self.through = through
        self.cross = cross
        self.hops = hops
        self.capacity = capacity
        self.delta = delta
        self.epsilon = epsilon
        self.gamma_grid = gamma_grid
        self.backend = backend


class _Lane:
    """Mutable per-lane state shared by the chains of one bound."""

    __slots__ = ("spec", "delta", "table", "_s_max")

    def __init__(self, spec: LaneSpec | EDFLaneSpec, delta: float,
                 table: cprobe.ProbeTable):
        self.spec = spec
        self.delta = delta
        self.table = table
        self._s_max: float | None = None

    def s_max(self) -> float:
        # delta-independent, so cached across EDF fixed-point iterations
        # (the per-cell path recomputes the identical bisection result)
        if self._s_max is None:
            spec = self.spec
            self._s_max = _max_feasible_s(
                spec.traffic,
                spec.n_through + max(spec.n_cross, 1),
                spec.capacity,
            )
        return self._s_max

    def register(self, through: EBB, cross: EBB) -> _Ctx:
        spec = self.spec
        index = self.table.add(
            through, cross, spec.hops, spec.capacity, self.delta,
            spec.epsilon,
        )
        return _Ctx(
            index, through, cross, spec.hops, spec.capacity, self.delta,
            spec.epsilon, spec.gamma_grid, spec.backend,
        )

    def at_s(self, s: float) -> E2EResult:
        """Materialize the optimum through the real scalar entry point."""
        spec = self.spec
        through, cross = mmoo_ebb_pair(
            spec.traffic, spec.n_through, spec.n_cross, s
        )
        return e2e_delay_bound(
            through, cross, spec.hops, spec.capacity, self.delta,
            spec.epsilon, method=spec.method, gamma_grid=spec.gamma_grid,
            backend=spec.backend,
        )


# --------------------------------------------------------------------- #
# search chains: bitwise mirrors of the scalar searches as generators
# --------------------------------------------------------------------- #


def _golden_chain(req, low, high, *, tol=1e-9, max_iter=200):
    """Mirror of :func:`repro.utils.numeric.golden_section_min`."""
    a, b = low, high
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1, f2 = yield [req(x1), req(x2)]
    for _ in range(max_iter):
        if b - a <= tol * max(1.0, abs(a) + abs(b)):
            break
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLDEN * (b - a)
            (f1,) = yield [req(x1)]
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLDEN * (b - a)
            (f2,) = yield [req(x2)]
    if f1 <= f2:
        return x1, f1
    return x2, f2


def _refine_chain(req, xs, fs, *, tol=1e-9):
    """Mirror of :func:`repro.utils.numeric.refine_grid_minimum`."""
    best = min(range(len(xs)), key=lambda i: fs[i])
    if not math.isfinite(fs[best]):
        return xs[best], fs[best]
    lo = xs[max(0, best - 1)]
    hi = xs[min(len(xs) - 1, best + 1)]
    x_ref, f_ref = yield from _golden_chain(req, lo, hi, tol=tol)
    if f_ref <= fs[best]:
        return x_ref, f_ref
    return xs[best], fs[best]


def _gamma_chain(ctx: _Ctx):
    """Mirror of the per-cell gamma search at one fixed ``s``.

    numpy backend: :func:`~repro.network.vectorized.optimize_gamma_e2e`
    (batched grid + probe-driven refinement).  scalar backend: the
    ``grid_then_golden`` pass of :func:`~repro.network.e2e.e2e_delay_bound`
    (probe values equal the scalar objective bitwise).  Returns
    ``(gamma_best, delay_at_gamma_best)``.
    """
    headroom = ctx.capacity - ctx.cross.rate - ctx.through.rate
    gamma_max = headroom / (ctx.hops + 1)
    xs = _log_grid(gamma_max * 1e-6, gamma_max * (1.0 - 1e-9), ctx.gamma_grid)
    if ctx.backend == "numpy":
        (fs,) = yield [("g", ctx, xs)]
    else:
        fs = yield [("p", ctx.index, x) for x in xs]
    # mirror of refine_grid_minimum with the golden-section refinement
    # executed as one batched in-kernel request ("go") per search
    fs = list(fs)
    best = min(range(len(xs)), key=lambda i: fs[i])
    if not math.isfinite(fs[best]):
        return xs[best], fs[best]
    lo = xs[max(0, best - 1)]
    hi = xs[min(len(xs) - 1, best + 1)]
    ((x_ref, f_ref),) = yield [("go", ctx.index, lo, hi)]
    if f_ref <= fs[best]:
        return x_ref, f_ref
    return xs[best], fs[best]


def _s_objective_chain(lane: _Lane, s: float):
    """Mirror of the mmoo ``s``-search objective at one ``s``."""
    spec = lane.spec
    through, cross = mmoo_ebb_pair(
        spec.traffic, spec.n_through, spec.n_cross, s
    )
    if spec.capacity - cross.rate - through.rate <= 0:
        return math.inf
    ctx = lane.register(through, cross)
    g_best, f_best = yield from _gamma_chain(ctx)
    if spec.backend == "numpy":
        # per-cell: objective(s) = _e2e_probe(..., g_best)
        (value,) = yield [("p", ctx.index, g_best)]
        return value
    # per-cell scalar: objective(s) = at_s(s).delay, which re-evaluates
    # the deterministic scalar objective at g_best — the same float the
    # search already holds
    return f_best


def _mmoo_chain(lane: _Lane):
    """Mirror of :func:`~repro.network.e2e.e2e_delay_bound_mmoo`."""
    spec = lane.spec
    if (spec.n_through + spec.n_cross) * spec.traffic.mean_rate >= spec.capacity:
        return _INFEASIBLE
    s_max = lane.s_max()
    low = s_max * 1e-4
    high = s_max * (1.0 - 1e-9)
    # mirror of grid_then_golden(objective, low, high, s_grid, log_spaced)
    ratio = (high / low) ** (1.0 / (spec.s_grid - 1))
    xs = [low * ratio**i for i in range(spec.s_grid)]
    fs = yield [("c", _s_objective_chain(lane, x)) for x in xs]
    s_best, _ = yield from _refine_chain(
        lambda s: ("c", _s_objective_chain(lane, s)), xs, list(fs)
    )
    return lane.at_s(s_best)


# --------------------------------------------------------------------- #
# the engine: run chains to completion, batching their probe requests
# --------------------------------------------------------------------- #


class _Task:
    __slots__ = ("gen", "values", "pending", "parent", "slot")

    def __init__(self, gen, parent, slot):
        self.gen = gen
        self.values = None
        self.pending = 0
        self.parent = parent
        self.slot = slot


def _run_chains(table: cprobe.ProbeTable, chains: list) -> list:
    """Run top-level chains concurrently; returns their results in order.

    Each engine round flushes every pending scalar probe as one batched
    :func:`repro.network.cprobe.probe_values` call and every pending
    grid request as row-stacked :func:`e2e_delay_grid_rows` calls
    (grouped by path length and Eq. (38) case).
    """
    results = [None] * len(chains)
    probe_reqs: list = []  # (task, slot, ctx_index, gamma)
    golden_reqs: list = []  # (task, slot, ctx_index, lo, hi)
    grid_reqs: list = []  # (task, slot, ctx, xs)
    ready: deque = deque()
    rounds = 0
    n_probes = 0

    def deliver(task, value):
        parent = task.parent
        if parent is None:
            results[task.slot] = value
        else:
            fulfill(parent, task.slot, value)

    def fulfill(task, slot, value):
        task.values[slot] = value
        task.pending -= 1
        if task.pending == 0:
            ready.append(task)

    def start(gen, parent, slot):
        step(_Task(gen, parent, slot), None)

    def step(task, send_values):
        try:
            requests = task.gen.send(send_values)
        except StopIteration as stop:
            deliver(task, stop.value)
            return
        task.values = [None] * len(requests)
        task.pending = len(requests)
        for slot, request in enumerate(requests):
            kind = request[0]
            if kind == "p":
                probe_reqs.append((task, slot, request[1], request[2]))
            elif kind == "go":
                golden_reqs.append(
                    (task, slot, request[1], request[2], request[3])
                )
            elif kind == "g":
                grid_reqs.append((task, slot, request[1], request[2]))
            else:  # "c": sub-chain
                start(request[1], task, slot)

    for slot, gen in enumerate(chains):
        start(gen, None, slot)

    while True:
        while ready:
            task = ready.popleft()
            values, task.values = task.values, None
            step(task, values)
        if not probe_reqs and not golden_reqs and not grid_reqs:
            break
        rounds += 1
        if probe_reqs:
            batch, probe_reqs = probe_reqs, []
            out = cprobe.probe_values(
                table,
                [b[2] for b in batch],
                [b[3] for b in batch],
            )
            n_probes += len(batch)
            for (task, slot, _, _), value in zip(batch, out):
                fulfill(task, slot, float(value))
        if golden_reqs:
            batch, golden_reqs = golden_reqs, []
            out_x, out_f = cprobe.golden_values(
                table,
                [b[2] for b in batch],
                [b[3] for b in batch],
                [b[4] for b in batch],
            )
            n_probes += len(batch)
            for (task, slot, _, _, _), x, f in zip(batch, out_x, out_f):
                fulfill(task, slot, (float(x), float(f)))
        if grid_reqs:
            batch, grid_reqs = grid_reqs, []
            groups: dict = {}
            for item in batch:
                ctx = item[2]
                key = (
                    ctx.hops,
                    len(item[3]),
                    _delta_case(ctx.delta),
                    ctx.delta == 0.0,
                )
                groups.setdefault(key, []).append(item)
            for (hops, _, _, _), items in groups.items():
                ctxs = [item[2] for item in items]
                rows = e2e_delay_grid_rows(
                    [c.through for c in ctxs],
                    [c.cross for c in ctxs],
                    hops,
                    ctxs[0].capacity,
                    [c.delta for c in ctxs],
                    ctxs[0].epsilon,
                    np.asarray([item[3] for item in items]),
                )
                for (task, slot, _, _), row in zip(items, rows):
                    fulfill(task, slot, row.tolist())

    if obs.enabled():
        obs.add("lanes.engine_rounds", rounds)
        obs.add("lanes.engine_probes", n_probes)
        if rounds:
            obs.observe("lanes.round_occupancy", n_probes / rounds)
    return results


# --------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------- #


def _check_lane(spec: LaneSpec | EDFLaneSpec) -> None:
    check_int(spec.n_through, "n_through", minimum=1)
    check_int(spec.n_cross, "n_cross", minimum=0)
    check_int(spec.hops, "hops", minimum=1)
    check_positive(spec.capacity, "capacity")
    check_probability(spec.epsilon, "epsilon")
    check_backend(spec.backend)
    if spec.method != "exact":
        raise ValueError(
            f"batched lanes support method='exact', got {spec.method!r}"
        )


def mmoo_bound_lanes(specs: Iterable[LaneSpec]) -> list[E2EResult]:
    """Batched :func:`~repro.network.e2e.e2e_delay_bound_mmoo`.

    Runs all lanes' (s, gamma) searches concurrently; every lane's
    result is bitwise-identical to its per-cell computation.
    """
    specs = list(specs)
    for spec in specs:
        _check_lane(spec)
    table = cprobe.ProbeTable()
    lanes = [_Lane(spec, spec.delta, table) for spec in specs]
    with obs.trace("lanes.mmoo_batch"):
        results = _run_chains(table, [_mmoo_chain(lane) for lane in lanes])
    if obs.enabled():
        obs.add("lanes.mmoo_lanes", len(specs))
    return results


def edf_bound_lanes(specs: Iterable[EDFLaneSpec]) -> list[EDFBound]:
    """Batched :func:`~repro.network.e2e.e2e_delay_bound_edf`.

    One engine pass per fixed-point iteration iterates the whole
    group's deadline vector together; per-lane convergence masking
    freezes finished lanes while stragglers keep iterating, so each
    lane sees exactly the per-cell iteration sequence (identical
    bounds, iteration counts, residuals, and convergence flags).  The
    shared FIFO bootstrap (``delta = 0``) is computed once per distinct
    lane geometry — deadline weights do not enter it — and reused.
    """
    specs = list(specs)
    for spec in specs:
        _check_lane(spec)
        check_positive(
            spec.deadline_weight_through, "deadline_weight_through"
        )
        check_positive(spec.deadline_weight_cross, "deadline_weight_cross")
        if spec.on_nonconvergence not in ("warn", "raise", "ignore"):
            raise ValueError(
                "on_nonconvergence must be 'warn', 'raise', or 'ignore', "
                f"got {spec.on_nonconvergence!r}"
            )
    n = len(specs)
    start = time.perf_counter()
    table = cprobe.ProbeTable()

    def bootstrap_key(spec: EDFLaneSpec):
        return (
            spec.traffic, spec.n_through, spec.n_cross, spec.hops,
            spec.capacity, spec.epsilon, spec.method, spec.s_grid,
            spec.gamma_grid, spec.backend,
        )

    bounds: list[EDFBound | None] = [None] * n
    deltas = [0.0] * n
    residuals = [math.inf] * n
    results: list[E2EResult | None] = [None] * n
    active = list(range(n))

    def finish(i, result, delta, iterations, residual, converged):
        bounds[i] = EDFBound(
            result=result,
            delta=delta,
            diagnostics=FixedPointDiagnostics(
                iterations=iterations,
                residual=residual,
                converged=converged,
                wall_time_s=time.perf_counter() - start,
            ),
        )

    with obs.trace("lanes.edf_batch"):
        # FIFO bootstrap, deduplicated across lanes sharing a geometry
        # (EDF variants differing only in deadline weights)
        unique: dict = {}
        for i in active:
            unique.setdefault(bootstrap_key(specs[i]), []).append(i)
        lane_groups = list(unique.values())
        chains = []
        for group in lane_groups:
            lane = _Lane(specs[group[0]], 0.0, table)
            chains.append(_mmoo_chain(lane))
        boot = _run_chains(table, chains)
        if obs.enabled() and n:
            obs.add("lanes.bootstrap_dedup", n - len(lane_groups))
        still = []
        for group, current in zip(lane_groups, boot):
            for i in group:
                if not current.feasible:
                    finish(i, current, 0.0, 0, 0.0, True)
                else:
                    spec = specs[i]
                    weight_gap = (
                        spec.deadline_weight_through
                        - spec.deadline_weight_cross
                    )
                    deltas[i] = weight_gap * current.delay / spec.hops
                    still.append(i)
        active = still

        iteration = 0
        while active:
            iteration += 1
            over = [i for i in active if iteration > specs[i].max_iter]
            for i in over:
                _nonconvergence(specs[i], residuals[i])
                finish(
                    i, results[i], deltas[i], specs[i].max_iter,
                    residuals[i], False,
                )
            active = [i for i in active if iteration <= specs[i].max_iter]
            if not active:
                break
            chains = [
                _mmoo_chain(_Lane(specs[i], deltas[i], table))
                for i in active
            ]
            if obs.enabled():
                obs.add("lanes.edf_rounds")
                obs.observe("lanes.edf_round_lanes", len(active))
            step_results = _run_chains(table, chains)
            still = []
            for i, result in zip(active, step_results):
                results[i] = result
                spec = specs[i]
                if not result.feasible:
                    # an infinite bound cannot move: at rest
                    finish(i, result, deltas[i], iteration, 0.0, True)
                    continue
                weight_gap = (
                    spec.deadline_weight_through - spec.deadline_weight_cross
                )
                new_delta = weight_gap * result.delay / spec.hops
                step = abs(new_delta - deltas[i])
                scale = max(1.0, abs(deltas[i]))
                residuals[i] = step / scale
                if step <= spec.tol * scale:
                    finish(i, result, new_delta, iteration, residuals[i], True)
                    continue
                deltas[i] = 0.5 * (deltas[i] + new_delta)  # damping
                still.append(i)
            active = still

    if obs.enabled():
        obs.add("lanes.edf_lanes", n)
        for bound in bounds:
            obs.observe(
                "lanes.edf_lane_iterations", bound.diagnostics.iterations
            )
    return [bound for bound in bounds]


def _nonconvergence(spec: EDFLaneSpec, residual: float) -> None:
    message = (
        f"EDF deadline fixed point did not converge in {spec.max_iter} "
        f"iterations: relative residual {residual:.3g} > tol {spec.tol:g}"
    )
    if spec.on_nonconvergence == "raise":
        raise FixedPointError(message)
    if spec.on_nonconvergence == "warn":
        warnings.warn(message, RuntimeWarning, stacklevel=2)
