"""Worst-case end-to-end delay bounds (the paper's gamma = 0 case).

Section IV notes that setting ``gamma = 0`` (and pushing the EBB model to
its deterministic limit) turns the probabilistic machinery into a
deterministic end-to-end calculus.  This module implements that case
directly on leaky-bucket envelopes:

* per node, the deterministic leftover service curve of Eq. (19) for the
  chosen Delta-scheduler and ``theta``;
* min-plus convolution along the path (no rate degradation and no
  geometric sums are needed — deterministic bounds are never violated);
* the delay bound as the exact horizontal deviation.

For bounds that are tight in ``theta`` the paper remarks that a common
``theta^h = theta`` suffices; we optimize the scalar ``theta``
numerically (the objective is piecewise smooth and unimodal in the cases
of interest; a grid+golden search is robust).

Sanity anchor implemented in the tests: for blind multiplexing the
construction reproduces the classical *pay-bursts-only-once* bound

    ``d = ( B_through + H * B_cross ) / (C - rho_cross)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrivals.envelopes import DeterministicEnvelope
from repro.arrivals.statistical import StatisticalEnvelope
from repro.network.convolution import network_service_curve
from repro.scheduling.delta import CustomDelta
from repro.service.leftover import deterministic_leftover_service
from repro.utils.numeric import grid_then_golden
from repro.utils.validation import check_int, check_positive


@dataclass(frozen=True)
class DeterministicE2EResult:
    """Outcome of a worst-case end-to-end computation."""

    delay: float
    theta: float

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.delay)


def deterministic_e2e_delay_at_theta(
    through: DeterministicEnvelope,
    cross: DeterministicEnvelope,
    hops: int,
    capacity: float,
    delta: float,
    theta: float,
) -> float:
    """Worst-case end-to-end delay for a common per-node ``theta``."""
    hops = check_int(hops, "hops", minimum=1)
    check_positive(capacity, "capacity")
    if cross.rate >= capacity:
        return math.inf
    scheduler = CustomDelta({("through", "cross"): delta})
    curves = [
        deterministic_leftover_service(
            scheduler, "through", capacity, {"cross": cross}, theta
        )
        for _ in range(hops)
    ]
    net = network_service_curve(curves, gamma=0.0)
    if through.rate >= net.long_term_rate:
        return math.inf
    return net.delay_bound(
        StatisticalEnvelope.deterministic(through.curve), 0.0
    )


def deterministic_e2e_delay_bound(
    through: DeterministicEnvelope,
    cross: DeterministicEnvelope,
    hops: int,
    capacity: float,
    delta: float,
    *,
    theta: float | None = None,
    theta_grid: int = 48,
) -> DeterministicE2EResult:
    """Worst-case end-to-end delay bound over a homogeneous path.

    Parameters mirror :func:`repro.network.e2e.e2e_delay_bound` with
    deterministic leaky-bucket (or any concave) envelopes.  ``theta``
    fixes the common free parameter; by default it is optimized
    numerically on ``[0, theta_max]`` where ``theta_max`` generously
    covers the resulting delay scale.
    """
    if theta is not None:
        return DeterministicE2EResult(
            deterministic_e2e_delay_at_theta(
                through, cross, hops, capacity, delta, theta
            ),
            theta,
        )
    if cross.rate + through.rate >= capacity:
        return DeterministicE2EResult(math.inf, 0.0)
    # delay scale: everything buffered once through the leftover rate
    scale = (
        through.burst + hops * (cross.burst + capacity)
    ) / max(capacity - cross.rate - through.rate, 1e-9)
    theta_best, delay_best = grid_then_golden(
        lambda th: deterministic_e2e_delay_at_theta(
            through, cross, hops, capacity, delta, th
        ),
        0.0,
        max(scale, 1.0),
        grid_points=theta_grid,
    )
    # theta = 0 is always admissible; make sure we never do worse
    at_zero = deterministic_e2e_delay_at_theta(
        through, cross, hops, capacity, delta, 0.0
    )
    if at_zero < delay_best:
        return DeterministicE2EResult(at_zero, 0.0)
    return DeterministicE2EResult(delay_best, theta_best)


def pay_bursts_only_once(
    through: DeterministicEnvelope,
    cross: DeterministicEnvelope,
    hops: int,
    capacity: float,
) -> float:
    """The classical BMUX worst-case reference bound.

    Convolving the per-node leftover rate-latency curves
    ``(C - rho_c, B_c / (C - rho_c))`` gives
    ``d = (B_through + H B_cross) / (C - rho_c)`` — the through burst is
    paid once, each node's cross burst once.
    """
    hops = check_int(hops, "hops", minimum=1)
    leftover = capacity - cross.rate
    if leftover <= through.rate:
        return math.inf
    return (through.burst + hops * cross.burst) / leftover
