"""End-to-end probabilistic delay bounds for Delta-schedulers (Sec. IV).

The top of the analysis stack.  For a flow traversing ``H`` nodes of
capacity ``C``, each carrying EBB cross traffic and running the same
Delta-scheduler (constant ``Delta_{0,c}``), the end-to-end delay bound at
violation probability ``epsilon`` is computed in three steps:

1. the required slack ``sigma`` from the combined bounding function of the
   network service curve and the through envelope (Eqs. (31), (33), (34));
2. ``d(sigma)`` from the theta-optimization (Eqs. (38)-(44)), solved
   exactly or by the paper's explicit procedure;
3. numeric minimization over the free parameters: the per-hop rate
   degradation ``gamma`` (always) and, for MMOO workloads, the
   effective-bandwidth parameter ``s = alpha``.

The EDF deadline convention of the numerical examples — per-node deadlines
proportional to the resulting end-to-end bound — makes the bound
self-referential; :func:`e2e_delay_bound_edf` resolves it by damped
fixed-point iteration.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

from repro import obs
from repro.arrivals.ebb import EBB
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.statistical import ExponentialBound, combine_bounds
from repro.network.optimization import (
    HopParameters,
    ThetaSolution,
    homogeneous_hops,
    solve_exact,
    solve_paper,
)
from repro.utils.numeric import bisect_increasing, grid_then_golden
from repro.utils.validation import (
    check_int,
    check_positive,
    check_probability,
)

Method = Literal["exact", "paper"]
Backend = Literal["scalar", "numpy"]


def check_backend(backend: str) -> None:
    """Validate a ``backend`` selector (raises :class:`ValueError`)."""
    if backend not in ("scalar", "numpy"):
        raise ValueError(
            f"unknown backend {backend!r}; use 'scalar' or 'numpy'"
        )


@dataclass(frozen=True)
class E2EResult:
    """Outcome of an end-to-end delay-bound computation.

    Attributes
    ----------
    delay:
        The certified end-to-end delay bound (``math.inf`` if infeasible).
    sigma:
        The slack consumed by the bounding functions at the target
        ``epsilon``.
    gamma:
        The (optimized or supplied) per-hop rate degradation.
    alpha:
        The EBB decay used (the effective-bandwidth parameter ``s`` for
        MMOO workloads).
    x, thetas:
        The optimizer's free variables (``d = x + sum(thetas)``).
    method:
        ``"exact"`` or ``"paper"``.
    """

    delay: float
    sigma: float
    gamma: float
    alpha: float
    x: float
    thetas: tuple[float, ...]
    method: str

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.delay)


_INFEASIBLE = E2EResult(math.inf, math.inf, 0.0, 0.0, 0.0, (), "exact")


class FixedPointError(RuntimeError):
    """The EDF deadline fixed point did not reach its tolerance."""


@dataclass(frozen=True)
class FixedPointDiagnostics:
    """Convergence record of the EDF deadline fixed point.

    Attributes
    ----------
    iterations:
        Number of damped iterations performed (excluding the FIFO
        bootstrap evaluation).
    residual:
        The final relative residual ``|delta_new - delta| /
        max(1, |delta|)`` — compare against the tolerance.
    converged:
        Whether the residual met the tolerance (always ``True`` when the
        iteration exits early because the bound went infeasible: an
        infinite bound has nothing left to iterate on).
    wall_time_s:
        Wall-clock time of the whole fixed-point resolution.
    """

    iterations: int
    residual: float
    converged: bool
    wall_time_s: float


@dataclass(frozen=True)
class EDFBound:
    """Result of :func:`e2e_delay_bound_edf` plus its diagnostics.

    Iterates as ``(result, delta)`` so existing call sites can keep
    unpacking ``result, delta = e2e_delay_bound_edf(...)``.
    """

    result: E2EResult
    delta: float
    diagnostics: FixedPointDiagnostics

    def __iter__(self) -> Iterator:
        return iter((self.result, self.delta))


def sigma_for_epsilon(
    through: EBB,
    cross_nodes: Sequence[EBB],
    gamma: float,
    epsilon: float,
) -> float:
    """Slack ``sigma`` with end-to-end violation probability ``epsilon``.

    Combines, per Eqs. (31)+(21) in discrete time:

    * the through flow's sample-path bound ``M/(1 - e^{-alpha gamma})``;
    * the last node's service bound ``M_c/(1 - e^{-alpha_c gamma})``;
    * for every earlier node, the geometric-sum-inflated bound
      ``M_c/(1 - e^{-alpha_c gamma})^2``;

    into a single exponential (Eq. (33)) and inverts it at ``epsilon``.
    For homogeneous nodes this reproduces the paper's closed form
    ``M (H+1) / (1 - e^{-alpha gamma})^{2H/(H+1)} e^{-alpha sigma/(H+1)}``.
    """
    check_positive(gamma, "gamma")
    check_probability(epsilon, "epsilon")
    if epsilon <= 0.0:
        raise ValueError("epsilon must be > 0 for a probabilistic bound")
    bounds: list[ExponentialBound] = [through.sample_path_bound(gamma)]
    n = len(cross_nodes)
    for index, cross in enumerate(cross_nodes):
        node_bound = cross.sample_path_bound(gamma)
        if index < n - 1:
            geometric = -math.expm1(-node_bound.decay * gamma)
            node_bound = ExponentialBound(
                node_bound.prefactor / geometric, node_bound.decay
            )
        bounds.append(node_bound)
    return combine_bounds(bounds).inverse(epsilon)


def _solve(
    hop_params: Sequence[HopParameters], sigma: float, method: Method
) -> ThetaSolution:
    if method == "exact":
        return solve_exact(hop_params, sigma)
    if method == "paper":
        return solve_paper(hop_params, sigma)
    raise ValueError(f"unknown method {method!r}; use 'exact' or 'paper'")


def e2e_delay_bound_at_gamma(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    gamma: float,
    *,
    method: Method = "exact",
) -> E2EResult:
    """End-to-end bound for a *fixed* ``gamma`` (no outer optimization)."""
    hops = check_int(hops, "hops", minimum=1)
    check_positive(capacity, "capacity")
    # Eq. (32): (H+1) gamma < C - rho_c - rho
    if (hops + 1) * gamma >= capacity - cross.rate - through.rate:
        return _INFEASIBLE
    try:
        sigma = sigma_for_epsilon(through, [cross] * hops, gamma, epsilon)
    except ValueError:
        # decay * gamma underflow at an extreme grid point
        return _INFEASIBLE
    params = homogeneous_hops(hops, capacity, gamma, cross.rate, delta)
    solution = _solve(params, sigma, method)
    return E2EResult(
        solution.delay,
        sigma,
        gamma,
        through.decay,
        solution.x,
        solution.thetas,
        method,
    )


def e2e_delay_bound(
    through: EBB,
    cross: EBB,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    gamma: float | None = None,
    method: Method = "exact",
    gamma_grid: int = 48,
    backend: Backend = "numpy",
) -> E2EResult:
    """End-to-end delay bound for EBB traffic over a homogeneous path.

    Parameters
    ----------
    through, cross:
        EBB triples of the through flow and of the per-node cross
        aggregate (``cross`` applies at every node, as in Fig. 1).
    hops:
        Path length ``H``.
    capacity:
        Per-node link rate ``C``.
    delta:
        The scheduler constant ``Delta_{0,c}``: ``+inf`` for BMUX, ``0``
        for FIFO, ``d*_0 - d*_c`` for EDF.
    epsilon:
        Target violation probability (e.g. ``1e-9``).
    gamma:
        Fix the per-hop rate degradation; by default it is optimized
        numerically over ``(0, (C - rho_c - rho)/(H+1))`` (Eq. (32)).
    method:
        ``"exact"`` (breakpoint enumeration) or ``"paper"`` (Eqs. 40-42).
    backend:
        ``"numpy"`` (default) runs the ``gamma`` search through the
        batched kernels of :mod:`repro.network.vectorized`; ``"scalar"``
        probes :func:`e2e_delay_bound_at_gamma` point by point.  Both
        re-evaluate the optimum through the scalar path, so the returned
        bounds agree to well within 1e-9 relative.  ``method="paper"``
        always uses the scalar search.
    """
    check_backend(backend)
    if gamma is not None:
        return e2e_delay_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, gamma, method=method
        )
    hops = check_int(hops, "hops", minimum=1)
    check_positive(capacity, "capacity")
    headroom = capacity - cross.rate - through.rate
    if headroom <= 0:
        return _INFEASIBLE

    if backend == "numpy" and method == "exact":
        from repro.network.vectorized import optimize_gamma_e2e

        g_best, _ = optimize_gamma_e2e(
            through, cross, hops, capacity, delta, epsilon,
            gamma_grid=gamma_grid,
        )
        return e2e_delay_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, g_best,
            method=method,
        )

    gamma_max = headroom / (hops + 1)

    def objective(g: float) -> float:
        return e2e_delay_bound_at_gamma(
            through, cross, hops, capacity, delta, epsilon, g, method=method
        ).delay

    lo = gamma_max * 1e-6
    hi = gamma_max * (1.0 - 1e-9)
    g_best, _ = grid_then_golden(
        objective, lo, hi, grid_points=gamma_grid, log_spaced=True
    )
    return e2e_delay_bound_at_gamma(
        through, cross, hops, capacity, delta, epsilon, g_best, method=method
    )


# --------------------------------------------------------------------- #
# MMOO workloads: joint optimization over (s, gamma)
# --------------------------------------------------------------------- #


def _max_feasible_s(
    traffic: MMOOParameters, n_total: int, capacity: float
) -> float:
    """Largest effective-bandwidth parameter keeping the load below C.

    The effective bandwidth is nondecreasing in ``s``, so the boundary is
    found by :func:`repro.utils.numeric.bisect_increasing` at an explicit
    relative tolerance (callers back off by a further ``1 - 1e-9`` factor
    before using it as a search endpoint).
    """
    hi = 50.0 / traffic.peak
    if n_total * traffic.peak_rate < capacity:
        return hi  # effectively unconstrained
    if n_total * traffic.effective_bandwidth(hi) < capacity:
        return hi  # capacity never reached on the search interval
    return bisect_increasing(
        lambda s: n_total * traffic.effective_bandwidth(s),
        capacity,
        1e-6,
        hi,
        tol=1e-12,
    )


def mmoo_ebb_pair(
    traffic: MMOOParameters, n_through: int, n_cross: int, s: float
) -> tuple[EBB, EBB]:
    """The (through, cross) EBB pair of MMOO aggregates at parameter ``s``.

    ``n_cross = 0`` yields an epsilon-rate placeholder (rate ``1e-12``,
    prefactor ``1``) so the downstream formulas stay well defined; every
    MMOO entry point shares this one construction so bounds computed
    through different layers agree bitwise.
    """
    through = traffic.ebb(n_through, s)
    if n_cross > 0:
        cross = traffic.ebb(n_cross, s)
    else:
        cross = EBB(1.0, 1e-12, s)
    return through, cross


def e2e_delay_bound_mmoo(
    traffic: MMOOParameters,
    n_through: int,
    n_cross: int,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    method: Method = "exact",
    s_grid: int = 24,
    gamma_grid: int = 24,
    backend: Backend = "numpy",
) -> E2EResult:
    """End-to-end delay bound for aggregated MMOO traffic (paper Sec. V).

    ``n_through`` flows form the through aggregate; ``n_cross`` flows the
    per-node cross aggregate (``n_cross = 0`` means no cross traffic).
    Optimizes jointly over the effective-bandwidth parameter ``s`` (the
    EBB decay ``alpha``) and the rate degradation ``gamma``; with
    ``backend="numpy"`` every inner ``gamma`` search runs batched.
    """
    check_backend(backend)
    n_through = check_int(n_through, "n_through", minimum=1)
    n_cross = check_int(n_cross, "n_cross", minimum=0)
    check_positive(capacity, "capacity")
    if (n_through + n_cross) * traffic.mean_rate >= capacity:
        return _INFEASIBLE
    with obs.trace("e2e.mmoo_bound"):
        return _e2e_delay_bound_mmoo_feasible(
            traffic, n_through, n_cross, hops, capacity, delta, epsilon,
            method=method, s_grid=s_grid, gamma_grid=gamma_grid,
            backend=backend,
        )


def _e2e_delay_bound_mmoo_feasible(
    traffic: MMOOParameters,
    n_through: int,
    n_cross: int,
    hops: int,
    capacity: float,
    delta: float,
    epsilon: float,
    *,
    method: Method,
    s_grid: int,
    gamma_grid: int,
    backend: Backend,
) -> E2EResult:
    """The (s, gamma) search of :func:`e2e_delay_bound_mmoo` after the
    argument checks and the load feasibility gate have passed."""
    s_max = _max_feasible_s(traffic, n_through + max(n_cross, 1), capacity)

    def ebb_pair(s: float) -> tuple[EBB, EBB]:
        return mmoo_ebb_pair(traffic, n_through, n_cross, s)

    def at_s(s: float) -> E2EResult:
        through, cross = ebb_pair(s)
        return e2e_delay_bound(
            through,
            cross,
            hops,
            capacity,
            delta,
            epsilon,
            method=method,
            gamma_grid=gamma_grid,
            backend=backend,
        )

    if backend == "numpy" and method == "exact":
        # delay-only objective for the s search: the batched gamma search
        # plus one probe at its optimum — the probe mirrors the scalar
        # evaluation, so the s trajectory matches the scalar backend's;
        # only the final s is materialized through the scalar path
        from repro.network.vectorized import _e2e_probe, optimize_gamma_e2e

        def objective(s: float) -> float:
            through, cross = ebb_pair(s)
            if capacity - cross.rate - through.rate <= 0:
                return math.inf
            hops_int = check_int(hops, "hops", minimum=1)
            g_best, _ = optimize_gamma_e2e(
                through, cross, hops_int, capacity, delta, epsilon,
                gamma_grid=gamma_grid,
            )
            return _e2e_probe(
                through, cross, hops_int, capacity, delta, epsilon, g_best
            )

    else:

        def objective(s: float) -> float:
            return at_s(s).delay

    s_best, _ = grid_then_golden(
        objective, s_max * 1e-4, s_max * (1.0 - 1e-9),
        grid_points=s_grid, log_spaced=True,
    )
    return at_s(s_best)


def e2e_delay_bound_edf(
    traffic: MMOOParameters,
    n_through: int,
    n_cross: int,
    hops: int,
    capacity: float,
    epsilon: float,
    *,
    deadline_weight_through: float = 1.0,
    deadline_weight_cross: float = 10.0,
    method: Method = "exact",
    tol: float = 1e-4,
    max_iter: int = 40,
    s_grid: int = 24,
    gamma_grid: int = 24,
    backend: Backend = "numpy",
    on_nonconvergence: Literal["warn", "raise", "ignore"] = "warn",
) -> EDFBound:
    """EDF bound with self-referential deadlines (paper Examples 1-3).

    The examples set the per-node a priori deadlines proportional to the
    resulting end-to-end bound: ``d*_0 = w_0 d_e2e / H`` and
    ``d*_c = w_c d_e2e / H`` (the paper uses ``w_0 = 1, w_c = 10``), hence
    ``Delta_{0,c} = (w_0 - w_c) d_e2e / H`` — a fixed point in ``d_e2e``.
    Resolved by damped iteration from the FIFO bound.

    Returns an :class:`EDFBound` — unpackable as ``(result, delta)`` —
    whose ``diagnostics`` record the iteration count, the final relative
    residual, and convergence.  If the residual does not meet ``tol``
    within ``max_iter`` iterations, ``on_nonconvergence`` selects the
    policy: ``"warn"`` (default) emits a :class:`RuntimeWarning` and
    flags ``converged=False``; ``"raise"`` raises
    :class:`FixedPointError`; ``"ignore"`` only flags the result.
    """
    check_probability(epsilon, "epsilon")
    check_positive(deadline_weight_through, "deadline_weight_through")
    check_positive(deadline_weight_cross, "deadline_weight_cross")
    if on_nonconvergence not in ("warn", "raise", "ignore"):
        raise ValueError(
            "on_nonconvergence must be 'warn', 'raise', or 'ignore', got "
            f"{on_nonconvergence!r}"
        )
    start = time.perf_counter()

    def bound_at(delta: float) -> E2EResult:
        return e2e_delay_bound_mmoo(
            traffic, n_through, n_cross, hops, capacity, delta, epsilon,
            method=method, s_grid=s_grid, gamma_grid=gamma_grid,
            backend=backend,
        )

    def done(
        result: E2EResult, delta: float, iterations: int,
        residual: float, converged: bool,
    ) -> EDFBound:
        return EDFBound(
            result=result,
            delta=delta,
            diagnostics=FixedPointDiagnostics(
                iterations=iterations,
                residual=residual,
                converged=converged,
                wall_time_s=time.perf_counter() - start,
            ),
        )

    weight_gap = deadline_weight_through - deadline_weight_cross
    with obs.trace("e2e.edf_fixed_point"):
        current = bound_at(0.0)  # FIFO start
        if not current.feasible:
            return done(current, 0.0, 0, 0.0, True)
        delta = weight_gap * current.delay / hops
        residual = math.inf
        for iteration in range(1, max_iter + 1):
            result = bound_at(delta)
            if obs.enabled():
                obs.add("e2e.edf_iterations")
            if not result.feasible:
                # an infinite bound cannot move: the iteration is at rest
                return done(result, delta, iteration, 0.0, True)
            new_delta = weight_gap * result.delay / hops
            step = abs(new_delta - delta)
            scale = max(1.0, abs(delta))
            residual = step / scale
            if obs.enabled():
                obs.observe("e2e.edf_residual", residual)
            if step <= tol * scale:
                return done(result, new_delta, iteration, residual, True)
            delta = 0.5 * (delta + new_delta)  # damping
    message = (
        f"EDF deadline fixed point did not converge in {max_iter} "
        f"iterations: relative residual {residual:.3g} > tol {tol:g}"
    )
    if on_nonconvergence == "raise":
        raise FixedPointError(message)
    if on_nonconvergence == "warn":
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    return done(result, delta, max_iter, residual, False)
