"""Tests for the scalar optimization helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.numeric import (
    bisect_increasing,
    golden_section_min,
    grid_then_golden,
    logspace,
    minimize_piecewise_linear,
    refine_grid_minimum,
    weighted_union_bound_constant,
)


class TestBisect:
    def test_linear(self):
        assert bisect_increasing(lambda x: 2 * x, 6.0, 0.0, 10.0) == pytest.approx(3.0)

    def test_target_at_low(self):
        assert bisect_increasing(lambda x: x, -1.0, 0.0, 10.0) == 0.0

    def test_unbracketed_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 100.0, 0.0, 10.0)

    @given(st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, target):
        f = lambda x: x**3
        x = bisect_increasing(f, target, 0.0, 4.0)
        assert f(x) == pytest.approx(target, rel=1e-6)


class TestGoldenSection:
    def test_parabola(self):
        x, fx = golden_section_min(lambda x: (x - 2.5) ** 2 + 1.0, 0.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-6)
        assert fx == pytest.approx(1.0, abs=1e-9)

    def test_boundary_minimum(self):
        x, _ = golden_section_min(lambda x: x, 1.0, 5.0)
        assert x == pytest.approx(1.0, abs=1e-5)

    def test_empty_bracket_raises(self):
        with pytest.raises(ValueError):
            golden_section_min(lambda x: x, 5.0, 1.0)


class TestGridThenGolden:
    def test_multimodal_finds_global(self):
        # two local minima; grid scan must land in the right basin
        f = lambda x: min((x - 1.0) ** 2 + 0.5, (x - 8.0) ** 2)
        x, fx = grid_then_golden(f, 0.0, 10.0, grid_points=41)
        assert x == pytest.approx(8.0, abs=1e-5)
        assert fx == pytest.approx(0.0, abs=1e-8)

    def test_handles_infeasible_regions(self):
        f = lambda x: (x - 3.0) ** 2 if x > 1.0 else math.inf
        x, fx = grid_then_golden(f, 0.0, 10.0, grid_points=21)
        assert x == pytest.approx(3.0, abs=1e-5)

    def test_log_spaced(self):
        f = lambda x: (math.log10(x) + 2.0) ** 2  # min at x = 0.01
        x, _ = grid_then_golden(f, 1e-4, 1.0, grid_points=33, log_spaced=True)
        assert x == pytest.approx(0.01, rel=1e-3)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            grid_then_golden(lambda x: x, 0.0, 1.0, grid_points=2)
        with pytest.raises(ValueError):
            grid_then_golden(lambda x: x, 0.0, 1.0, log_spaced=True)


class TestRefineGridMinimum:
    def test_refines_within_bracketing_cells(self):
        f = lambda x: (x - 2.6) ** 2
        xs = [0.0, 1.0, 2.0, 3.0, 4.0]
        x, fx = refine_grid_minimum(f, xs, [f(x) for x in xs])
        assert x == pytest.approx(2.6, abs=1e-6)
        assert fx == pytest.approx(0.0, abs=1e-9)

    def test_matches_grid_then_golden_tail(self):
        f = lambda x: min((x - 1.0) ** 2 + 0.5, (x - 8.0) ** 2)
        xs = [10.0 * i / 40.0 for i in range(41)]
        expected = grid_then_golden(f, 0.0, 10.0, grid_points=41)
        assert refine_grid_minimum(f, xs, [f(x) for x in xs]) == expected

    def test_nonfinite_best_returned_unrefined(self):
        # an all-infeasible grid must pass inf through, not call golden
        xs = [1.0, 2.0, 3.0]
        x, fx = refine_grid_minimum(lambda x: math.inf, xs, [math.inf] * 3)
        assert x == 1.0
        assert math.isinf(fx)

    def test_keeps_grid_point_when_refinement_no_better(self):
        # fs deliberately below func: refinement cannot improve on fs[best]
        xs = [0.0, 1.0, 2.0]
        x, fx = refine_grid_minimum(lambda x: 5.0, xs, [3.0, 1.0, 3.0])
        assert (x, fx) == (1.0, 1.0)

    def test_boundary_minimum_brackets_one_sided(self):
        f = lambda x: x
        xs = [0.0, 1.0, 2.0]
        x, fx = refine_grid_minimum(f, xs, [f(x) for x in xs])
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            refine_grid_minimum(lambda x: x, [1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            refine_grid_minimum(lambda x: x, [], [])


class TestMinimizePiecewiseLinear:
    def test_v_shape(self):
        f = lambda x: abs(x - 3.0)
        x, fx = minimize_piecewise_linear(f, [1.0, 3.0, 7.0])
        assert x == 3.0
        assert fx == 0.0

    def test_lower_boundary(self):
        f = lambda x: x
        x, fx = minimize_piecewise_linear(f, [2.0, 5.0], lower=1.0)
        assert x == 1.0

    def test_ignores_out_of_range_and_nonfinite(self):
        f = lambda x: (x - 2.0) ** 2  # not PWL but fine for the clip test
        x, _ = minimize_piecewise_linear(
            f, [-5.0, 2.0, math.inf, math.nan, 100.0], lower=0.0, upper=10.0
        )
        assert x == 2.0


class TestUnionBoundConstant:
    def test_single_term_identity(self):
        m, a = weighted_union_bound_constant([2.0], [3.0])
        # inf over a single sigma_1 = sigma is just M e^{-alpha sigma}
        assert a == pytest.approx(3.0)
        assert m == pytest.approx(2.0)

    def test_matches_brute_force_two_terms(self):
        # the infimum is over *unconstrained* splits sigma_1 + sigma_2 =
        # sigma (exponential bounding functions stay valid for negative
        # arguments, where they exceed 1)
        m1, a1, m2, a2 = 2.0, 1.0, 5.0, 3.0
        m, a = weighted_union_bound_constant([m1, m2], [a1, a2])
        for sigma in (0.5, 1.0, 4.0, 10.0):
            lo, hi = -10.0, sigma + 10.0
            brute = min(
                m1 * math.exp(-a1 * s1) + m2 * math.exp(-a2 * (sigma - s1))
                for s1 in [lo + (hi - lo) * j / 20000.0 for j in range(20001)]
            )
            assert m * math.exp(-a * sigma) == pytest.approx(brute, rel=1e-5)

    def test_recovers_paper_eq_34(self):
        # combining one envelope with prefactor M/(1-q) and H-1 convolved
        # terms with prefactor M/(1-q)^2, all with rate alpha, must give the
        # paper's Eq. (34): M H / (1-q)^((2H-1)/H) * exp(-alpha sigma / H)
        alpha, gamma, big_m, h = 0.7, 0.3, 1.0, 5
        q = math.exp(-alpha * gamma)
        prefactors = [big_m / (1 - q)] + [big_m / (1 - q) ** 2] * (h - 1)
        rates = [alpha] * h
        m, a = weighted_union_bound_constant(prefactors, rates)
        assert a == pytest.approx(alpha / h)
        assert m == pytest.approx(big_m * h / (1 - q) ** ((2 * h - 1) / h))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            weighted_union_bound_constant([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_union_bound_constant([], [])
        with pytest.raises(ValueError):
            weighted_union_bound_constant([1.0], [-1.0])
        with pytest.raises(ValueError):
            weighted_union_bound_constant([0.0], [1.0])

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=4),
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=4),
        st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_is_a_lower_bound_on_any_split(self, ms, rates, sigma):
        n = min(len(ms), len(rates))
        ms, rates = ms[:n], rates[:n]
        m, a = weighted_union_bound_constant(ms, rates)
        combined = m * math.exp(-a * sigma)
        # the even split is one admissible split; the infimum cannot exceed it
        even = sum(
            mj * math.exp(-rj * sigma / n) for mj, rj in zip(ms, rates)
        )
        assert combined <= even * (1 + 1e-9)


class TestLogspace:
    def test_endpoints(self):
        pts = logspace(0.1, 10.0, 5)
        assert pts[0] == pytest.approx(0.1)
        assert pts[-1] == pytest.approx(10.0)
        assert len(pts) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            logspace(0.0, 1.0, 3)
