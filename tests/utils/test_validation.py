"""Tests for argument validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_int,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_passes_through(self):
        assert check_finite(3) == 3.0
        assert check_finite(2.5) == 2.5

    def test_rejects_inf_and_nan(self):
        with pytest.raises(ValueError):
            check_finite(math.inf, "x")
        with pytest.raises(ValueError):
            check_finite(math.nan, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_finite("abc", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="rate"):
            check_finite(math.inf, "rate")


class TestSignChecks:
    def test_positive(self):
        assert check_positive(0.5) == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestProbability:
    def test_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "eps")
        with pytest.raises(ValueError):
            check_probability(-0.5, "eps")


class TestRange:
    def test_closed(self):
        assert check_in_range(1.0, 0.0, 2.0) == 1.0
        assert check_in_range(0.0, 0.0, 2.0) == 0.0

    def test_open_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, 0.0, 2.0, "x", low_open=True)
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 2.0, "x", high_open=True)


class TestCheckInt:
    def test_accepts_int_and_integral_float(self):
        assert check_int(3) == 3
        assert check_int(3.0) == 3

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_int(3.5, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_int(True, "n")

    def test_minimum(self):
        with pytest.raises(ValueError):
            check_int(0, "n", minimum=1)
