"""Shared test configuration.

Registers deterministic Hypothesis profiles so the property-based
suites produce the same examples on every run:

* ``default`` — derandomized, 100 examples (local runs);
* ``ci`` — derandomized, 200 examples, no deadline (CI machines are
  noisy enough that per-example deadlines only produce flakes).

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow sets it); the
derandomized default is always loaded otherwise, so a plain local
``pytest`` is deterministic too.  Hypothesis is optional: the guard
keeps the rest of the suite importable in environments without it.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    settings = None

if settings is not None:
    settings.register_profile(
        "default", derandomize=True, max_examples=100, deadline=None
    )
    settings.register_profile(
        "ci", derandomize=True, max_examples=200, deadline=None
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
