"""Smoke tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestLazyExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol

    def test_dir_lists_exports(self):
        listed = dir(repro)
        assert "PiecewiseLinear" in listed
        assert "e2e_delay_bound" in listed

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_caching(self):
        first = repro.PiecewiseLinear
        second = repro.PiecewiseLinear
        assert first is second


class TestSubpackageAllsResolve:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.algebra",
            "repro.arrivals",
            "repro.scheduling",
            "repro.service",
            "repro.singlenode",
            "repro.network",
            "repro.simulation",
            "repro.experiments",
            "repro.topology",
            "repro.utils",
        ],
    )
    def test_every_all_entry_exists(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.algebra.functions",
            "repro.algebra.minplus",
            "repro.arrivals.ebb",
            "repro.arrivals.mmoo",
            "repro.arrivals.markov",
            "repro.service.leftover",
            "repro.scheduling.delta",
            "repro.network.optimization",
            "repro.network.e2e",
            "repro.simulation.engine",
            "repro.simulation.rare",
        ],
    )
    def test_module_docstrings_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_public_functions_documented(self):
        from repro.network import e2e_delay_bound, solve_exact
        from repro.service import leftover_service_curve

        for obj in (e2e_delay_bound, solve_exact, leftover_service_curve):
            assert obj.__doc__ and len(obj.__doc__) > 40
