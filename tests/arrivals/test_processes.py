"""Tests for the sample-path generators."""

import numpy as np
import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import (
    cbr_arrivals,
    mmoo_aggregate_arrivals,
    mmoo_per_flow_arrivals,
    poisson_arrivals,
)


class TestMMOOGenerators:
    def test_shapes(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(0)
        agg = mmoo_aggregate_arrivals(m, 10, 100, rng)
        assert agg.shape == (100,)
        per = mmoo_per_flow_arrivals(m, 10, 100, rng)
        assert per.shape == (10, 100)

    def test_values_are_multiples_of_peak(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(1)
        agg = mmoo_aggregate_arrivals(m, 7, 500, rng)
        ratios = agg / m.peak
        assert np.allclose(ratios, np.round(ratios))
        assert agg.min() >= 0.0
        assert agg.max() <= 7 * m.peak + 1e-9

    def test_reproducible_with_seed(self):
        m = MMOOParameters.paper_defaults()
        a = mmoo_aggregate_arrivals(m, 5, 50, np.random.default_rng(9))
        b = mmoo_aggregate_arrivals(m, 5, 50, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_cold_start(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(2)
        agg = mmoo_aggregate_arrivals(m, 5, 10, rng, stationary_start=False)
        assert agg[0] == 0.0  # all flows start OFF

    def test_per_flow_mean_matches_model(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(4)
        per = mmoo_per_flow_arrivals(m, 30, 30_000, rng)
        assert float(per.mean()) == pytest.approx(m.mean_rate, rel=0.08)

    def test_validation(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mmoo_aggregate_arrivals(m, 0, 10, rng)
        with pytest.raises(ValueError):
            mmoo_aggregate_arrivals(m, 1, 0, rng)


class TestOtherGenerators:
    def test_cbr(self):
        arr = cbr_arrivals(2.5, 4)
        assert np.array_equal(arr, np.array([2.5, 2.5, 2.5, 2.5]))

    def test_poisson_mean(self):
        rng = np.random.default_rng(5)
        arr = poisson_arrivals(3.0, 0.5, 50_000, rng)
        assert float(arr.mean()) == pytest.approx(1.5, rel=0.05)

    def test_poisson_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0, 10, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, 10, rng)
