"""Tests for the MMOO source model and its effective bandwidth."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import mmoo_aggregate_arrivals


class TestChainBasics:
    def test_paper_defaults(self):
        # paper Sec. V: P = 1.5 kbit, p11 = 0.989, p22 = 0.9 ->
        # peak 1.5 Mbps, mean ~0.15 Mbps
        m = MMOOParameters.paper_defaults()
        assert m.peak_rate == pytest.approx(1.5)
        assert m.mean_rate == pytest.approx(0.1486, abs=5e-4)
        assert m.p12 == pytest.approx(0.011)
        assert m.p21 == pytest.approx(0.1)

    def test_stationary_distribution(self):
        m = MMOOParameters(peak=1.0, p11=0.8, p22=0.6)
        # pi_on = p12 / (p12 + p21) = 0.2 / 0.6
        assert m.on_probability == pytest.approx(0.2 / 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMOOParameters(peak=0.0, p11=0.9, p22=0.9)
        with pytest.raises(ValueError):
            MMOOParameters(peak=1.0, p11=1.5, p22=0.9)
        with pytest.raises(ValueError):
            # p12 + p21 = 0.6 + 0.6 > 1 violates the paper's assumption
            MMOOParameters(peak=1.0, p11=0.4, p22=0.4)
        with pytest.raises(ValueError):
            # frozen chain (p12 = p21 = 0) is degenerate
            MMOOParameters(peak=1.0, p11=1.0, p22=1.0)


class TestEffectiveBandwidth:
    def test_limits(self):
        m = MMOOParameters.paper_defaults()
        # s -> 0: effective bandwidth tends to the mean rate
        assert m.effective_bandwidth(1e-6) == pytest.approx(m.mean_rate, rel=1e-2)
        # s -> inf: tends to the peak rate
        assert m.effective_bandwidth(50.0) == pytest.approx(m.peak_rate, rel=1e-2)

    def test_monotone_in_s(self):
        m = MMOOParameters.paper_defaults()
        values = [m.effective_bandwidth(s) for s in (0.01, 0.1, 1.0, 10.0)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_between_mean_and_peak(self):
        m = MMOOParameters.paper_defaults()
        for s in (0.01, 0.5, 2.0, 20.0):
            eb = m.effective_bandwidth(s)
            assert m.mean_rate - 1e-9 <= eb <= m.peak_rate + 1e-9

    def test_rejects_nonpositive_s(self):
        with pytest.raises(ValueError):
            MMOOParameters.paper_defaults().effective_bandwidth(0.0)

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.85, max_value=0.999),
        st.floats(min_value=0.5, max_value=0.99),
        st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_chernoff_bound_against_exact_mgf(self, peak, p11, p22, s):
        """The spectral-radius formula must upper-bound the exact finite-t
        MGF computed by dynamic programming over the chain."""
        try:
            m = MMOOParameters(peak=peak, p11=p11, p22=p22)
        except ValueError:
            return
        eb = m.effective_bandwidth(s)
        # exact E[e^{s A(t)}] for the stationary chain, t slots, by DP:
        # phi_t(state) = E[e^{s A(t)} | X_1 = state]; arrivals counted
        # per-slot in the current state.
        t_slots = 12
        e_sp = math.exp(s * peak)
        # backward recursion: v_t = 1; v_k(x) = r(x) * sum_y P(x,y) v_{k+1}(y)
        v_off, v_on = 1.0, 1.0
        for _ in range(t_slots):
            new_off = 1.0 * (m.p11 * v_off + m.p12 * v_on)
            new_on = e_sp * (m.p21 * v_off + m.p22 * v_on)
            v_off, v_on = new_off, new_on
        mgf = (1.0 - m.on_probability) * v_off + m.on_probability * v_on
        assert math.log(mgf) <= s * t_slots * eb + 1e-7


class TestEBBFromMMOO:
    def test_ebb_triple(self):
        m = MMOOParameters.paper_defaults()
        ebb = m.ebb(100, 1.0)
        assert ebb.prefactor == 1.0
        assert ebb.decay == 1.0
        assert ebb.rate == pytest.approx(100 * m.effective_bandwidth(1.0))

    def test_log_mgf_bound(self):
        m = MMOOParameters.paper_defaults()
        assert m.log_mgf_bound(1.0, 5.0) == pytest.approx(
            5.0 * m.effective_bandwidth(1.0)
        )

    def test_empirical_mean_rate(self):
        m = MMOOParameters.paper_defaults()
        rng = np.random.default_rng(3)
        arr = mmoo_aggregate_arrivals(m, 200, 20_000, rng)
        empirical_rate = float(arr.mean()) / 200
        assert empirical_rate == pytest.approx(m.mean_rate, rel=0.05)
