"""Tests for the EBB arrival model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.ebb import EBB, aggregate_ebb
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import mmoo_aggregate_arrivals


class TestEBBBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            EBB(0.5, 1.0, 1.0)  # M < 1
        with pytest.raises(ValueError):
            EBB(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            EBB(1.0, 1.0, -1.0)

    def test_interval_bound_clipped(self):
        p = EBB(2.0, 1.0, 1.0)
        assert p.interval_bound(5.0, 0.0) == 1.0
        assert p.interval_bound(5.0, 10.0) == pytest.approx(2.0 * math.exp(-10.0))
        with pytest.raises(ValueError):
            p.interval_bound(-1.0, 0.0)

    def test_scaled(self):
        p = EBB(1.0, 0.5, 2.0)
        q = p.scaled(10)
        assert q.rate == pytest.approx(5.0)
        assert q.decay == p.decay
        assert q.prefactor == p.prefactor
        with pytest.raises(ValueError):
            p.scaled(0)


class TestSamplePathEnvelope:
    def test_formula(self):
        # paper Sec. IV: G(t) = (rho + gamma) t,
        # eps(sigma) = M e^{-alpha sigma} / (1 - e^{-alpha gamma})
        p = EBB(1.5, 2.0, 0.7)
        gamma = 0.3
        env = p.sample_path_envelope(gamma)
        assert env(4.0) == pytest.approx((2.0 + gamma) * 4.0)
        bound = env.exponential_bound()
        q = math.exp(-0.7 * gamma)
        assert bound.prefactor == pytest.approx(1.5 / (1.0 - q))
        assert bound.decay == pytest.approx(0.7)

    def test_geometric_sum_identity(self):
        # the prefactor equals the geometric sum sum_j M e^{-alpha j gamma}
        p = EBB(1.0, 1.0, 0.5)
        gamma = 0.4
        bound = p.sample_path_bound(gamma)
        geometric = sum(math.exp(-0.5 * j * gamma) for j in range(100000))
        assert bound.prefactor == pytest.approx(geometric, rel=1e-6)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            EBB(1.0, 1.0, 1.0).sample_path_envelope(0.0)

    def test_smaller_gamma_means_larger_prefactor(self):
        p = EBB(1.0, 1.0, 1.0)
        assert (
            p.sample_path_bound(0.1).prefactor > p.sample_path_bound(1.0).prefactor
        )


class TestAggregateEBB:
    def test_rates_add(self):
        agg = aggregate_ebb([EBB(1.0, 1.0, 1.0), EBB(1.0, 2.0, 1.0)])
        assert agg.rate == pytest.approx(3.0)

    def test_equal_decay_combination(self):
        # two identical flows with M=1, alpha: combined decay alpha/2,
        # prefactor 2 (w * prod (M alpha)^{1/(alpha w)} with w = 2/alpha)
        agg = aggregate_ebb([EBB(1.0, 1.0, 1.0), EBB(1.0, 1.0, 1.0)])
        assert agg.decay == pytest.approx(0.5)
        assert agg.prefactor == pytest.approx(2.0)

    def test_single_passthrough(self):
        p = EBB(1.0, 1.0, 1.0)
        assert aggregate_ebb([p]) is p

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_ebb([])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=5.0),
                st.floats(min_value=0.1, max_value=3.0),
                st.floats(min_value=0.2, max_value=3.0),
            ),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_aggregate_is_weaker_than_members(self, triples):
        flows = [EBB(m, r, a) for m, r, a in triples]
        agg = aggregate_ebb(flows)
        # the aggregate decay is the harmonic combination: slower than each
        assert agg.decay <= min(f.decay for f in flows) + 1e-12
        assert agg.prefactor >= 1.0


class TestEBBAgainstSimulatedTraffic:
    """Statistical check: the Eq. (27) bound holds on simulated MMOO traffic."""

    def test_interval_bound_holds_empirically(self):
        params = MMOOParameters.paper_defaults()
        n_flows = 50
        s = 1.0
        ebb = params.ebb(n_flows, s)
        rng = np.random.default_rng(42)
        arrivals = mmoo_aggregate_arrivals(params, n_flows, 60_000, rng)
        cum = np.concatenate([[0.0], np.cumsum(arrivals)])
        for length in (1, 5, 20):
            windows = cum[length:] - cum[:-length]
            for sigma in (5.0, 10.0):
                threshold = ebb.rate * length + sigma
                empirical = float(np.mean(windows > threshold))
                bound = ebb.interval_bound(length, sigma)
                # generous slack: empirical frequency must not exceed the
                # bound beyond statistical noise
                assert empirical <= bound + 3e-3
