"""Tests for deterministic envelopes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.envelopes import (
    DeterministicEnvelope,
    leaky_bucket,
    multi_leaky_bucket,
    smallest_envelope,
)


class TestLeakyBucket:
    def test_values(self):
        e = leaky_bucket(rate=2.0, burst=5.0)
        assert e(0.0) == 0.0  # paper convention: E(t) = 0 for t <= 0
        assert e(1.0) == pytest.approx(7.0)
        assert e.rate == 2.0
        assert e.burst == 5.0

    def test_is_concave(self):
        assert leaky_bucket(2.0, 5.0).is_concave()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            leaky_bucket(-1.0, 0.0)
        with pytest.raises(ValueError):
            leaky_bucket(1.0, -1.0)

    def test_rejects_decreasing_curve(self):
        bad = PiecewiseLinear.from_points([(0.0, 5.0), (1.0, 0.0)], 0.0)
        with pytest.raises(ValueError):
            DeterministicEnvelope(bad)

    def test_rejects_cutoff_curve(self):
        with pytest.raises(ValueError):
            DeterministicEnvelope(PiecewiseLinear.delay(1.0))


class TestMultiLeakyBucket:
    def test_takes_minimum(self):
        # peak-rate constraint min(3t, t + 4): concave T-SPEC-like envelope
        e = multi_leaky_bucket([(3.0, 0.0), (1.0, 4.0)])
        assert e(1.0) == pytest.approx(3.0)
        assert e(4.0) == pytest.approx(8.0)
        assert e.is_concave()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            multi_leaky_bucket([])


class TestConformance:
    def test_conforming_path(self):
        e = leaky_bucket(rate=1.0, burst=2.0)
        # bursts of 2 separated by idle slots: every window fits r*t + b
        path = [2.0, 0.0, 2.0, 0.0, 2.0, 0.0]
        assert e.conforms(path)

    def test_violating_path(self):
        e = leaky_bucket(rate=1.0, burst=2.0)
        path = [5.0, 0.0]  # burst of 5 > 1*1 + 2
        assert not e.conforms(path)
        assert e.worst_violation(path) == pytest.approx(5.0 - 3.0)

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            leaky_bucket(1.0, 1.0).conforms([1.0, -0.5])

    @given(
        st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_smallest_envelope_is_conformant_envelope(self, path):
        env_points = smallest_envelope(path)
        # build a PWL through the minimal envelope points: by construction
        # it dominates every window of the path
        curve = PiecewiseLinear(
            list(range(len(env_points))), env_points, final_slope=max(path) + 1.0
        )
        # monotonize: the minimal envelope is nondecreasing already
        e = DeterministicEnvelope(curve)
        assert e.worst_violation(path) <= 1e-9


class TestSmallestEnvelope:
    def test_simple(self):
        # path 3,1,0,3: E[1]=3, E[2]=4, E[3]=4, E[4]=7
        env = smallest_envelope([3.0, 1.0, 0.0, 3.0])
        assert env == [0.0, 3.0, 4.0, 4.0, 7.0]

    def test_subadditive(self):
        rng = np.random.default_rng(7)
        path = rng.uniform(0.0, 2.0, size=40)
        env = smallest_envelope(path)
        n = len(env) - 1
        for i in range(1, n + 1):
            for j in range(1, n + 1 - i):
                assert env[i + j] <= env[i] + env[j] + 1e-9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            smallest_envelope([-1.0])


class TestAggregation:
    def test_aggregate_sums(self):
        a = leaky_bucket(1.0, 2.0)
        b = leaky_bucket(3.0, 1.0)
        agg = a.aggregate(b)
        assert agg(2.0) == pytest.approx(a(2.0) + b(2.0))

    def test_scale(self):
        e = leaky_bucket(1.0, 2.0).scale(5)
        assert e(3.0) == pytest.approx(5.0 * (3.0 + 2.0))
        with pytest.raises(ValueError):
            leaky_bucket(1.0, 2.0).scale(0)
