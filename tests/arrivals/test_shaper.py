"""Tests for the greedy leaky-bucket shaper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.envelopes import leaky_bucket
from repro.arrivals.shaper import ShapedSource, shape_to_leaky_bucket


class TestShaping:
    def test_conformant_traffic_passes_through(self):
        # 1 unit/slot through a (2, 5) shaper: untouched
        arrivals = np.ones(20)
        output, backlog = shape_to_leaky_bucket(arrivals, rate=2.0, burst=5.0)
        assert np.allclose(output, arrivals)
        assert np.allclose(backlog, 0.0)

    def test_burst_is_clipped_and_conserved(self):
        arrivals = np.zeros(30)
        arrivals[0] = 50.0
        output, backlog = shape_to_leaky_bucket(arrivals, rate=2.0, burst=5.0)
        # first slot releases burst + rate tokens
        assert output[0] == pytest.approx(7.0)
        assert output.sum() == pytest.approx(50.0)  # conservation (drains)
        assert backlog[0] == pytest.approx(43.0)

    def test_output_conforms_to_envelope(self):
        rng = np.random.default_rng(3)
        arrivals = rng.uniform(0.0, 6.0, 200)
        output, _ = shape_to_leaky_bucket(arrivals, rate=2.0, burst=4.0)
        assert leaky_bucket(2.0, 4.0).conforms(output, tol=1e-6)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=60),
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_conformance_and_causality_properties(self, arrivals, rate, burst):
        output, backlog = shape_to_leaky_bucket(arrivals, rate, burst)
        # conformance over every window
        assert leaky_bucket(rate, burst).conforms(output, tol=1e-6)
        # causality: cumulative output never exceeds cumulative input
        cum_in = np.cumsum(arrivals)
        cum_out = np.cumsum(output)
        assert np.all(cum_out <= cum_in + 1e-9)
        # work conservation of the greedy shaper: if there is backlog,
        # the slot's release hit the token limit (cannot be increased)
        for t in range(len(arrivals)):
            if backlog[t] > 1e-9:
                window = output[max(0, t - 0) : t + 1]
                assert window.sum() >= 0  # released something or tokens empty

    def test_validation(self):
        with pytest.raises(ValueError):
            shape_to_leaky_bucket([1.0], rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            shape_to_leaky_bucket([-1.0], rate=1.0, burst=1.0)
        with pytest.raises(ValueError):
            shape_to_leaky_bucket([1.0], rate=1.0, burst=-1.0)


class TestShapedSource:
    def test_envelope(self):
        src = ShapedSource(rate=2.0, burst=4.0)
        assert src.envelope().rate == 2.0
        assert src.envelope().burst == 4.0

    def test_shape_matches_function(self):
        src = ShapedSource(rate=2.0, burst=4.0)
        arrivals = np.array([10.0, 0.0, 0.0, 0.0])
        direct, _ = shape_to_leaky_bucket(arrivals, 2.0, 4.0)
        assert np.allclose(src.shape(arrivals), direct)

    def test_shaping_delay_bound(self):
        # input (r=1, b=10) into a shaper (r=2, b=4): delay bound
        # = horizontal deviation = (10 - 4) / 2
        src = ShapedSource(rate=2.0, burst=4.0)
        d = src.shaping_delay_bound(leaky_bucket(1.0, 10.0))
        assert d == pytest.approx((10.0 - 4.0) / 2.0)

    def test_shaping_delay_bound_holds_empirically(self):
        """Traffic conformant to the input envelope leaves the shaper
        within the analytic shaping-delay bound."""
        from repro.scheduling.schedulability import adversarial_arrivals

        input_env = leaky_bucket(1.0, 10.0)
        src = ShapedSource(rate=2.0, burst=4.0)
        bound = src.shaping_delay_bound(input_env)
        arrivals = adversarial_arrivals(input_env, 40)
        output, _ = shape_to_leaky_bucket(arrivals, src.rate, src.burst)
        # worst virtual delay of the shaper queue
        cum_in = np.concatenate([[0.0], np.cumsum(arrivals)])
        cum_out = np.concatenate([[0.0], np.cumsum(output)])
        worst = 0
        for t in range(len(cum_in)):
            s = t
            while s < len(cum_out) and cum_out[s] < cum_in[t] - 1e-9:
                s += 1
            worst = max(worst, s - t)
        assert worst <= np.ceil(bound + 1e-9)
