"""Tests for general Markov-modulated sources."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.markov import MarkovModulatedSource
from repro.arrivals.mmoo import MMOOParameters


def three_state_video():
    """A 3-state source: idle / base-layer / burst."""
    return MarkovModulatedSource(
        [
            [0.90, 0.08, 0.02],
            [0.10, 0.80, 0.10],
            [0.05, 0.25, 0.70],
        ],
        [0.0, 1.0, 4.0],
    )


class TestConstruction:
    def test_valid(self):
        src = three_state_video()
        assert src.n_states == 3
        assert src.peak_rate == 4.0

    def test_stationary_sums_to_one(self):
        pi = three_state_video().stationary
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_mean_rate(self):
        src = three_state_video()
        assert src.mean_rate == pytest.approx(float(src.stationary @ src.rates))

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedSource([[0.5, 0.4], [0.5, 0.5]], [0.0, 1.0])  # rows
        with pytest.raises(ValueError):
            MarkovModulatedSource([[1.0]], [0.0])  # never emits
        with pytest.raises(ValueError):
            MarkovModulatedSource([[0.5, 0.5], [0.5, 0.5]], [1.0])  # shapes
        with pytest.raises(ValueError):
            MarkovModulatedSource([[0.5, 0.5], [0.5, 0.5]], [-1.0, 1.0])
        with pytest.raises(ValueError):
            MarkovModulatedSource([[1.5, -0.5], [0.5, 0.5]], [0.0, 1.0])


class TestEffectiveBandwidth:
    def test_recovers_mmoo_closed_form(self):
        mmoo = MMOOParameters.paper_defaults()
        markov = MarkovModulatedSource.on_off(
            mmoo.peak, mmoo.p11, mmoo.p22
        )
        for s in (0.01, 0.1, 1.0, 5.0):
            assert markov.effective_bandwidth(s) == pytest.approx(
                mmoo.effective_bandwidth(s), rel=1e-9
            )
        assert markov.mean_rate == pytest.approx(mmoo.mean_rate)

    def test_limits(self):
        src = three_state_video()
        assert src.effective_bandwidth(1e-6) == pytest.approx(
            src.mean_rate, rel=1e-2
        )
        assert src.effective_bandwidth(60.0) == pytest.approx(
            src.peak_rate, rel=1e-2
        )

    def test_monotone(self):
        src = three_state_video()
        values = [src.effective_bandwidth(s) for s in (0.01, 0.1, 1.0, 10.0)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_overflow_safe_at_large_s(self):
        src = three_state_video()
        eb = src.effective_bandwidth(500.0)
        assert math.isfinite(eb)
        assert eb == pytest.approx(src.peak_rate, rel=1e-3)

    @given(
        st.floats(min_value=0.6, max_value=0.95),
        st.floats(min_value=0.6, max_value=0.95),
        st.floats(min_value=0.05, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_chernoff_bound_against_exact_mgf(self, stay0, stay1, s):
        """The spectral-radius bound dominates the exact DP MGF."""
        src = MarkovModulatedSource(
            [[stay0, 1 - stay0], [1 - stay1, stay1]], [0.0, 2.0]
        )
        eb = src.effective_bandwidth(s)
        # exact E[e^{s A(t)}] by backward dynamic programming
        t_slots = 10
        v = np.ones(2)
        emit = np.exp(s * src.rates)
        p = src.transition
        for _ in range(t_slots):
            v = emit * (p @ v)
        mgf = float(src.stationary @ v)
        assert math.log(mgf) <= s * t_slots * eb + 1e-7


class TestEBBIntegration:
    def test_ebb_triple(self):
        src = three_state_video()
        ebb = src.ebb(50, 0.5)
        assert ebb.prefactor == 1.0
        assert ebb.decay == 0.5
        assert ebb.rate == pytest.approx(50 * src.effective_bandwidth(0.5))

    def test_e2e_bound_with_markov_workload(self):
        """The whole Section IV pipeline runs on a general Markov source."""
        from repro.network.e2e import e2e_delay_bound

        src = three_state_video()
        through = src.ebb(30, 0.2)
        cross = src.ebb(40, 0.2)
        capacity = (through.rate + cross.rate) * 1.4
        result = e2e_delay_bound(through, cross, 4, capacity, 0.0, 1e-6)
        assert result.feasible
        assert result.delay > 0


class TestSamplePaths:
    def test_mean_matches(self):
        src = three_state_video()
        rng = np.random.default_rng(11)
        arrivals = src.aggregate_arrivals(40, 30_000, rng)
        assert float(arrivals.mean()) / 40 == pytest.approx(
            src.mean_rate, rel=0.05
        )

    def test_reproducible(self):
        src = three_state_video()
        a = src.aggregate_arrivals(5, 100, np.random.default_rng(3))
        b = src.aggregate_arrivals(5, 100, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_on_off_matches_mmoo_statistics(self):
        mmoo = MMOOParameters.paper_defaults()
        markov = MarkovModulatedSource.on_off(mmoo.peak, mmoo.p11, mmoo.p22)
        rng = np.random.default_rng(7)
        arrivals = markov.aggregate_arrivals(100, 30_000, rng)
        assert float(arrivals.mean()) / 100 == pytest.approx(
            mmoo.mean_rate, rel=0.05
        )

    def test_cold_start(self):
        src = three_state_video()
        rng = np.random.default_rng(1)
        arrivals = src.aggregate_arrivals(5, 3, rng, stationary_start=False)
        assert arrivals[0] == 0.0  # state 0 emits nothing

    def test_empirical_ebb_bound_holds(self):
        """Eq. (27) with the spectral-radius envelope on sampled traffic."""
        src = three_state_video()
        n_flows, s = 30, 0.5
        ebb = src.ebb(n_flows, s)
        rng = np.random.default_rng(23)
        arrivals = src.aggregate_arrivals(n_flows, 50_000, rng)
        cum = np.concatenate([[0.0], np.cumsum(arrivals)])
        for length in (1, 10):
            windows = cum[length:] - cum[:-length]
            for sigma in (5.0, 15.0):
                empirical = float(np.mean(windows > ebb.rate * length + sigma))
                assert empirical <= ebb.interval_bound(length, sigma) + 3e-3
