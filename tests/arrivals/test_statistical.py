"""Tests for statistical envelopes and exponential bounding functions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.statistical import (
    ExponentialBound,
    StatisticalEnvelope,
    combine_bounds,
)


class TestExponentialBound:
    def test_value_and_probability(self):
        b = ExponentialBound(2.0, 1.0)
        assert b(0.0) == pytest.approx(2.0)
        assert b.probability(0.0) == 1.0  # clipped
        assert b.probability(10.0) == pytest.approx(2.0 * math.exp(-10.0))

    def test_inverse(self):
        b = ExponentialBound(1.0, 0.5)
        sigma = b.inverse(1e-9)
        assert b(sigma) == pytest.approx(1e-9)

    def test_inverse_clips_at_zero(self):
        b = ExponentialBound(0.5, 1.0)
        assert b.inverse(0.9) == 0.0

    def test_inverse_of_zero_epsilon_raises(self):
        with pytest.raises(ValueError):
            ExponentialBound(1.0, 1.0).inverse(0.0)

    def test_deterministic_case(self):
        b = ExponentialBound(0.0, 1.0)
        assert b.is_deterministic()
        assert b.probability(0.0) == 0.0
        assert b.inverse(1e-9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBound(-1.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialBound(1.0, 0.0)

    def test_deterministic_inverse_accepts_zero_epsilon(self):
        # M = 0 is never violated, so even epsilon = 0 has threshold 0
        assert ExponentialBound(0.0, 1.0).inverse(0.0) == 0.0

    def test_deeply_negative_sigma_does_not_overflow(self):
        b = ExponentialBound(2.0, 1.0)
        assert b(-1e6) == math.inf  # raw value saturates instead of raising
        assert b.probability(-1e6) == 1.0

    def test_probability_clips_exactly_at_the_knee(self):
        b = ExponentialBound(math.e, 1.0)  # knee at sigma = 1
        assert b.probability(1.0) == 1.0
        assert b.probability(1.0 + 1e-9) < 1.0

    def test_inverse_of_extreme_epsilon_does_not_overflow(self):
        b = ExponentialBound(1e300, 1.0)
        sigma = b.inverse(5e-324)  # smallest positive denormal
        assert math.isfinite(sigma)
        assert b(sigma) == pytest.approx(5e-324, rel=1e-6)

    def test_inverse_round_trip_near_the_knee(self):
        b = ExponentialBound(2.0, 3.0)
        for epsilon in (0.999, 0.5, 1e-3, 1e-12):
            sigma = b.inverse(epsilon)
            assert sigma >= 0.0
            assert b.probability(sigma) <= epsilon + 1e-15


class TestCombineBounds:
    def test_single(self):
        b = ExponentialBound(3.0, 2.0)
        assert combine_bounds([b]) == b

    def test_drops_deterministic_members(self):
        det = ExponentialBound(0.0, 1.0)
        b = ExponentialBound(3.0, 2.0)
        assert combine_bounds([det, b]) == b

    def test_all_deterministic(self):
        det = ExponentialBound(0.0, 1.0)
        combined = combine_bounds([det, det])
        assert combined.is_deterministic()

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=10.0),
                st.floats(min_value=0.2, max_value=5.0),
            ),
            min_size=2,
            max_size=4,
        ),
        st.floats(min_value=0.0, max_value=15.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_combined_bound_is_valid_union_bound(self, params, sigma):
        bounds = [ExponentialBound(m, a) for m, a in params]
        combined = combine_bounds(bounds)
        # validity: for ANY split the sum of members bounds the probability,
        # and the combination is the infimum -> it must not exceed the even
        # split
        n = len(bounds)
        even = sum(b(sigma / n) for b in bounds)
        assert combined(sigma) <= even * (1 + 1e-9)


class TestStatisticalEnvelope:
    def test_basic(self):
        env = StatisticalEnvelope(
            PiecewiseLinear.constant_rate(2.0), ExponentialBound(1.0, 0.5)
        )
        assert env(3.0) == pytest.approx(6.0)
        assert env(-1.0) == 0.0
        assert env.rate == 2.0
        assert env.epsilon(0.0) == 1.0
        assert env.epsilon(100.0) < 1e-20

    def test_callable_bound(self):
        env = StatisticalEnvelope(
            PiecewiseLinear.constant_rate(1.0), lambda s: 0.5 / (1.0 + s)
        )
        assert env.epsilon(1.0) == pytest.approx(0.25)
        with pytest.raises(TypeError):
            env.exponential_bound()

    def test_deterministic_embedding(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(1.0, 2.0))
        assert env.epsilon(0.0) == 0.0
        assert env.exponential_bound().is_deterministic()

    def test_rejects_bad_curves(self):
        with pytest.raises(ValueError):
            StatisticalEnvelope(
                PiecewiseLinear.from_points([(0.0, 1.0), (1.0, 0.0)], 0.0),
                ExponentialBound(1.0, 1.0),
            )
        with pytest.raises(ValueError):
            StatisticalEnvelope(PiecewiseLinear.delay(1.0), ExponentialBound(1.0, 1.0))
