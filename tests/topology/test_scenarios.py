"""Tests for the scenario generators."""

import pytest

from repro.topology import (
    SCENARIOS,
    Topology,
    build_scenario,
    extract_route,
    fat_tree_slice,
    parking_lot,
    random_feedforward,
    sink_tree,
)
from repro.topology.scenarios import DEFAULT_FLOW_RATE, line


class TestLine:
    def test_is_tandem(self):
        topo = line(4, n_through=10, n_cross=10, utilization=0.5)
        view = topo.as_tandem()
        assert view is not None
        assert view.hops == 4
        # 20 flows at 0.15 loading to 50% -> capacity 6
        assert view.capacity == pytest.approx(20 * DEFAULT_FLOW_RATE / 0.5)


class TestSinkTree:
    def test_shape_and_capacities(self):
        topo = sink_tree(depth=2, branching=2, n_flows_per_leaf=5)
        # 4 leaves + 2 mid + 1 sink
        assert len(topo.nodes) == 7
        assert len(topo.routes) == 4
        sink = topo.node("l2n0")
        leaf = topo.node("l0n0")
        # the sink carries all 4 leaf aggregates
        assert sink.capacity == pytest.approx(4 * leaf.capacity)

    def test_routes_reach_sink(self):
        topo = sink_tree(depth=3, branching=2)
        for route in topo.routes:
            assert route.path[-1] == "l3n0"
            assert len(route.path) == 4

    def test_interference_grows_toward_sink(self):
        topo = sink_tree(depth=2, branching=2, n_flows_per_leaf=5)
        hops = extract_route(topo, "leaf0")
        assert [h.n_interfering for h in hops] == [0, 5, 15]


class TestParkingLot:
    def test_riders_span_and_leave(self):
        topo = parking_lot(hops=4, ride=2, n_through=3, n_cross=2)
        assert topo.route("ride0").path == ("n0", "n1")
        assert topo.route("ride3").path == ("n3",)  # clipped at the end
        hops = extract_route(topo, "through")
        # riders 0..3 each cover min(ride, remaining) consecutive nodes
        assert [h.n_interfering for h in hops] == [2, 4, 4, 4]

    def test_no_cross(self):
        topo = parking_lot(hops=3, n_cross=0)
        assert len(topo.routes) == 1


class TestFatTreeSlice:
    def test_core_shared(self):
        topo = fat_tree_slice(pods=3, n_flows_per_pod=4)
        assert len(topo.nodes) == 7
        core = topo.node("core")
        edge = topo.node("edge0")
        assert core.capacity == pytest.approx(3 * edge.capacity)
        hops = extract_route(topo, "pod0")
        assert [h.n_interfering for h in hops] == [0, 0, 8]


class TestRandomFeedforward:
    def test_deterministic_in_seed(self):
        a = random_feedforward(seed=3)
        b = random_feedforward(seed=3)
        assert a.content_hash() == b.content_hash()
        c = random_feedforward(seed=4)
        assert c.content_hash() != a.content_hash()

    def test_acyclic_by_construction(self):
        for seed in range(10):
            topo = random_feedforward(
                n_nodes=8, n_routes=6, seed=seed, degradation=0.25
            )
            assert isinstance(topo, Topology)  # construction validates

    def test_overloadable_settings_rejected(self):
        with pytest.raises(ValueError, match="overload"):
            random_feedforward(utilization=0.9, degradation=0.2)


class TestBuildScenario:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_all_scenarios_build(self, name):
        topo = build_scenario(name, 2, n_flows=4)
        assert isinstance(topo, Topology)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("moebius", 2)

    def test_scheduler_propagates(self):
        topo = build_scenario("parking-lot", 3, scheduler="bmux")
        assert all(n.scheduler == "bmux" for n in topo.nodes)
