"""Property tests: a line Topology IS the tandem, bit for bit.

The refactor's central promise is that the Fig. 1 tandem is the
degenerate one-route case of the topology engine — not an approximation
of it.  These properties pin that down:

* the analytic bound of a line topology's route equals the tandem
  analysis **bitwise** (both numeric backends);
* a seeded topology simulation of a line produces **byte-identical**
  delay records to :func:`simulate_tandem_mmoo` with the same seed, on
  both engines (same RNG draw order, same within-slot offer order).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.mmoo import MMOOParameters
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.simulation.engine import (
    SimulationConfig,
    simulate_tandem_mmoo,
    simulate_topology_mmoo,
)
from repro.topology import Topology

TRAFFIC = MMOOParameters.paper_defaults()
CAPACITY = 100.0
EPSILON = 1e-4

#: (scheduler, analysis Delta) pairs with an end-to-end bound.
ANALYSIS_SCHEDULERS = st.sampled_from(["fifo", "bmux", "edf"])

#: Everything both simulation engines implement.
SIM_SCHEDULERS = st.sampled_from(["fifo", "bmux", "sp", "edf"])

HOPS = st.sampled_from([1, 2, 10])


def _delta(scheduler: str) -> float:
    return {"fifo": 0.0, "bmux": float("inf"), "edf": 1.0 - 10.0}[scheduler]


def _records(recorder) -> tuple[list, list]:
    return recorder._delays, recorder._weights


class TestBoundEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(scheduler=ANALYSIS_SCHEDULERS, hops=HOPS,
           backend=st.sampled_from(["numpy", "scalar"]))
    def test_line_bound_bitwise_equals_tandem(self, scheduler, hops, backend):
        from repro.topology.routes import route_delay_bound_mmoo

        topo = Topology.line(
            hops, capacity=CAPACITY, n_through=150, n_cross=150,
            scheduler=scheduler,
        )
        via_topology = route_delay_bound_mmoo(
            topo, "through", TRAFFIC, EPSILON,
            s_grid=6, gamma_grid=6, backend=backend,
        )
        direct = e2e_delay_bound_mmoo(
            TRAFFIC, 150, 150, hops, CAPACITY, _delta(scheduler), EPSILON,
            s_grid=6, gamma_grid=6, backend=backend,
        )
        assert via_topology.delay == direct.delay
        assert via_topology.sigma == direct.sigma
        assert via_topology.gamma == direct.gamma
        assert via_topology.alpha == direct.alpha
        assert via_topology.x == direct.x
        assert via_topology.thetas == direct.thetas


class TestSimulationEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(scheduler=SIM_SCHEDULERS, hops=HOPS,
           seed=st.integers(min_value=0, max_value=2**16))
    def test_chunk_rows_byte_identical(self, scheduler, hops, seed):
        self._assert_identical(scheduler, hops, seed, engine="chunk")

    @settings(max_examples=15, deadline=None)
    @given(scheduler=SIM_SCHEDULERS, hops=HOPS,
           seed=st.integers(min_value=0, max_value=2**16))
    def test_vectorized_rows_byte_identical(self, scheduler, hops, seed):
        self._assert_identical(scheduler, hops, seed, engine="vectorized")

    @staticmethod
    def _assert_identical(scheduler, hops, seed, *, engine):
        slots = 300
        n = 40  # flows per aggregate; utilization ~0.12 both sides
        config = SimulationConfig(
            traffic=TRAFFIC, n_through=n, n_cross=n, hops=hops,
            capacity=CAPACITY, slots=slots, scheduler=scheduler,
            seed=seed, engine=engine,
        )
        tandem = simulate_tandem_mmoo(config)
        topo = Topology.line(
            hops, capacity=CAPACITY, n_through=n, n_cross=n,
            scheduler=scheduler,
        )
        dag = simulate_topology_mmoo(
            topo, TRAFFIC, slots, seed, engine=engine
        )
        assert _records(dag.route_delays["through"]) == _records(
            tandem.through_delays
        )
        for h in range(hops):
            assert _records(dag.cross_delays[str(h)]) == _records(
                tandem.cross_delays[h]
            )
