"""Tests for the feed-forward topology data model."""

import math

import pytest

from repro.topology import NodeSpec, Route, Topology


def diamond() -> Topology:
    """Two disjoint branches merging into a shared sink."""
    nodes = (
        NodeSpec("a", 10.0),
        NodeSpec("b", 20.0),
        NodeSpec("sink", 30.0, n_cross=2),
    )
    routes = (
        Route("left", ("a", "sink"), n_flows=3),
        Route("right", ("b", "sink"), n_flows=4),
    )
    return Topology(nodes=nodes, routes=routes)


class TestNodeSpec:
    def test_delta_per_scheduler(self):
        assert NodeSpec("n", 1.0, scheduler="fifo").delta == 0.0
        assert NodeSpec("n", 1.0, scheduler="bmux").delta == math.inf
        edf = NodeSpec(
            "n", 1.0, scheduler="edf",
            edf_deadline_through=2.0, edf_deadline_cross=7.0,
        )
        assert edf.delta == -5.0

    @pytest.mark.parametrize("scheduler", ["sp", "gps"])
    def test_delta_rejects_unanalyzable(self, scheduler):
        with pytest.raises(ValueError, match="no.*Delta-scheduler analysis"):
            NodeSpec("n", 1.0, scheduler=scheduler).delta

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("", 1.0)
        with pytest.raises(ValueError):
            NodeSpec("n", 0.0)
        with pytest.raises(ValueError):
            NodeSpec("n", 1.0, scheduler="wfq")
        with pytest.raises(ValueError):
            NodeSpec("n", 1.0, n_cross=-1)
        with pytest.raises(ValueError):
            NodeSpec("n", 1.0, edf_deadline_through=-1.0)
        with pytest.raises(ValueError):
            NodeSpec("n", 1.0, gps_weight_cross=0.0)


class TestRoute:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            Route("r", ())
        with pytest.raises(ValueError, match="visits a node twice"):
            Route("r", ("a", "b", "a"))
        with pytest.raises(ValueError):
            Route("r", ("a",), n_flows=0)

    def test_hops(self):
        assert Route("r", ("a", "b", "c")).hops == 3


class TestTopologyValidation:
    def test_duplicate_node_names(self):
        with pytest.raises(ValueError, match="duplicate node names"):
            Topology(
                nodes=(NodeSpec("a", 1.0), NodeSpec("a", 2.0)),
                routes=(Route("r", ("a",)),),
            )

    def test_duplicate_route_names(self):
        with pytest.raises(ValueError, match="duplicate route names"):
            Topology(
                nodes=(NodeSpec("a", 1.0),),
                routes=(Route("r", ("a",)), Route("r", ("a",))),
            )

    def test_unknown_node_reference(self):
        with pytest.raises(ValueError, match="unknown node"):
            Topology(
                nodes=(NodeSpec("a", 1.0),),
                routes=(Route("r", ("a", "ghost")),),
            )

    def test_cycle_rejected(self):
        nodes = (NodeSpec("a", 1.0), NodeSpec("b", 1.0))
        routes = (
            Route("fwd", ("a", "b")),
            Route("bwd", ("b", "a")),
        )
        with pytest.raises(ValueError, match="not feed-forward"):
            Topology(nodes=nodes, routes=routes)

    def test_empty(self):
        with pytest.raises(ValueError):
            Topology(nodes=(), routes=(Route("r", ("a",)),))
        with pytest.raises(ValueError):
            Topology(nodes=(NodeSpec("a", 1.0),), routes=())


class TestTopologyStructure:
    def test_lookups(self):
        topo = diamond()
        assert topo.node("b").capacity == 20.0
        assert topo.route("left").n_flows == 3
        with pytest.raises(KeyError):
            topo.node("ghost")
        with pytest.raises(KeyError):
            topo.route("ghost")

    def test_edges_sorted_dedup(self):
        topo = diamond()
        assert topo.edges == (("a", "sink"), ("b", "sink"))

    def test_topological_order_deterministic(self):
        # sources come before the sink; declaration order breaks ties
        assert diamond().topological_order() == ("a", "b", "sink")

    def test_order_respects_edges_not_declaration(self):
        nodes = (NodeSpec("late", 1.0), NodeSpec("early", 1.0))
        routes = (Route("r", ("early", "late")),)
        topo = Topology(nodes=nodes, routes=routes)
        assert topo.topological_order() == ("early", "late")


class TestParamsRoundTrip:
    def test_to_from_params(self):
        topo = diamond()
        rebuilt = Topology.from_params(topo.to_params())
        assert rebuilt == topo
        assert rebuilt.content_hash() == topo.content_hash()

    def test_from_json_decoded_lists(self):
        import json

        topo = diamond()
        decoded = json.loads(json.dumps(topo.to_params()))
        assert Topology.from_params(decoded) == topo

    def test_content_hash_sensitivity(self):
        base = diamond().content_hash()
        changed = Topology(
            nodes=(
                NodeSpec("a", 10.0),
                NodeSpec("b", 20.0),
                NodeSpec("sink", 30.0, n_cross=3),  # one more cross flow
            ),
            routes=(
                Route("left", ("a", "sink"), n_flows=3),
                Route("right", ("b", "sink"), n_flows=4),
            ),
        )
        assert changed.content_hash() != base
        assert len(base) == 64  # sha256 hex


class TestTandemSpecialCase:
    def test_line_roundtrips_as_tandem(self):
        topo = Topology.line(
            3, capacity=50.0, n_through=5, n_cross=(1, 2, 3),
            scheduler="edf",
        )
        view = topo.as_tandem()
        assert view is not None
        assert view.hops == 3
        assert view.capacity == 50.0
        assert view.scheduler == "edf"
        assert view.n_cross == (1, 2, 3)
        assert view.route.n_flows == 5

    def test_line_validation(self):
        with pytest.raises(ValueError, match="one entry per hop"):
            Topology.line(3, capacity=1.0, n_through=1, n_cross=(1, 2))
        with pytest.raises(ValueError, match="node_names"):
            Topology.line(
                2, capacity=1.0, n_through=1, node_names=("only",)
            )

    def test_multi_route_is_not_tandem(self):
        assert diamond().as_tandem() is None

    def test_partial_route_is_not_tandem(self):
        nodes = (NodeSpec("a", 1.0), NodeSpec("b", 1.0))
        topo = Topology(nodes=nodes, routes=(Route("r", ("a",)),))
        assert topo.as_tandem() is None

    def test_nonuniform_capacity_is_not_tandem(self):
        nodes = (NodeSpec("a", 1.0), NodeSpec("b", 2.0))
        topo = Topology(nodes=nodes, routes=(Route("r", ("a", "b")),))
        assert topo.as_tandem() is None
