"""Tests for route extraction and per-route bounds."""

import math

import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.network.backlog import e2e_backlog_bound_mmoo
from repro.topology import (
    NodeSpec,
    Route,
    Topology,
    extract_route,
    route_backlog_bound_mmoo,
    route_delay_bound_mmoo,
    route_is_homogeneous,
)

TRAFFIC = MMOOParameters.paper_defaults()
EPSILON = 1e-6


def shared_core() -> Topology:
    """Two routes sharing a core node that also has local cross flows."""
    nodes = (
        NodeSpec("a", 100.0),
        NodeSpec("b", 100.0),
        NodeSpec("core", 100.0, n_cross=7),
    )
    routes = (
        Route("left", ("a", "core"), n_flows=10),
        Route("right", ("b", "core"), n_flows=20),
    )
    return Topology(nodes=nodes, routes=routes)


class TestExtractRoute:
    def test_interference_aggregates_cross_and_routes(self):
        hops = extract_route(shared_core(), "left")
        assert [hop.node.name for hop in hops] == ["a", "core"]
        # at "a": nothing else; at "core": 7 local cross + 20 from "right"
        assert [hop.n_interfering for hop in hops] == [0, 27]

    def test_own_flows_not_counted(self):
        hops = extract_route(shared_core(), "right")
        assert [hop.n_interfering for hop in hops] == [0, 17]

    def test_line_matches_tandem_setting(self):
        topo = Topology.line(4, capacity=100.0, n_through=8, n_cross=5)
        hops = extract_route(topo, "through")
        assert len(hops) == 4
        assert all(hop.n_interfering == 5 for hop in hops)
        assert route_is_homogeneous(hops)

    def test_shared_core_route_is_heterogeneous(self):
        assert not route_is_homogeneous(extract_route(shared_core(), "left"))


class TestRouteDelayBound:
    def test_homogeneous_bitwise_equals_tandem_analysis(self):
        topo = Topology.line(3, capacity=100.0, n_through=150, n_cross=150)
        via_route = route_delay_bound_mmoo(
            topo, "through", TRAFFIC, EPSILON, s_grid=8, gamma_grid=8
        )
        direct = e2e_delay_bound_mmoo(
            TRAFFIC, 150, 150, 3, 100.0, 0.0, EPSILON,
            s_grid=8, gamma_grid=8,
        )
        assert via_route.delay == direct.delay  # bitwise, not approx
        assert via_route.gamma == direct.gamma
        assert via_route.alpha == direct.alpha

    def test_heterogeneous_is_finite_and_dominates_uniform(self):
        bound = route_delay_bound_mmoo(
            shared_core(), "left", TRAFFIC, EPSILON, s_grid=8, gamma_grid=8
        )
        assert math.isfinite(bound.delay)
        assert bound.delay > 0.0

    def test_overload_returns_infinite(self):
        # 800 flows at ~0.1486 each exceed capacity 100
        topo = Topology(
            nodes=(NodeSpec("a", 100.0), NodeSpec("b", 1.0)),
            routes=(Route("r", ("a", "b"), n_flows=800),),
        )
        bound = route_delay_bound_mmoo(topo, "r", TRAFFIC, EPSILON,
                                       s_grid=4, gamma_grid=4)
        assert bound.delay == math.inf

    def test_unanalyzable_scheduler_raises(self):
        topo = Topology(
            nodes=(NodeSpec("a", 100.0, scheduler="gps"),),
            routes=(Route("r", ("a",), n_flows=10),),
        )
        with pytest.raises(ValueError, match="no.*Delta-scheduler"):
            route_delay_bound_mmoo(topo, "r", TRAFFIC, EPSILON)

    def test_unknown_route_raises(self):
        with pytest.raises(KeyError):
            route_delay_bound_mmoo(shared_core(), "ghost", TRAFFIC, EPSILON)


class TestRouteBacklogBound:
    def test_homogeneous_bitwise_equals_tandem_analysis(self):
        topo = Topology.line(2, capacity=100.0, n_through=150, n_cross=150)
        via_route = route_backlog_bound_mmoo(
            topo, "through", TRAFFIC, EPSILON, s_grid=6, gamma_grid=6
        )
        direct = e2e_backlog_bound_mmoo(
            TRAFFIC, 150, 150, 2, 100.0, 0.0, EPSILON,
            s_grid=6, gamma_grid=6,
        )
        assert via_route.backlog == direct.backlog

    def test_heterogeneous_raises_clearly(self):
        with pytest.raises(ValueError, match="heterogeneous"):
            route_backlog_bound_mmoo(shared_core(), "left", TRAFFIC, EPSILON)
