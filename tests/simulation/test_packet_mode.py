"""Tests for the non-preemptive packet model and the packetized service
curves (the paper's fluid-assumption relaxation)."""

import pytest

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.statistical import ExponentialBound
from repro.service.curves import StatisticalServiceCurve, rate_latency_service
from repro.service.packetizer import (
    packetization_delay,
    packetize_service,
    packetized_delay_penalty,
)
from repro.simulation.chunk import Chunk
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo
from repro.simulation.node import Link
from repro.simulation.schedulers import GPSPolicy, StaticPriorityPolicy


class TestPacketizeService:
    def test_subtracts_one_packet(self):
        s = rate_latency_service(10.0, 2.0)
        p = packetize_service(s, 5.0)
        # [10 (t-2) - 5]_+ : zero until t = 2.5
        assert p(2.5) == pytest.approx(0.0)
        assert p(4.0) == pytest.approx(15.0)

    def test_zero_packet_identity(self):
        s = rate_latency_service(10.0, 2.0)
        assert packetize_service(s, 0.0) is s

    def test_preserves_shift_and_bound(self):
        bound = ExponentialBound(2.0, 1.0)
        s = StatisticalServiceCurve(
            PiecewiseLinear.constant_rate(10.0), 3.0, bound
        )
        p = packetize_service(s, 5.0)
        assert p.shift == 3.0
        assert p.bound == bound
        assert p(3.0) == 0.0
        assert p(4.0) == pytest.approx(5.0)

    def test_delay_helpers(self):
        assert packetization_delay(1.5, 100.0) == pytest.approx(0.015)
        assert packetized_delay_penalty(5, 1.5, 100.0, 50.0) == pytest.approx(
            5 * (1.5 / 50.0 + 1.5 / 100.0)
        )
        with pytest.raises(ValueError):
            packetized_delay_penalty(0, 1.5, 100.0, 50.0)


class TestNonPreemptiveLink:
    def test_started_chunk_blocks_higher_priority(self):
        link = Link(
            1.0, StaticPriorityPolicy({"hi": 1, "lo": 0}), preemptive=False
        )
        link.offer(Chunk("lo", 3.0, 0), 0)
        # slot 0: lo starts service (serves 1 of 3, departs nothing)
        assert link.advance(0) == []
        link.offer(Chunk("hi", 1.0, 1), 1)
        # slot 1: lo still pinned (2 left, serves 1)
        assert link.advance(1) == []
        # slot 2: lo completes and departs whole; hi still waits
        departed = link.advance(2)
        assert [c.flow for c in departed] == ["lo"]
        assert departed[0].size == 3.0
        # slot 3: hi finally served
        assert [c.flow for c in link.advance(3)] == ["hi"]

    def test_preemptive_link_lets_priority_overtake(self):
        link = Link(1.0, StaticPriorityPolicy({"hi": 1, "lo": 0}))
        link.offer(Chunk("lo", 3.0, 0), 0)
        link.advance(0)  # fluid: 1 unit of lo departs immediately
        link.offer(Chunk("hi", 1.0, 1), 1)
        assert [c.flow for c in link.advance(1)] == ["hi"]

    def test_departs_whole_on_completion(self):
        link = Link(2.0, StaticPriorityPolicy({"a": 1}), preemptive=False)
        link.offer(Chunk("a", 5.0, 0), 0)
        assert link.advance(0) == []
        assert link.advance(1) == []
        departed = link.advance(2)
        assert len(departed) == 1
        assert departed[0].size == 5.0
        assert link.backlog() == pytest.approx(0.0)

    def test_backlog_counts_pinned_remainder(self):
        link = Link(2.0, StaticPriorityPolicy({"a": 1}), preemptive=False)
        link.offer(Chunk("a", 5.0, 0), 0)
        link.advance(0)
        assert link.backlog() == pytest.approx(3.0)

    def test_gps_rejects_nonpreemptive(self):
        with pytest.raises(ValueError):
            Link(1.0, GPSPolicy({"a": 1.0}), preemptive=False)


class TestPacketizedTandem:
    TRAFFIC = MMOOParameters.paper_defaults()

    def _delays(self, **kwargs):
        config = SimulationConfig(
            traffic=self.TRAFFIC, n_through=300, n_cross=300, hops=2,
            capacity=100.0, slots=8_000, scheduler="sp", seed=13, **kwargs,
        )
        return simulate_tandem_mmoo(config).through_delays

    def test_conservation_in_packet_mode(self):
        fluid = self._delays()
        packet = self._delays(preemptive=False, packet_size=1.5)
        assert packet.total_mass == pytest.approx(fluid.total_mass, rel=1e-9)

    def test_packet_blocking_increases_priority_delay(self):
        """With the through aggregate at high priority, non-preemptive
        1.5-kbit cross packets add (bounded) blocking delay."""
        fluid = self._delays()
        packet = self._delays(preemptive=False, packet_size=1.5)
        assert packet.mean() >= fluid.mean() - 1e-9
        # the one-packet-per-hop correction bounds the extra delay: each
        # hop blocks at most one 1.5-kbit packet at rate 100/slot, plus
        # the whole-packet departure rounding (~1 slot per hop here)
        assert packet.quantile(0.999) <= fluid.quantile(0.999) + 2 * (
            1.5 / 100.0
        ) + 2.0 + 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(
                traffic=self.TRAFFIC, n_through=1, n_cross=1, hops=1,
                capacity=1.0, slots=10, scheduler="gps", preemptive=False,
            )
        with pytest.raises(ValueError):
            SimulationConfig(
                traffic=self.TRAFFIC, n_through=1, n_cross=1, hops=1,
                capacity=1.0, slots=10, packet_size=0.0,
            )
