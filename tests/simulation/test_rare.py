"""Tests for the importance-sampling rare-event estimator."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.arrivals.processes import mmoo_aggregate_arrivals, mmoo_on_intervals
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo
from repro.simulation.rare import (
    RareEstimate,
    TiltedMMOO,
    default_margin,
    estimate_tail,
    estimate_tail_from_arrays,
    simulate_tandem_mmoo_rare,
    solve_lundberg_tilt,
    states_at,
    suggest_rare_slots,
    window_log_likelihood_ratio,
    window_transition_counts,
)

PAPER = MMOOParameters.paper_defaults()

# Small two-aggregate tandem whose delay tail is deep enough for the
# tilted sampler yet still reachable by naive Monte Carlo — the
# unbiasedness cross-check configuration.
SMALL_N = 10
SMALL_UTIL = 0.75
SMALL_CAPACITY = 2 * SMALL_N * PAPER.mean_rate / SMALL_UTIL


class TestTiltedMMOO:
    def test_tilted_chain_matches_twisted_kernel_eigenvalue(self):
        # the h-transform probabilities come from the Perron eigenvalue
        # of T_s(i, j) = T(i, j) e^{s r_j}; verify against numpy's eig
        s = 0.05
        tilted = TiltedMMOO.from_tilt(PAPER, s)
        kernel = np.array(
            [
                [PAPER.p11, PAPER.p12 * math.exp(s * PAPER.peak)],
                [PAPER.p21, PAPER.p22 * math.exp(s * PAPER.peak)],
            ]
        )
        lam = max(np.linalg.eigvals(kernel).real)
        assert math.exp(tilted.log_radius) == pytest.approx(lam, rel=1e-9)
        assert tilted.params.p11 == pytest.approx(PAPER.p11 / lam)
        assert tilted.params.p22 == pytest.approx(
            PAPER.p22 * math.exp(s * PAPER.peak) / lam
        )

    def test_tilting_raises_the_mean_rate(self):
        tilted = TiltedMMOO.from_tilt(PAPER, 0.01)
        assert tilted.params.mean_rate > PAPER.mean_rate
        assert tilted.params.peak == PAPER.peak

    def test_rejects_nonpositive_tilt(self):
        with pytest.raises(ValueError):
            TiltedMMOO.from_tilt(PAPER, 0.0)
        with pytest.raises(ValueError):
            TiltedMMOO.from_tilt(PAPER, -0.1)

    @pytest.mark.parametrize("p11,p22", [(0.5, 0.5), (0.9, 0.6), (0.989, 0.9)])
    @pytest.mark.parametrize("tilt", [0.01, 0.5, 3.0])
    def test_tilting_preserves_burstiness(self, p11, p22, tilt):
        # det(T~) = det(T) e^{sP} / lam^2 keeps the sign of det(T), so a
        # bursty base chain always tilts to a valid MMOO chain; the
        # ValueError branch in from_tilt only guards float drift at the
        # p12 + p21 = 1 boundary
        base = MMOOParameters(peak=1.0, p11=p11, p22=p22)
        tilted = TiltedMMOO.from_tilt(base, tilt)
        assert 0.0 <= tilted.params.p11 <= 1.0
        assert 0.0 <= tilted.params.p22 <= 1.0
        assert tilted.params.p12 + tilted.params.p21 <= 1.0 + 1e-9

    def test_transition_log_ratios_sign(self):
        tilted = TiltedMMOO.from_tilt(PAPER, 0.02)
        r11, r12, r21, r22 = tilted.transition_log_ratios
        # the tilted chain favors entering and staying ON
        assert r12 < 0 and r22 < 0
        assert r11 > 0 and r21 > 0


class TestSolveLundbergTilt:
    def test_tilt_solves_effective_bandwidth_equation(self):
        n_flows, capacity = 600, 100.0
        s_star = solve_lundberg_tilt(PAPER, n_flows, capacity)
        assert n_flows * PAPER.effective_bandwidth(s_star) == pytest.approx(
            capacity, abs=1e-6
        )

    def test_tilted_drift_is_positive(self):
        s_star = solve_lundberg_tilt(PAPER, 600, 100.0)
        tilted = TiltedMMOO.from_tilt(PAPER, s_star)
        assert 600 * tilted.params.mean_rate > 100.0

    def test_peak_below_capacity_raises(self):
        with pytest.raises(ValueError, match="tail probability is zero"):
            solve_lundberg_tilt(PAPER, 10, 10 * PAPER.peak + 1.0)

    def test_unstable_system_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            solve_lundberg_tilt(PAPER, 100, 100 * PAPER.mean_rate * 0.5)


class TestWindowTransitionCounts:
    @pytest.mark.parametrize("upto", [1, 7, 40])
    def test_counts_match_per_slot_reconstruction(self, upto):
        n_flows, n_slots = 8, 40
        rng = np.random.default_rng(3)
        flows, starts, ends = mmoo_on_intervals(PAPER, n_flows, n_slots, rng)
        # reconstruct the per-slot state matrix and count directly
        states = np.zeros((n_flows, n_slots), dtype=bool)
        for f, s, e in zip(flows, starts, ends):
            states[f, s:e] = True
        prev = states[:, : upto - 1]
        new = states[:, 1:upto]
        expected = (
            int(np.sum(~prev & ~new)),
            int(np.sum(~prev & new)),
            int(np.sum(prev & ~new)),
            int(np.sum(prev & new)),
        )
        assert window_transition_counts(starts, ends, n_flows, upto) == expected

    def test_full_horizon_counts_sum_to_pairs(self):
        n_flows, n_slots = 5, 30
        rng = np.random.default_rng(11)
        _, starts, ends = mmoo_on_intervals(PAPER, n_flows, n_slots, rng)
        counts = window_transition_counts(starts, ends, n_flows, n_slots)
        assert sum(counts) == n_flows * (n_slots - 1)


class TestLogLikelihoodRatio:
    def test_mean_weight_is_one(self):
        # E_Q[dP/dQ] = 1: sample under the tilted chain, weight back
        tilted = TiltedMMOO.from_tilt(PAPER, 0.05)
        n_flows, n_slots, n_paths = 5, 40, 4000
        rng = np.random.default_rng(7)
        weights = np.empty(n_paths)
        for k in range(n_paths):
            initial = rng.random(n_flows) < PAPER.on_probability
            _, starts, ends = mmoo_on_intervals(
                tilted.params, n_flows, n_slots, rng, initial_on=initial
            )
            weights[k] = math.exp(
                window_log_likelihood_ratio(
                    tilted, starts, ends, n_flows, n_slots
                )
            )
        standard_error = weights.std() / math.sqrt(n_paths)
        assert weights.mean() == pytest.approx(1.0, abs=4 * standard_error)

    def test_untilted_window_has_zero_llr(self):
        tilted = TiltedMMOO.from_tilt(PAPER, 0.05)
        empty = np.empty(0, dtype=np.int64)
        assert window_log_likelihood_ratio(tilted, empty, empty, 4, 1) == 0.0


class TestInitialOnSampling:
    def test_all_on_start_covers_slot_zero(self):
        rng = np.random.default_rng(0)
        n_flows = 6
        flows, starts, ends = mmoo_on_intervals(
            PAPER, n_flows, 20, rng, initial_on=np.ones(n_flows, dtype=bool)
        )
        on0 = states_at(flows, starts, ends, 0, n_flows)
        assert on0.all()

    def test_all_off_start_has_no_slot_zero_interval(self):
        rng = np.random.default_rng(0)
        n_flows = 6
        flows, starts, ends = mmoo_on_intervals(
            PAPER, n_flows, 20, rng, initial_on=np.zeros(n_flows, dtype=bool)
        )
        assert not states_at(flows, starts, ends, 0, n_flows).any()

    def test_wrong_shape_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="initial_on"):
            mmoo_on_intervals(
                PAPER, 4, 20, rng, initial_on=np.ones(3, dtype=bool)
            )


def _small_config(seed: int, slots: int = 400) -> SimulationConfig:
    return SimulationConfig(
        traffic=PAPER,
        n_through=SMALL_N,
        n_cross=SMALL_N,
        hops=1,
        capacity=SMALL_CAPACITY,
        slots=slots,
        scheduler="fifo",
        seed=seed,
        engine="vectorized",
    )


class TestSimulateTandemMmooRare:
    def test_deterministic_in_seed(self):
        first = simulate_tandem_mmoo_rare(_small_config(42), threshold=30.0)
        second = simulate_tandem_mmoo_rare(_small_config(42), threshold=30.0)
        assert first.log_weight == second.log_weight
        assert first.tau == second.tau
        assert (
            first.result.through_delays.total_mass
            == second.result.through_delays.total_mass
        )

    def test_both_engines_run(self):
        for engine in ("vectorized", "chunk"):
            config = replace(_small_config(1, slots=150), engine=engine)
            trial = simulate_tandem_mmoo_rare(config, threshold=10.0)
            assert math.isfinite(trial.log_weight)
            assert 0 <= trial.tau < config.slots

    def test_estimate_tail_matches_array_entry_point(self):
        trials = [
            simulate_tandem_mmoo_rare(_small_config(seed), threshold=25.0)
            for seed in range(5)
        ]
        whole = estimate_tail(trials, 25.0)
        parts = estimate_tail_from_arrays(
            [t.log_weight for t in trials],
            [t.result.through_delays.exceed_fraction(25.0) for t in trials],
        )
        assert whole == parts

    def test_default_margin_grows_with_hops(self):
        assert default_margin(1) == 2.0
        assert default_margin(4) == 5.0

    def test_suggest_rare_slots_scales_with_threshold(self):
        tilted = TiltedMMOO.from_tilt(
            PAPER, solve_lundberg_tilt(PAPER, 2 * SMALL_N, SMALL_CAPACITY)
        )
        short = suggest_rare_slots(tilted, 2 * SMALL_N, SMALL_CAPACITY, 10.0)
        long = suggest_rare_slots(tilted, 2 * SMALL_N, SMALL_CAPACITY, 60.0)
        assert long > short > 0


class TestUnbiasedness:
    """The acceptance-criterion cross-check: the weighted estimator
    agrees with naive Monte Carlo on a tail naive sampling can reach."""

    THRESHOLD = 40.0
    SLOTS = 400

    def test_importance_and_naive_confidence_intervals_overlap(self):
        naive_trials = 2500
        fractions = np.empty(naive_trials)
        for k in range(naive_trials):
            config = _small_config(900_000 + k, slots=self.SLOTS)
            delays = simulate_tandem_mmoo(config).through_delays
            fractions[k] = delays.exceed_fraction(self.THRESHOLD)
        p_naive = fractions.mean()
        se_naive = fractions.std() / math.sqrt(naive_trials)

        is_trials = 600
        trials = [
            simulate_tandem_mmoo_rare(
                _small_config(500_000 + k, slots=self.SLOTS),
                threshold=self.THRESHOLD,
            )
            for k in range(is_trials)
        ]
        estimate = estimate_tail(trials, self.THRESHOLD)

        assert p_naive > 0, "naive run saw no exceedances; deepen the seed"
        assert estimate.probability > 0
        # 95% intervals of the two estimators must overlap
        assert estimate.ci_low <= p_naive + 1.96 * se_naive
        assert estimate.ci_high >= p_naive - 1.96 * se_naive


class TestEstimateTailFromArrays:
    def test_plain_average_recovered(self):
        estimate = estimate_tail_from_arrays([0.0, 0.0], [0.2, 0.4])
        assert estimate.probability == pytest.approx(0.3)
        assert estimate.hit_rate == 1.0
        assert estimate.n_trials == 2

    def test_weights_scale_contributions(self):
        estimate = estimate_tail_from_arrays([math.log(0.5)], [0.4])
        assert estimate.probability == pytest.approx(0.2)

    def test_zero_fraction_ignores_weight_overflow(self):
        # a never-hit trial with a huge positive log weight must not
        # overflow: its contribution is exactly zero
        estimate = estimate_tail_from_arrays([800.0, 0.0], [0.0, 0.1])
        assert estimate.probability == pytest.approx(0.05)
        assert estimate.hit_rate == 0.5

    def test_degenerate_and_empty_inputs(self):
        with pytest.raises(ValueError):
            estimate_tail_from_arrays([], [])
        with pytest.raises(ValueError):
            estimate_tail_from_arrays([0.0], [0.1, 0.2])
        constant = estimate_tail_from_arrays([0.0, 0.0], [0.5, 0.5])
        assert constant.variance_reduction == math.inf

    def test_bootstrap_interval_brackets_estimate(self):
        rng = np.random.default_rng(5)
        log_weights = rng.normal(-2.0, 0.5, size=200)
        fractions = rng.random(200) * 0.1
        estimate = estimate_tail_from_arrays(log_weights, fractions)
        assert estimate.boot_ci_low <= estimate.probability
        assert estimate.boot_ci_high >= estimate.probability
        assert isinstance(estimate, RareEstimate)
        assert estimate.rel_half_width > 0


class TestRareEstimateProperties:
    def test_rel_half_width_infinite_at_zero(self):
        estimate = estimate_tail_from_arrays([0.0, 0.0], [0.0, 0.0])
        assert estimate.probability == 0.0
        assert estimate.rel_half_width == math.inf
        assert estimate.hit_rate == 0.0


class TestAggregateHelpers:
    def test_intervals_to_aggregate_matches_direct_sampler(self):
        # same rng stream, same path: the refactored scatter is identical
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        direct = mmoo_aggregate_arrivals(PAPER, 7, 60, rng1)
        from repro.arrivals.processes import intervals_to_aggregate

        _, starts, ends = mmoo_on_intervals(PAPER, 7, 60, rng2)
        rebuilt = intervals_to_aggregate(starts, ends, 60, PAPER.peak)
        np.testing.assert_array_equal(direct, rebuilt)
