"""Unit tests for chunks, scheduler policies, and single links."""

import math

import pytest

from repro.simulation.chunk import Chunk
from repro.simulation.node import Link
from repro.simulation.schedulers import (
    EDFPolicy,
    FIFOPolicy,
    GPSPolicy,
    StaticPriorityPolicy,
    bmux_policy,
)


class TestChunk:
    def test_split(self):
        c = Chunk("f", 10.0, origin_slot=3)
        part = c.split(4.0)
        assert part.size == 4.0
        assert c.size == 6.0
        assert part.origin_slot == 3
        assert part.flow == "f"

    def test_split_validation(self):
        c = Chunk("f", 2.0, 0)
        with pytest.raises(ValueError):
            c.split(3.0)
        with pytest.raises(ValueError):
            c.split(0.0)

    def test_sort_key_orders_by_tag_then_fifo(self):
        a = Chunk("f", 1.0, 0, node_arrival=5, tag=1.0, seq=0)
        b = Chunk("g", 1.0, 0, node_arrival=3, tag=1.0, seq=1)
        c = Chunk("h", 1.0, 0, node_arrival=9, tag=0.5, seq=2)
        assert sorted([a, b, c], key=Chunk.sort_key)[0] is c
        assert sorted([a, b], key=Chunk.sort_key)[0] is b


class TestPolicies:
    def test_fifo_delta(self):
        assert FIFOPolicy().delta("a", "b") == 0.0

    def test_sp_delta_matrix(self):
        sp = StaticPriorityPolicy({"hi": 1, "lo": 0})
        assert sp.delta("lo", "hi") == math.inf
        assert sp.delta("hi", "lo") == -math.inf
        assert sp.delta("hi", "hi") == 0.0

    def test_bmux_factory(self):
        p = bmux_policy("t", ["t", "c"])
        assert p.delta("t", "c") == math.inf
        assert p.name == "BMUX"

    def test_edf_delta(self):
        edf = EDFPolicy({"a": 2.0, "b": 7.0})
        assert edf.delta("a", "b") == -5.0

    def test_edf_validation(self):
        with pytest.raises(ValueError):
            EDFPolicy({"a": -1.0})
        with pytest.raises(ValueError):
            EDFPolicy({})

    def test_gps_validation(self):
        with pytest.raises(ValueError):
            GPSPolicy({"a": 0.0})
        with pytest.raises(ValueError):
            GPSPolicy({})

    def test_gps_delta_is_nan(self):
        assert math.isnan(GPSPolicy({"a": 1.0}).delta("a", "a"))


class TestFIFOLink:
    def test_work_conserving(self):
        link = Link(5.0, FIFOPolicy())
        link.offer(Chunk("a", 12.0, 0), 0)
        served = [sum(c.size for c in link.advance(t)) for t in range(4)]
        assert served == [5.0, 5.0, 2.0, 0.0]

    def test_conservation(self):
        link = Link(3.0, FIFOPolicy())
        total_in = 0.0
        total_out = 0.0
        for t in range(10):
            size = (t % 4) * 1.7
            if size:
                link.offer(Chunk("a", size, t), t)
                total_in += size
            total_out += sum(c.size for c in link.advance(t))
        for t in range(10, 30):
            total_out += sum(c.size for c in link.advance(t))
        assert total_out == pytest.approx(total_in)
        assert link.backlog() == pytest.approx(0.0)

    def test_fifo_order(self):
        link = Link(1.0, FIFOPolicy())
        link.offer(Chunk("a", 1.0, 0), 0)
        link.offer(Chunk("b", 1.0, 1), 1)
        first = link.advance(0)  # wait: both offered at different slots
        assert first[0].flow == "a"

    def test_tiny_chunks_ignored(self):
        link = Link(1.0, FIFOPolicy())
        link.offer(Chunk("a", 1e-12, 0), 0)
        assert link.backlog() == 0.0


class TestStaticPriorityLink:
    def test_high_priority_preempts_queue(self):
        link = Link(1.0, StaticPriorityPolicy({"hi": 1, "lo": 0}))
        link.offer(Chunk("lo", 3.0, 0), 0)
        link.advance(0)  # serves 1 unit of lo
        link.offer(Chunk("hi", 1.0, 1), 1)
        departed = link.advance(1)
        assert departed[0].flow == "hi"

    def test_same_priority_is_fifo(self):
        link = Link(1.0, StaticPriorityPolicy({"a": 1, "b": 1}))
        link.offer(Chunk("a", 1.0, 0), 0)
        link.offer(Chunk("b", 1.0, 0), 0)
        assert link.advance(0)[0].flow == "a"  # earlier seq


class TestEDFLink:
    def test_deadline_order(self):
        link = Link(1.0, EDFPolicy({"urgent": 1.0, "lax": 10.0}))
        link.offer(Chunk("lax", 1.0, 0), 0)
        link.offer(Chunk("urgent", 1.0, 0), 0)
        assert link.advance(0)[0].flow == "urgent"

    def test_old_lax_traffic_beats_new_urgent(self):
        # lax arrival at slot 0 has tag 10; urgent at slot 12 has tag 13
        link = Link(1.0, EDFPolicy({"urgent": 1.0, "lax": 10.0}))
        link.offer(Chunk("lax", 1.0, 0), 0)
        link.offer(Chunk("urgent", 1.0, 12), 12)
        assert link.advance(12)[0].flow == "lax"

    def test_locally_fifo(self):
        link = Link(1.0, EDFPolicy({"f": 5.0}))
        link.offer(Chunk("f", 1.0, 0), 0)
        link.offer(Chunk("f", 1.0, 1), 1)
        first = link.advance(1)
        assert first[0].node_arrival == 0


class TestGPSLink:
    def test_equal_weights_split_evenly(self):
        link = Link(4.0, GPSPolicy({"a": 1.0, "b": 1.0}))
        link.offer(Chunk("a", 10.0, 0), 0)
        link.offer(Chunk("b", 10.0, 0), 0)
        departed = link.advance(0)
        by_flow = {}
        for c in departed:
            by_flow[c.flow] = by_flow.get(c.flow, 0.0) + c.size
        assert by_flow["a"] == pytest.approx(2.0)
        assert by_flow["b"] == pytest.approx(2.0)

    def test_weighted_split(self):
        link = Link(4.0, GPSPolicy({"a": 3.0, "b": 1.0}))
        link.offer(Chunk("a", 10.0, 0), 0)
        link.offer(Chunk("b", 10.0, 0), 0)
        departed = link.advance(0)
        by_flow = {}
        for c in departed:
            by_flow[c.flow] = by_flow.get(c.flow, 0.0) + c.size
        assert by_flow["a"] == pytest.approx(3.0)
        assert by_flow["b"] == pytest.approx(1.0)

    def test_work_conserving_redistribution(self):
        # flow b has little backlog; a gets the leftover share
        link = Link(4.0, GPSPolicy({"a": 1.0, "b": 1.0}))
        link.offer(Chunk("a", 10.0, 0), 0)
        link.offer(Chunk("b", 0.5, 0), 0)
        departed = link.advance(0)
        total = sum(c.size for c in departed)
        assert total == pytest.approx(4.0)  # full capacity used

    def test_idle_when_empty(self):
        link = Link(4.0, GPSPolicy({"a": 1.0}))
        assert link.advance(0) == []


class TestLinkValidation:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Link(0.0, FIFOPolicy())
