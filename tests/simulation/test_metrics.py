"""Unit tests for the measurement collectors.

Focus: weighted-quantile edge cases (single sample, all-equal weights,
``eps`` finer than the sample resolution), the bulk ``from_arrays``
constructors used by the vectorized engine, and the order-statistics
confidence interval behind the multi-trial validation summary.
"""

import math

import numpy as np
import pytest

from repro.simulation.metrics import (
    BacklogRecorder,
    DelayRecorder,
    order_statistics_ci,
)


class TestWeightedQuantileEdgeCases:
    def test_empty_recorder(self):
        r = DelayRecorder()
        assert r.quantile(0.999) == 0.0
        assert r.max() == 0.0
        assert r.mean() == 0.0
        assert r.total_mass == 0.0

    def test_single_sample_every_level(self):
        r = DelayRecorder()
        r.record(7.0, 3.0)
        for p in (0.0, 0.001, 0.5, 0.999, 1.0):
            assert r.quantile(p) == 7.0

    def test_all_equal_weights_matches_unweighted(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        r = DelayRecorder()
        for v in values:
            r.record(v, 2.5)
        # with uniform weights the weighted quantile is the order
        # statistic at ceil(p * n)
        ordered = sorted(values)
        for p in (0.25, 0.5, 0.75):
            expected = ordered[math.ceil(p * len(values)) - 1]
            assert r.quantile(p) == expected

    def test_eps_beyond_sample_resolution_returns_max(self):
        # 1 - eps above the mass of everything but the largest delay:
        # the quantile must land on the largest observed delay, never
        # beyond it
        r = DelayRecorder()
        r.record(1.0, 999.0)
        r.record(50.0, 1.0)  # one part in 1000
        assert r.quantile(1.0 - 1e-6) == 50.0
        assert r.quantile(1.0 - 1e-12) == 50.0

    def test_heavy_weight_dominates(self):
        r = DelayRecorder()
        r.record(1.0, 1.0)
        r.record(10.0, 100.0)
        assert r.quantile(0.5) == 10.0

    def test_mass_exactly_at_target_is_inclusive(self):
        r = DelayRecorder()
        r.record(1.0, 1.0)
        r.record(2.0, 1.0)
        assert r.quantile(0.5) == 1.0

    def test_quantile_validation(self):
        r = DelayRecorder()
        with pytest.raises(ValueError):
            r.quantile(1.5)

    def test_exceed_fraction(self):
        r = DelayRecorder()
        r.record(1.0, 3.0)
        r.record(5.0, 1.0)
        assert r.exceed_fraction(1.0) == pytest.approx(0.25)
        assert r.exceed_fraction(0.5) == 1.0
        assert r.exceed_fraction(5.0) == 0.0


class TestFromArrays:
    def test_integer_delays_merge_by_bincount(self):
        r = DelayRecorder.from_arrays(
            np.array([3, 0, 3, 1], dtype=np.int64),
            np.array([1.0, 2.0, 0.5, 4.0]),
        )
        assert r.total_mass == pytest.approx(7.5)
        assert r.count() == 3  # 0, 1, 3 after merging
        assert r.max() == 3.0
        assert r.quantile(0.5) == 1.0

    def test_float_delays_merge_by_unique(self):
        r = DelayRecorder.from_arrays(
            np.array([0.5, 0.5, 2.0]), np.array([1.0, 1.0, 2.0])
        )
        assert r.count() == 2
        assert r.total_mass == pytest.approx(4.0)
        assert r.quantile(0.5) == 0.5

    def test_zero_weights_dropped(self):
        r = DelayRecorder.from_arrays(
            np.array([1, 2], dtype=np.int64), np.array([0.0, 1.0])
        )
        assert r.count() == 1
        assert r.max() == 2.0

    def test_matches_incremental_recording(self):
        rng = np.random.default_rng(3)
        delays = rng.integers(0, 20, size=200)
        weights = rng.uniform(0.1, 2.0, size=200)
        bulk = DelayRecorder.from_arrays(delays, weights)
        loop = DelayRecorder()
        for d, w in zip(delays, weights):
            loop.record(float(d), float(w))
        assert bulk.total_mass == pytest.approx(loop.total_mass)
        for p in (0.1, 0.5, 0.9, 0.999):
            assert bulk.quantile(p) == loop.quantile(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayRecorder.from_arrays(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            DelayRecorder.from_arrays(np.array([-1.0]), np.array([1.0]))

    def test_empty_arrays(self):
        r = DelayRecorder.from_arrays(np.array([]), np.array([]))
        assert r.count() == 0 and r.total_mass == 0.0


class TestOrderStatisticsCI:
    def test_single_sample_degenerates(self):
        assert order_statistics_ci([4.2]) == (4.2, 4.2)

    def test_known_ranks_n10_median(self):
        # classical table value: n=10, p=0.5, 95% -> ranks (2, 9)
        samples = list(range(1, 11))
        assert order_statistics_ci(samples) == (2.0, 9.0)

    def test_interval_contains_median_and_is_ordered(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=25).tolist()
        lo, hi = order_statistics_ci(samples)
        assert lo <= float(np.median(samples)) <= hi

    def test_order_of_input_is_irrelevant(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0, 9.0, 7.0, 8.0, 6.0, 10.0]
        assert order_statistics_ci(samples) == order_statistics_ci(
            sorted(samples)
        )

    def test_higher_confidence_widens(self):
        samples = list(range(30))
        lo95, hi95 = order_statistics_ci(samples, confidence=0.95)
        lo99, hi99 = order_statistics_ci(samples, confidence=0.99)
        assert lo99 <= lo95 and hi99 >= hi95

    def test_coverage_simulation(self):
        # empirical coverage of the 95% CI for the median over repeated
        # draws must be at least nominal (the construction is
        # conservative)
        rng = np.random.default_rng(7)
        hits = 0
        n_rep = 400
        for _ in range(n_rep):
            samples = rng.exponential(size=15)
            lo, hi = order_statistics_ci(samples)
            if lo <= math.log(2.0) <= hi:  # true median of Exp(1)
                hits += 1
        assert hits / n_rep >= 0.93

    def test_validation(self):
        with pytest.raises(ValueError):
            order_statistics_ci([])
        with pytest.raises(ValueError):
            order_statistics_ci([1.0], p=0.0)
        with pytest.raises(ValueError):
            order_statistics_ci([1.0], confidence=1.0)


class TestBacklogRecorder:
    def test_from_samples_roundtrip(self):
        r = BacklogRecorder.from_samples(np.array([0.0, 2.0, 1.0]))
        assert r.max() == 2.0
        assert r.mean() == pytest.approx(1.0)
        assert tuple(r.samples()) == (0.0, 2.0, 1.0)

    def test_from_samples_rejects_negative(self):
        with pytest.raises(ValueError):
            BacklogRecorder.from_samples(np.array([-1.0]))

    def test_quantile(self):
        r = BacklogRecorder.from_samples(np.arange(101, dtype=float))
        assert r.quantile(0.5) == pytest.approx(50.0)
