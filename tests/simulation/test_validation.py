"""Integration: simulated delays validate the analytic bounds.

The central soundness check of the whole library: the empirical delay
quantile at level ``1 - epsilon`` must stay below the analytic end-to-end
bound computed at violation probability ``epsilon`` (plus the simulator's
store-and-forward slack of one slot per extra hop).
"""

import math

import numpy as np
import pytest

from repro.arrivals.envelopes import leaky_bucket
from repro.arrivals.mmoo import MMOOParameters
from repro.network.e2e import e2e_delay_bound_mmoo
from repro.scheduling.delta import FIFO
from repro.scheduling.schedulability import adversarial_arrivals, min_feasible_delay
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo
from repro.simulation.network import TandemNetwork
from repro.simulation.schedulers import FIFOPolicy

TRAFFIC = MMOOParameters.paper_defaults()
CAPACITY = 100.0


def run_sim(scheduler, n_through, n_cross, hops, slots=20_000, seed=5, **kw):
    config = SimulationConfig(
        traffic=TRAFFIC, n_through=n_through, n_cross=n_cross, hops=hops,
        capacity=CAPACITY, slots=slots, scheduler=scheduler, seed=seed, **kw,
    )
    return simulate_tandem_mmoo(config).through_delays


class TestBoundsHoldEmpirically:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_fifo_bound_dominates_simulation(self, hops):
        n0 = nc = 300  # ~90% utilization: real queueing
        epsilon = 1e-3
        bound = e2e_delay_bound_mmoo(
            TRAFFIC, n0, nc, hops, CAPACITY, 0.0, epsilon,
            s_grid=10, gamma_grid=10,
        )
        delays = run_sim("fifo", n0, nc, hops)
        quantile = delays.quantile(1.0 - epsilon)
        # +(hops-1) slack: store-and-forward vs the analysis' cut-through
        assert quantile <= bound.delay + (hops - 1) + 1e-9

    def test_bmux_bound_dominates_priority_simulation(self):
        n0 = nc = 300
        epsilon = 1e-3
        bound = e2e_delay_bound_mmoo(
            TRAFFIC, n0, nc, 2, CAPACITY, math.inf, epsilon,
            s_grid=10, gamma_grid=10,
        )
        delays = run_sim("bmux", n0, nc, 2)
        assert delays.quantile(1.0 - epsilon) <= bound.delay + 1.0

    def test_edf_bound_dominates_simulation(self):
        n0 = nc = 300
        epsilon = 1e-3
        hops = 2
        # fixed per-node deadlines; Delta = d0 - dc = -9 slots
        d0, dc = 1.0, 10.0
        bound = e2e_delay_bound_mmoo(
            TRAFFIC, n0, nc, hops, CAPACITY, d0 - dc, epsilon,
            s_grid=10, gamma_grid=10,
        )
        delays = run_sim(
            "edf", n0, nc, hops,
            edf_deadline_through=d0, edf_deadline_cross=dc,
        )
        assert delays.quantile(1.0 - epsilon) <= bound.delay + (hops - 1)

    def test_bound_is_not_absurdly_loose_at_max(self):
        """Sanity on the other side: the simulated *maximum* should not be
        orders of magnitude above the 1e-3 bound (the bound would then be
        meaningless as a predictor)."""
        n0 = nc = 300
        bound = e2e_delay_bound_mmoo(
            TRAFFIC, n0, nc, 2, CAPACITY, 0.0, 1e-3, s_grid=10, gamma_grid=10
        )
        delays = run_sim("fifo", n0, nc, 2)
        assert bound.delay <= 100 * max(delays.max(), 1.0)


class TestTheorem2Necessity:
    """The greedy arrival pattern drives a FIFO link to its exact bound."""

    def test_greedy_pattern_attains_fifo_bound(self):
        envs = {
            "through": leaky_bucket(20.0, 120.0),
            "cross0": leaky_bucket(30.0, 180.0),
        }
        d_exact = min_feasible_delay(FIFO(), envs, CAPACITY, "through")
        n_slots = 60
        net = TandemNetwork(CAPACITY, 1, lambda t, c: FIFOPolicy())
        through = adversarial_arrivals(envs["through"], n_slots)
        cross = adversarial_arrivals(envs["cross0"], n_slots)
        result = net.run(through, [cross])
        worst = result.through_delays.max()
        # slot granularity: the fluid bound (300/100 = 3) is achieved
        assert worst <= math.ceil(d_exact + 1e-9)
        assert worst >= math.floor(d_exact - 1e-9)

    def test_scaled_down_envelopes_stay_within_bound(self):
        envs = {
            "through": leaky_bucket(20.0, 120.0),
            "cross0": leaky_bucket(30.0, 180.0),
        }
        d_exact = min_feasible_delay(FIFO(), envs, CAPACITY, "through")
        rng = np.random.default_rng(2)
        n_slots = 200
        net = TandemNetwork(CAPACITY, 1, lambda t, c: FIFOPolicy())
        # random sub-envelope traffic: never exceeds the bound
        through = np.minimum(
            rng.uniform(0, 40, n_slots), adversarial_arrivals(envs["through"], n_slots)
        )
        cross = np.minimum(
            rng.uniform(0, 60, n_slots), adversarial_arrivals(envs["cross0"], n_slots)
        )
        result = net.run(through, [cross])
        assert result.through_delays.max() <= math.ceil(d_exact + 1e-9)
