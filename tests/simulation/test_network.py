"""Tests for the tandem network and metrics."""

import numpy as np
import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo
from repro.simulation.metrics import BacklogRecorder, DelayRecorder
from repro.simulation.network import TandemNetwork
from repro.simulation.schedulers import FIFOPolicy


def fifo_factory(through_id, cross_id):
    return FIFOPolicy()


class TestDelayRecorder:
    def test_quantiles_weighted(self):
        rec = DelayRecorder()
        rec.record(1.0, 9.0)
        rec.record(10.0, 1.0)
        assert rec.quantile(0.5) == 1.0
        assert rec.quantile(0.95) == 10.0
        assert rec.mean() == pytest.approx(1.9)
        assert rec.max() == 10.0
        assert rec.total_mass == 10.0

    def test_exceed_fraction(self):
        rec = DelayRecorder()
        rec.record(1.0, 3.0)
        rec.record(5.0, 1.0)
        assert rec.exceed_fraction(1.0) == pytest.approx(0.25)
        assert rec.exceed_fraction(5.0) == 0.0

    def test_empty(self):
        rec = DelayRecorder()
        assert rec.quantile(0.9) == 0.0
        assert rec.mean() == 0.0
        assert rec.exceed_fraction(1.0) == 0.0

    def test_validation(self):
        rec = DelayRecorder()
        with pytest.raises(ValueError):
            rec.record(-1.0, 1.0)
        rec.record(1.0, 0.0)  # zero-size ignored
        assert rec.count() == 0


class TestBacklogRecorder:
    def test_stats(self):
        rec = BacklogRecorder()
        for value in (0.0, 2.0, 4.0):
            rec.record(value)
        assert rec.max() == 4.0
        assert rec.mean() == pytest.approx(2.0)
        assert rec.quantile(0.5) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BacklogRecorder().record(-1.0)


class TestTandemDeterministic:
    def test_pipeline_delay_under_light_load(self):
        # 1 unit/slot through a capacity-10 pipeline: the only delay is the
        # store-and-forward +1 per extra hop
        net = TandemNetwork(10.0, 3, fifo_factory)
        through = np.ones(50)
        cross = [np.zeros(50) for _ in range(3)]
        result = net.run(through, cross)
        assert result.through_delays.max() == 2.0
        assert result.through_delays.total_mass == pytest.approx(50.0)

    def test_conservation_with_cross_traffic(self):
        net = TandemNetwork(5.0, 2, fifo_factory)
        rng = np.random.default_rng(0)
        through = rng.uniform(0.0, 2.0, 100)
        cross = [rng.uniform(0.0, 2.0, 100) for _ in range(2)]
        result = net.run(through, cross)
        assert result.through_delays.total_mass == pytest.approx(through.sum())
        for h in range(2):
            assert result.cross_delays[h].total_mass == pytest.approx(
                cross[h].sum()
            )

    def test_single_node_queue_buildup(self):
        # 3 units/slot into capacity 2: backlog grows by 1/slot for 10
        # slots, then drains; worst delay = ceil(10/2) = 5
        net = TandemNetwork(2.0, 1, fifo_factory)
        through = np.concatenate([np.full(10, 3.0), np.zeros(20)])
        cross = [np.zeros(30)]
        result = net.run(through, cross)
        assert result.through_delays.max() == pytest.approx(5.0)

    def test_backlog_recording(self):
        net = TandemNetwork(2.0, 1, fifo_factory)
        through = np.concatenate([np.full(5, 4.0), np.zeros(10)])
        result = net.run(through, [np.zeros(15)], record_backlog=True)
        backlog = result.node_backlogs[0]
        # after slot 4 (sampled post-service): 5*4 arrived, 5*2 served
        assert backlog.max() == pytest.approx(10.0)

    def test_row_count_validation(self):
        net = TandemNetwork(2.0, 2, fifo_factory)
        with pytest.raises(ValueError):
            net.run(np.ones(5), [np.zeros(5)])
        with pytest.raises(ValueError):
            net.run(np.ones(5), [np.zeros(5), np.zeros(4)])


class TestSimulateTandemMMOO:
    TRAFFIC = MMOOParameters.paper_defaults()

    def test_reproducible(self):
        cfg = SimulationConfig(
            traffic=self.TRAFFIC, n_through=50, n_cross=50, hops=2,
            capacity=100.0, slots=2000, scheduler="fifo", seed=11,
        )
        a = simulate_tandem_mmoo(cfg)
        b = simulate_tandem_mmoo(cfg)
        assert a.through_delays.mean() == b.through_delays.mean()
        assert a.through_delays.max() == b.through_delays.max()

    def test_zero_cross_traffic(self):
        cfg = SimulationConfig(
            traffic=self.TRAFFIC, n_through=50, n_cross=0, hops=2,
            capacity=100.0, slots=2000, scheduler="fifo", seed=3,
        )
        result = simulate_tandem_mmoo(cfg)
        assert result.through_delays.total_mass > 0

    def test_scheduler_ordering_at_high_load(self):
        """SP (through favored) <= EDF-favored <= FIFO <= BMUX."""
        delays = {}
        for scheduler in ("sp", "edf", "fifo", "bmux"):
            cfg = SimulationConfig(
                traffic=self.TRAFFIC, n_through=300, n_cross=300, hops=2,
                capacity=100.0, slots=12_000, scheduler=scheduler, seed=7,
                edf_deadline_through=1.0, edf_deadline_cross=10.0,
            )
            delays[scheduler] = simulate_tandem_mmoo(cfg).through_delays.quantile(
                0.999
            )
        assert delays["sp"] <= delays["edf"] + 1e-9
        assert delays["edf"] <= delays["fifo"] + 1e-9
        assert delays["fifo"] <= delays["bmux"] + 1e-9
        # at this load the differentiation is strict between extremes
        assert delays["sp"] < delays["bmux"]

    def test_gps_weights_shift_delay(self):
        results = {}
        for w in (0.2, 5.0):
            cfg = SimulationConfig(
                traffic=self.TRAFFIC, n_through=300, n_cross=300, hops=1,
                capacity=100.0, slots=12_000, scheduler="gps", seed=9,
                gps_weight_through=w, gps_weight_cross=1.0,
            )
            results[w] = simulate_tandem_mmoo(cfg).through_delays.quantile(0.999)
        assert results[5.0] <= results[0.2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(
                traffic=self.TRAFFIC, n_through=0, n_cross=1, hops=1,
                capacity=1.0, slots=10,
            )
        with pytest.raises(ValueError):
            SimulationConfig(
                traffic=self.TRAFFIC, n_through=1, n_cross=1, hops=1,
                capacity=1.0, slots=10, scheduler="wfq",
            )


class TestStoreAndForwardConvention:
    """Regression-pin the +1-slot-per-hop store-and-forward timing.

    Fluid served at a node in slot ``t`` reaches the next node at slot
    ``t + 1``, so under light load an ``H``-hop path sees exactly
    ``H - 1`` slots of end-to-end delay.  The validation experiments'
    ``slack_allowed = H - 1`` encodes this convention; if either engine
    ever changes it, these tests fail before the validation suite does.
    """

    def _impulse(self, hops):
        through = np.zeros(6)
        through[0] = 1.0
        cross = [np.zeros(6) for _ in range(hops)]
        return through, cross

    @pytest.mark.parametrize("hops", [1, 2, 5])
    def test_chunk_engine_impulse_delay(self, hops):
        through, cross = self._impulse(hops)
        network = TandemNetwork(100.0, hops, fifo_factory)
        rec = network.run(through, cross).through_delays
        assert rec.count() == 1
        assert rec.max() == float(hops - 1)

    @pytest.mark.parametrize("hops", [1, 2, 5])
    def test_vectorized_engine_impulse_delay(self, hops):
        from repro.simulation.vectorized import run_tandem_vectorized

        through, cross = self._impulse(hops)
        rec = run_tandem_vectorized(
            through, cross, capacity=100.0, scheduler="fifo"
        ).through_delays
        assert rec.max() == float(hops - 1)
