"""Behavioral tests for the GPS and static-priority scheduler policies.

The Delta-scheduler policies (FIFO/EDF/BMUX) are exercised all over the
validation suite; these tests pin down the two remaining families at the
link level: static priority's strict precedence drain and GPS's
weight-proportional water-filling (the canonical *non*-Delta scheduler).
"""

import math

import pytest

from repro.simulation.chunk import Chunk
from repro.simulation.node import Link
from repro.simulation.schedulers import (
    GPSPolicy,
    StaticPriorityPolicy,
    bmux_policy,
)


def flow_mass(chunks, flow):
    return sum(c.size for c in chunks if c.flow == flow)


class TestStaticPriorityPolicy:
    def test_validation_rejects_empty(self):
        with pytest.raises(ValueError):
            StaticPriorityPolicy({})

    def test_tag_is_negated_priority(self):
        sp = StaticPriorityPolicy({"hi": 2.0, "lo": 1.0})
        hi = Chunk("hi", 1.0, 0)
        lo = Chunk("lo", 1.0, 0)
        assert sp.tag(hi, slot=7) < sp.tag(lo, slot=7)

    def test_is_precedence_based(self):
        assert StaticPriorityPolicy({"a": 1.0}).is_precedence_based

    def test_high_priority_drains_first(self):
        link = Link(2.0, StaticPriorityPolicy({"hi": 1.0, "lo": 0.0}))
        link.offer(Chunk("lo", 2.0, 0), slot=0)
        link.offer(Chunk("hi", 2.0, 0), slot=0)
        departed = link.advance(0)
        assert flow_mass(departed, "hi") == 2.0
        assert flow_mass(departed, "lo") == 0.0
        assert flow_mass(link.advance(1), "lo") == 2.0

    def test_late_high_priority_preempts_backlog(self):
        link = Link(1.0, StaticPriorityPolicy({"hi": 1.0, "lo": 0.0}))
        link.offer(Chunk("lo", 3.0, 0), slot=0)
        link.advance(0)  # one unit of lo served, two backlogged
        link.offer(Chunk("hi", 1.0, 1), slot=1)
        departed = link.advance(1)
        assert flow_mass(departed, "hi") == 1.0
        assert flow_mass(departed, "lo") == 0.0

    def test_equal_priority_is_fifo(self):
        link = Link(1.0, StaticPriorityPolicy({"a": 1.0, "b": 1.0}))
        link.offer(Chunk("a", 1.0, 0), slot=0)
        link.advance(0)
        link.offer(Chunk("b", 1.0, 1), slot=1)
        link.offer(Chunk("a", 1.0, 1), slot=1)
        # same level: offer order (seq) breaks the tie
        assert flow_mass(link.advance(1), "b") == 1.0

    def test_bmux_matches_sp_with_through_lowest(self):
        bmux = bmux_policy("through", ["through", "cross"])
        chunk_t = Chunk("through", 1.0, 0)
        chunk_c = Chunk("cross", 1.0, 0)
        assert bmux.tag(chunk_c, 0) < bmux.tag(chunk_t, 0)


class TestGPSPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GPSPolicy({})
        with pytest.raises(ValueError):
            GPSPolicy({"a": 0.0})
        with pytest.raises(ValueError):
            GPSPolicy({"a": -1.0})
        with pytest.raises(ValueError):
            GPSPolicy({"a": math.inf})

    def test_not_precedence_based_and_nan_delta(self):
        gps = GPSPolicy({"a": 1.0, "b": 2.0})
        assert not gps.is_precedence_based
        assert math.isnan(gps.delta("a", "b"))

    def test_rejects_nonpreemptive_link(self):
        with pytest.raises(ValueError):
            Link(1.0, GPSPolicy({"a": 1.0}), preemptive=False)

    def test_weighted_shares_when_both_backlogged(self):
        link = Link(4.0, GPSPolicy({"a": 3.0, "b": 1.0}))
        link.offer(Chunk("a", 10.0, 0), slot=0)
        link.offer(Chunk("b", 10.0, 0), slot=0)
        departed = link.advance(0)
        assert flow_mass(departed, "a") == pytest.approx(3.0)
        assert flow_mass(departed, "b") == pytest.approx(1.0)

    def test_water_filling_redistributes_unused_share(self):
        # flow a only has 1 unit; its unused share flows to b
        link = Link(4.0, GPSPolicy({"a": 1.0, "b": 1.0}))
        link.offer(Chunk("a", 1.0, 0), slot=0)
        link.offer(Chunk("b", 10.0, 0), slot=0)
        departed = link.advance(0)
        assert flow_mass(departed, "a") == pytest.approx(1.0)
        assert flow_mass(departed, "b") == pytest.approx(3.0)

    def test_work_conserving_single_flow(self):
        link = Link(2.0, GPSPolicy({"a": 1.0, "b": 5.0}))
        link.offer(Chunk("a", 5.0, 0), slot=0)
        assert flow_mass(link.advance(0), "a") == pytest.approx(2.0)
        assert link.backlog() == pytest.approx(3.0)

    def test_within_flow_order_is_fifo(self):
        link = Link(1.0, GPSPolicy({"a": 1.0}))
        link.offer(Chunk("a", 1.0, 0), slot=0)
        link.offer(Chunk("a", 1.0, 1), slot=1)
        first = link.advance(1)
        second = link.advance(2)
        assert [c.origin_slot for c in first] == [0]
        assert [c.origin_slot for c in second] == [1]

    def test_empty_link_serves_nothing(self):
        link = Link(1.0, GPSPolicy({"a": 1.0}))
        assert link.advance(0) == []
        assert link.backlog() == 0.0
