"""Tests for the vectorized fluid fast path.

The heart of the file is the cross-validation matrix: for every
vectorized scheduler and H in {1, 2, 5}, the vectorized engine must
reproduce the chunk simulator's through-delay distribution within one
slot on the same sampled arrival paths.  Around it sit deterministic
kernel cases, unit and fuzz tests of the cumulative-curve delay
extraction, and the engine-selection plumbing in ``SimulationConfig``.
"""

import numpy as np
import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.simulation.engine import SimulationConfig, simulate_tandem_mmoo
from repro.simulation.vectorized import (
    VECTORIZED_SCHEDULERS,
    aggregate_service,
    delays_between,
    run_tandem_vectorized,
)

TRAFFIC = MMOOParameters.paper_defaults()
CAPACITY = 20.0
N_HALF = 60  # 120 flows * 0.15 / 20 = 90% utilization


def run_engine(engine, scheduler, hops, slots=2_000, seed=11):
    config = SimulationConfig(
        traffic=TRAFFIC, n_through=N_HALF, n_cross=N_HALF, hops=hops,
        capacity=CAPACITY, slots=slots, scheduler=scheduler, seed=seed,
        engine=engine,
    )
    return simulate_tandem_mmoo(config)


class TestCrossValidation:
    """Vectorized vs. chunk on identical sample paths, within one slot."""

    @pytest.mark.parametrize("scheduler", VECTORIZED_SCHEDULERS)
    @pytest.mark.parametrize("hops", [1, 2, 5])
    def test_through_delays_match(self, scheduler, hops):
        chunk = run_engine("chunk", scheduler, hops).through_delays
        vec = run_engine("vectorized", scheduler, hops).through_delays
        assert vec.total_mass == pytest.approx(chunk.total_mass, rel=1e-6)
        assert abs(vec.max() - chunk.max()) <= 1.0
        assert abs(vec.mean() - chunk.mean()) <= 1.0
        for p in (0.5, 0.9, 0.99, 0.999):
            assert abs(vec.quantile(p) - chunk.quantile(p)) <= 1.0, (
                scheduler, hops, p,
            )

    @pytest.mark.parametrize("scheduler", ["fifo", "edf"])
    def test_cross_delays_match(self, scheduler):
        chunk = run_engine("chunk", scheduler, 2)
        vec = run_engine("vectorized", scheduler, 2)
        for c_rec, v_rec in zip(chunk.cross_delays, vec.cross_delays):
            # the chunk engine stops draining once the through traffic is
            # out, stranding a sliver of terminal cross backlog, so the
            # masses agree only approximately
            assert v_rec.total_mass == pytest.approx(
                c_rec.total_mass, rel=5e-3
            )
            assert abs(v_rec.quantile(0.999) - c_rec.quantile(0.999)) <= 1.0


class TestDeterministicKernels:
    def test_aggregate_service_lindley(self):
        arrivals = np.array([3.0, 0.0, 0.0, 2.0])
        departed, backlog = aggregate_service(arrivals, 1.0)
        assert np.allclose(backlog, [2.0, 1.0, 0.0, 1.0])
        assert np.allclose(departed, [1.0, 1.0, 1.0, 1.0])

    def test_aggregate_service_matches_slot_loop_fuzz(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            arrivals = rng.uniform(0.0, 3.0, size=50)
            capacity = rng.uniform(0.5, 2.5)
            departed, backlog = aggregate_service(arrivals, capacity)
            q = 0.0
            for t in range(50):
                q += arrivals[t]
                served = min(q, capacity)
                q -= served
                assert departed[t] == pytest.approx(served)
                assert backlog[t] == pytest.approx(q)

    def test_fifo_burst_drains_in_order(self):
        # 2 units arrive at slot 0 on a unit-rate link: the first unit
        # departs in slot 0 (delay 0), the second in slot 1 (delay 1)
        result = run_tandem_vectorized(
            np.array([2.0, 0.0, 0.0]), [np.zeros(3)],
            capacity=1.0, scheduler="fifo",
        )
        delays = result.through_delays
        assert delays.total_mass == pytest.approx(2.0)
        assert delays.quantile(0.5) == 0.0
        assert delays.max() == 1.0

    def test_sp_through_unaffected_by_cross(self):
        through = np.array([1.0, 1.0, 1.0, 0.0])
        cross = np.array([5.0, 0.0, 0.0, 0.0])
        result = run_tandem_vectorized(
            through, [cross], capacity=1.0, scheduler="sp"
        )
        # through has strict priority and never exceeds capacity alone
        assert result.through_delays.max() == 0.0

    def test_bmux_cross_unaffected_by_through(self):
        through = np.array([5.0, 0.0, 0.0, 0.0, 0.0])
        cross = np.array([1.0, 1.0, 1.0, 0.0, 0.0])
        result = run_tandem_vectorized(
            through, [cross], capacity=1.0, scheduler="bmux"
        )
        (cross_rec,) = result.cross_delays
        assert cross_rec.max() == 0.0
        # through waits behind all cross traffic
        assert result.through_delays.max() >= 4.0

    def test_edf_equal_deadlines_is_fifo(self):
        rng = np.random.default_rng(9)
        through = rng.uniform(0.0, 2.0, size=300)
        cross = rng.uniform(0.0, 2.0, size=300)
        fifo = run_tandem_vectorized(
            through, [cross], capacity=2.5, scheduler="fifo"
        )
        edf = run_tandem_vectorized(
            through, [cross], capacity=2.5, scheduler="edf",
            edf_deadline_through=3.0, edf_deadline_cross=3.0,
        )
        for p in (0.5, 0.9, 0.999):
            assert edf.through_delays.quantile(p) == pytest.approx(
                fifo.through_delays.quantile(p)
            )
        assert edf.through_delays.total_mass == pytest.approx(
            fifo.through_delays.total_mass
        )

    def test_edf_prefers_tighter_deadline(self):
        through = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        cross = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        tight = run_tandem_vectorized(
            through, [cross], capacity=1.0, scheduler="edf",
            edf_deadline_through=0.0, edf_deadline_cross=10.0,
        )
        loose = run_tandem_vectorized(
            through, [cross], capacity=1.0, scheduler="edf",
            edf_deadline_through=10.0, edf_deadline_cross=0.0,
        )
        assert tight.through_delays.max() < loose.through_delays.max()

    def test_mass_conserved_with_drain(self):
        # everything offered eventually departs, even past the horizon
        through = np.full(10, 2.0)
        cross = np.full(10, 2.0)
        result = run_tandem_vectorized(
            through, [cross, cross], capacity=1.0, scheduler="fifo"
        )
        assert result.through_delays.total_mass == pytest.approx(20.0)
        for rec in result.cross_delays:
            assert rec.total_mass == pytest.approx(20.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            run_tandem_vectorized(
                np.ones(3), [np.ones(3)], capacity=1.0, scheduler="gps"
            )
        with pytest.raises(ValueError):
            run_tandem_vectorized(
                np.ones(3), [], capacity=1.0, scheduler="fifo"
            )
        with pytest.raises(ValueError):
            run_tandem_vectorized(
                np.ones(3), [np.ones(4)], capacity=1.0, scheduler="fifo"
            )
        with pytest.raises(ValueError):
            run_tandem_vectorized(
                np.ones(3), [np.ones(3)], capacity=1.0, scheduler="edf",
                edf_deadline_through=0.5,
            )


class TestDelaysBetween:
    def test_no_queueing_zero_delay(self):
        entry = np.array([1.0, 2.0, 0.5])
        delays, weights = delays_between(entry, entry)
        assert np.all(delays == 0)
        assert weights.sum() == pytest.approx(3.5)

    @staticmethod
    def merged(delays, weights):
        out = {}
        for d, w in zip(delays.tolist(), weights.tolist()):
            out[d] = out.get(d, 0.0) + w
        return out

    def test_constant_shift(self):
        entry = np.array([1.0, 1.0, 0.0, 0.0])
        exit = np.array([0.0, 0.0, 1.0, 1.0])
        assert self.merged(*delays_between(entry, exit)) == {2: 2.0}

    def test_burst_spread(self):
        entry = np.array([3.0, 0.0, 0.0])
        exit = np.array([1.0, 1.0, 1.0])
        assert self.merged(*delays_between(entry, exit)) == {
            0: 1.0, 1: 1.0, 2: 1.0,
        }

    def test_truncated_exit_only_counts_departed_mass(self):
        entry = np.array([4.0, 0.0])
        exit = np.array([1.0, 1.0])
        delays, weights = delays_between(entry, exit)
        assert weights.sum() == pytest.approx(2.0)

    def test_fuzz_against_reference(self):
        def reference(entry, exit):
            entry_cum = np.cumsum(entry)
            exit_cum = np.cumsum(exit)
            total = min(entry_cum[-1], exit_cum[-1])
            marks = np.unique(np.concatenate([entry_cum, exit_cum]))
            marks = marks[(marks > 1e-9) & (marks <= total + 1e-9)]
            out = {}
            prev = 0.0
            for mark in marks:
                entered = int(np.searchsorted(entry_cum, mark - 1e-12, side="right"))
                exited = int(np.searchsorted(exit_cum, mark - 1e-12, side="right"))
                weight = mark - prev
                if weight > 1e-9:
                    delay = max(exited - entered, 0)
                    out[delay] = out.get(delay, 0.0) + weight
                prev = mark
            return out

        rng = np.random.default_rng(12)
        for _ in range(50):
            n = int(rng.integers(2, 40))
            entry = rng.uniform(0.0, 2.0, size=n)
            entry[rng.random(n) < 0.4] = 0.0
            capacity = rng.uniform(0.5, 1.5)
            exit, _ = aggregate_service(entry, capacity)
            delays, weights = delays_between(entry, exit)
            got = {}
            for d, w in zip(delays.tolist(), weights.tolist()):
                got[d] = got.get(d, 0.0) + w
            want = reference(entry, exit)
            assert set(got) == set(want)
            for d in want:
                assert got[d] == pytest.approx(want[d]), (entry, exit)


class TestEngineSelection:
    def base(self, **kw):
        defaults = dict(
            traffic=TRAFFIC, n_through=4, n_cross=4, hops=1,
            capacity=10.0, slots=100, scheduler="fifo",
        )
        defaults.update(kw)
        return SimulationConfig(**defaults)

    def test_default_engine_is_chunk(self):
        assert self.base().engine == "chunk"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            self.base(engine="warp")

    def test_vectorized_rejects_gps(self):
        with pytest.raises(ValueError, match="vectorized"):
            self.base(engine="vectorized", scheduler="gps")

    def test_vectorized_rejects_nonpreemptive(self):
        with pytest.raises(ValueError, match="preemptive"):
            self.base(engine="vectorized", preemptive=False)

    def test_vectorized_rejects_packet_size(self):
        with pytest.raises(ValueError, match="packet"):
            self.base(engine="vectorized", packet_size=1.5)

    def test_same_seed_same_sample_path(self):
        # both engines draw identical arrivals for a given seed: total
        # offered through mass must agree exactly
        chunk = simulate_tandem_mmoo(self.base(seed=3))
        vec = simulate_tandem_mmoo(self.base(seed=3, engine="vectorized"))
        assert vec.through_delays.total_mass == pytest.approx(
            chunk.through_delays.total_mass
        )
