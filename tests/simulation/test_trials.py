"""Tests for the multi-trial Monte Carlo harness of the simulator."""

import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.simulation.engine import (
    SimulationConfig,
    TrialResult,
    simulate_tandem_mmoo,
    simulate_tandem_mmoo_trials,
    spawn_trial_seeds,
)

TRAFFIC = MMOOParameters.paper_defaults()


def small_config(**kw):
    defaults = dict(
        traffic=TRAFFIC, n_through=4, n_cross=4, hops=1,
        capacity=10.0, slots=200, scheduler="fifo", seed=42,
        engine="vectorized",
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


class RecordingExecutor:
    """Duck-typed executor observing the fan-out."""

    def __init__(self):
        self.calls = 0
        self.items = None

    def map(self, fn, items):
        self.calls += 1
        self.items = list(items)
        return [fn(item) for item in self.items]


class TestSpawnTrialSeeds:
    def test_deterministic_and_distinct(self):
        seeds = spawn_trial_seeds(5, 16)
        assert seeds == spawn_trial_seeds(5, 16)
        assert len(set(seeds)) == 16

    def test_prefix_stable(self):
        # growing the trial count only appends seeds — earlier trials
        # (and their cached cells) stay identical
        assert spawn_trial_seeds(5, 3) == spawn_trial_seeds(5, 10)[:3]

    def test_root_seed_matters(self):
        assert spawn_trial_seeds(1, 4) != spawn_trial_seeds(2, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            spawn_trial_seeds(0, 0)


class TestSimulateTrials:
    def test_records_every_seed(self):
        config = small_config()
        trials = simulate_tandem_mmoo_trials(config, 3)
        assert [t.seed for t in trials] == list(spawn_trial_seeds(42, 3))
        for trial in trials:
            assert isinstance(trial, TrialResult)
            assert trial.result.through_delays.total_mass > 0

    def test_trials_are_independent(self):
        trials = simulate_tandem_mmoo_trials(small_config(), 4)
        masses = {round(t.result.through_delays.total_mass, 6) for t in trials}
        assert len(masses) > 1  # different seeds, different sample paths

    def test_trial_matches_direct_simulation(self):
        from dataclasses import replace

        config = small_config()
        (trial,) = simulate_tandem_mmoo_trials(config, 1)
        direct = simulate_tandem_mmoo(replace(config, seed=trial.seed))
        assert trial.result.through_delays.total_mass == pytest.approx(
            direct.through_delays.total_mass
        )
        assert trial.result.through_delays.quantile(0.9) == pytest.approx(
            direct.through_delays.quantile(0.9)
        )

    def test_fans_out_through_executor(self):
        executor = RecordingExecutor()
        trials = simulate_tandem_mmoo_trials(
            small_config(), 5, executor=executor
        )
        assert executor.calls == 1
        assert len(executor.items) == 5
        assert len(trials) == 5

    def test_works_with_parallel_executor(self):
        from repro.experiments.executor import ParallelExecutor

        serial = simulate_tandem_mmoo_trials(small_config(), 3)
        parallel = simulate_tandem_mmoo_trials(
            small_config(), 3, executor=ParallelExecutor(2)
        )
        for s, p in zip(serial, parallel):
            assert s.seed == p.seed
            assert s.result.through_delays.quantile(
                0.999
            ) == p.result.through_delays.quantile(0.999)

    def test_both_engines_accepted(self):
        for engine in ("chunk", "vectorized"):
            trials = simulate_tandem_mmoo_trials(
                small_config(engine=engine), 2
            )
            assert len(trials) == 2
