"""Tests for the feed-forward DAG simulator (chunk + vectorized)."""

import numpy as np
import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.simulation.engine import (
    resolve_topology_engine,
    sample_topology_arrivals,
    simulate_topology_mmoo,
)
from repro.simulation.network import DagNetwork, dag_cross_flow_id
from repro.simulation.vectorized import run_topology_vectorized
from repro.topology import NodeSpec, Route, Topology, sink_tree

TRAFFIC = MMOOParameters.paper_defaults()


def single_route(hops: int, capacity: float = 100.0) -> Topology:
    names = tuple(f"n{i}" for i in range(hops))
    return Topology(
        nodes=tuple(NodeSpec(n, capacity) for n in names),
        routes=(Route("r", names),),
    )


class TestStoreAndForwardTiming:
    def test_light_load_delay_is_path_length_minus_one(self):
        for hops in (1, 2, 5):
            topo = single_route(hops)
            arrivals = np.zeros(4)
            arrivals[0] = 1.0
            result = DagNetwork(topo).run({"r": arrivals})
            rec = result.route_delays["r"]
            assert rec.count() == 1
            assert rec.max() == float(hops - 1)

    def test_vectorized_agrees_on_light_load(self):
        for hops in (1, 2, 5):
            topo = single_route(hops)
            arrivals = np.zeros(4)
            arrivals[0] = 1.0
            result = run_topology_vectorized(topo, {"r": arrivals})
            assert result.route_delays["r"].max() == float(hops - 1)


class TestDagNetworkRun:
    def test_mass_conservation_on_sink_tree(self):
        topo = sink_tree(depth=2, branching=2, n_flows_per_leaf=3)
        rng = np.random.default_rng(7)
        slots = 50
        arrivals = {
            r.name: rng.uniform(0.0, 0.3, size=slots) for r in topo.routes
        }
        result = DagNetwork(topo).run(arrivals)
        for route in topo.routes:
            assert result.route_delays[route.name].total_mass == (
                pytest.approx(float(np.sum(arrivals[route.name])))
            )

    def test_cross_traffic_leaves_after_one_node(self):
        topo = Topology(
            nodes=(NodeSpec("a", 10.0, n_cross=1), NodeSpec("b", 10.0)),
            routes=(Route("r", ("a", "b")),),
        )
        arrivals = np.ones(5)
        result = DagNetwork(topo).run(
            {"r": arrivals}, {"a": arrivals}
        )
        # node-local cross is served at "a" only and recorded there
        assert result.cross_delays["a"].total_mass == pytest.approx(5.0)
        assert result.cross_delays["b"].total_mass == 0.0

    def test_missing_route_arrivals_raise(self):
        topo = single_route(2)
        with pytest.raises(ValueError, match="missing arrival rows"):
            DagNetwork(topo).run({})

    def test_unknown_cross_node_raises(self):
        topo = single_route(2)
        with pytest.raises(ValueError, match="unknown node"):
            DagNetwork(topo).run({"r": np.ones(3)}, {"ghost": np.ones(3)})

    def test_unequal_lengths_raise(self):
        topo = single_route(2)
        with pytest.raises(ValueError, match="equal length"):
            DagNetwork(topo).run({"r": np.ones(3)}, {"n0": np.ones(4)})

    def test_route_name_cross_id_collision_raises(self):
        topo = Topology(
            nodes=(NodeSpec("a", 10.0),),
            routes=(Route(dag_cross_flow_id("a"), ("a",)),),
        )
        with pytest.raises(ValueError, match="collide"):
            DagNetwork(topo)

    def test_record_backlog(self):
        topo = single_route(2, capacity=0.5)
        result = DagNetwork(topo).run(
            {"r": np.ones(10)}, record_backlog=True
        )
        assert result.node_backlogs["n0"].max() > 0.0


class TestVectorizedDagEngine:
    def test_rejects_non_fifo_nodes(self):
        topo = Topology(
            nodes=(NodeSpec("a", 10.0, scheduler="edf"),),
            routes=(Route("r", ("a",)),),
        )
        with pytest.raises(ValueError, match="FIFO"):
            run_topology_vectorized(topo, {"r": np.ones(3)})

    @pytest.mark.parametrize("seed", [0, 1])
    def test_agrees_with_chunk_within_one_slot(self, seed):
        topo = sink_tree(depth=2, branching=2, n_flows_per_leaf=10)
        slots = 2_000
        routes, cross = sample_topology_arrivals(topo, TRAFFIC, slots, seed)
        chunk = DagNetwork(topo).run(routes, cross)
        vec = run_topology_vectorized(topo, routes, cross)
        for route in topo.routes:
            c_rec = chunk.route_delays[route.name]
            v_rec = vec.route_delays[route.name]
            assert c_rec.total_mass == pytest.approx(v_rec.total_mass)
            assert abs(c_rec.quantile(0.99) - v_rec.quantile(0.99)) <= 1.0


class TestEngineResolution:
    def test_auto_vectorizes_fifo_dag(self):
        topo = sink_tree(depth=2, branching=2)
        assert resolve_topology_engine(topo, "auto") == "vectorized"

    def test_auto_vectorizes_nonfifo_line(self):
        topo = Topology.line(
            3, capacity=10.0, n_through=2, n_cross=1, scheduler="edf"
        )
        assert resolve_topology_engine(topo, "auto") == "vectorized"

    def test_auto_falls_back_to_chunk(self):
        topo = Topology(
            nodes=(NodeSpec("a", 10.0, scheduler="gps"),),
            routes=(Route("r", ("a",)),),
        )
        assert resolve_topology_engine(topo, "auto") == "chunk"

    def test_explicit_vectorized_rejects_nonfifo_dag(self):
        topo = Topology(
            nodes=(
                NodeSpec("a", 10.0, scheduler="edf"),
                NodeSpec("b", 10.0),
            ),
            routes=(Route("r", ("a", "b")), Route("s", ("b",))),
        )
        with pytest.raises(ValueError, match="vectorized"):
            resolve_topology_engine(topo, "vectorized")


class TestSimulateTopology:
    def test_engines_agree_on_seeded_line(self):
        topo = Topology.line(2, capacity=100.0, n_through=30, n_cross=30)
        a = simulate_topology_mmoo(topo, TRAFFIC, 500, 3, engine="chunk")
        b = simulate_topology_mmoo(topo, TRAFFIC, 500, 3, engine="vectorized")
        ra, rb = a.route_delays["through"], b.route_delays["through"]
        assert ra.total_mass == pytest.approx(rb.total_mass)
        assert abs(ra.quantile(0.99) - rb.quantile(0.99)) <= 1.0

    def test_record_backlog_plumbs_through(self):
        topo = sink_tree(depth=1, branching=2, n_flows_per_leaf=5)
        result = simulate_topology_mmoo(
            topo, TRAFFIC, 200, 0, engine="chunk", record_backlog=True
        )
        assert set(result.node_backlogs) == {n.name for n in topo.nodes}
