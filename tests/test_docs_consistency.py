"""Documentation consistency: the docs reference things that exist."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDocsPresent:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md",
         "docs/API.md", "CITATION.cff"],
    )
    def test_file_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 500


class TestReferencedPathsExist:
    def _referenced_py_paths(self, text):
        # matches e.g. examples/quickstart.py, benchmarks/test_bench_fig2.py
        return set(re.findall(r"`?((?:examples|benchmarks|tests)/[\w/]+\.py)`?", text))

    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_paths_resolve(self, name):
        text = (REPO / name).read_text()
        for rel in self._referenced_py_paths(text):
            assert (REPO / rel).exists(), f"{name} references missing {rel}"

    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for script in sorted((REPO / "examples").glob("*.py")):
            assert script.name in readme, f"README missing {script.name}"

    def test_referenced_modules_import(self):
        import importlib

        text = (REPO / "docs" / "API.md").read_text()
        for module in set(re.findall(r"## `(repro[\w.]*)`", text)):
            importlib.import_module(module)
