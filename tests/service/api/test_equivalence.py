"""Bitwise equivalence: served answers == direct solver == sweep cell.

The service's whole pipeline — JSON parsing, canonicalization, the
coalescer's lane batches, HTTP serialization — must not move a single
bit of the answer: every ``/v1/bounds`` row is compared ``==`` (no
tolerance) against the direct :mod:`repro.network.e2e` /
:mod:`repro.network.backlog` call and against the sweep cell's payload,
across all four schedulers and both numeric backends.  The queries are
fanned concurrently through real sockets, so the answers come out of
coalesced lane batches, not per-query solves.

Also the RPR003 evidence that `bound_query_cell`'s ``backend=``
selector is exercised with every registered backend.
"""

import asyncio

import pytest

from repro.arrivals.mmoo import MMOOParameters
from repro.experiments.config import BACKENDS, SCHEDULER_MAP
from repro.experiments.sweep import execute_cell
from repro.experiments.validation import validation_bound_cell
from repro.network.backlog import e2e_backlog_bound_mmoo
from repro.network.e2e import e2e_delay_bound_edf, e2e_delay_bound_mmoo
from repro.service.api.cells import bound_query_cell
from repro.service.api.client import AsyncServiceClient
from repro.service.api.model import PAPER_TRAFFIC, BoundQuery

GRID = {"s_grid": 5, "gamma_grid": 5}
PATH = {"hops": 3, "n_through": 20, "n_cross": 10}
SCHEDULERS = tuple(SCHEDULER_MAP)


def _query(scheduler: str, backend: str, **overrides) -> dict:
    return {
        "scheduler": scheduler, "backend": backend, **PATH, **GRID,
        **overrides,
    }


@pytest.fixture(scope="module")
def served_rows(shared_harness):
    """All (scheduler, backend) bound rows, fetched *concurrently* so
    they flow through coalesced lane batches."""
    bodies = [_query(s, b) for s in SCHEDULERS for b in BACKENDS]

    async def fan():
        clients = [
            await AsyncServiceClient.connect(
                shared_harness.host, shared_harness.port
            )
            for _ in bodies
        ]
        try:
            return await asyncio.gather(
                *(
                    client.bounds(body)
                    for client, body in zip(clients, bodies)
                )
            )
        finally:
            for client in clients:
                await client.aclose()

    rows = shared_harness.run(fan())
    return {
        (body["scheduler"], body["backend"]): row
        for body, row in zip(bodies, rows)
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_served_equals_direct_solver(served_rows, scheduler, backend):
    row = served_rows[(scheduler, backend)]
    mmoo = MMOOParameters(*PAPER_TRAFFIC)
    hops, n_through, n_cross = PATH["hops"], PATH["n_through"], PATH["n_cross"]
    if scheduler == "EDF":
        bound = e2e_delay_bound_edf(
            mmoo, n_through, n_cross, hops, 100.0, 1e-9,
            backend=backend, **GRID,
        )
        result, delta = bound.result, bound.delta
        assert row["edf"]["edf_iterations"] == bound.diagnostics.iterations
        assert row["edf"]["edf_residual"] == bound.diagnostics.residual
        assert row["edf"]["edf_converged"] == bound.diagnostics.converged
    else:
        _, delta, _ = SCHEDULER_MAP[scheduler]
        result = e2e_delay_bound_mmoo(
            mmoo, n_through, n_cross, hops, 100.0, delta, 1e-9,
            backend=backend, **GRID,
        )
    assert row["feasible"] is True
    assert row["delay"] == result.delay  # bitwise, no tolerance
    assert row["delta"] == delta
    assert row["sigma"] == result.sigma
    assert row["gamma"] == result.gamma
    assert row["alpha"] == result.alpha
    assert row["x"] == result.x
    assert row["thetas"] == list(result.thetas)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_served_equals_sweep_cell(served_rows, scheduler, backend):
    """The served row is exactly the sweep cell's row — the service and
    the sweep CLI share one cacheable unit of computation."""
    query = BoundQuery.from_json(_query(scheduler, backend))
    expected = execute_cell(query.cell())["rows"][0]
    row = dict(served_rows[(scheduler, backend)])
    assert row.pop("key") == query.key()
    row.pop("cached")
    assert row == expected


def test_both_backends_agree_on_the_bound(served_rows):
    for scheduler in SCHEDULERS:
        numpy_row = served_rows[(scheduler, "numpy")]
        scalar_row = served_rows[(scheduler, "scalar")]
        assert numpy_row["delay"] == pytest.approx(
            scalar_row["delay"], rel=1e-12
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_backlog_served_equals_direct(shared_harness, backend):
    body = _query("SP", backend, kind="backlog")
    with shared_harness.client() as client:
        row = client.bounds(body)
    mmoo = MMOOParameters(*PAPER_TRAFFIC)
    direct = e2e_backlog_bound_mmoo(
        mmoo, PATH["n_through"], PATH["n_cross"], PATH["hops"], 100.0,
        SCHEDULER_MAP["SP"][1], 1e-9, backend=backend, **GRID,
    )
    assert row["kind"] == "backlog"
    assert row["backlog"] == direct.backlog
    assert row["sigma"] == direct.sigma
    assert row["gamma"] == direct.gamma
    assert row["alpha"] == direct.alpha


def test_served_matches_sweep_cli_validation_cell(shared_harness):
    """Cross-experiment: the validation sweep's bound cell and the
    service compute the same FIFO bound for the same flow mix."""
    payload = validation_bound_cell(
        scheduler="FIFO", hops=2, utilization=0.3, epsilon=1e-6,
        traffic=PAPER_TRAFFIC, capacity=100.0, **GRID,
    )
    n_half = payload["diagnostics"]["n_through"]
    with shared_harness.client() as client:
        row = client.bounds(
            {
                "scheduler": "FIFO", "hops": 2, "n_through": n_half,
                "n_cross": n_half, "epsilon": 1e-6, **GRID,
            }
        )
    assert row["delay"] == payload["rows"][0]["bound"]


def test_cell_function_backend_parity():
    """RPR003 evidence: the cell function itself, called with every
    registered backend, returns identical payloads."""
    params = BoundQuery.from_json(
        _query("FIFO", "numpy", hops=1, n_through=5, n_cross=5,
               s_grid=4, gamma_grid=4)
    ).params()
    del params["backend"]
    payloads = [
        bound_query_cell(backend=backend, **params) for backend in BACKENDS
    ]
    rows = [
        {k: v for k, v in p["rows"][0].items()} for p in payloads
    ]
    assert rows[0]["delay"] == pytest.approx(rows[1]["delay"], rel=1e-12)
