"""Deterministic in-process harness fixtures for the service tests.

The heavy lifting lives in :mod:`tests.service.api.util`:
:class:`~tests.service.api.util.ServerHarness` boots the real server —
real sockets, ephemeral port, full HTTP parsing — inside a background
event-loop thread, with injectable window sleeps and clocks so nothing
in the suite waits on wall time.
"""

import pytest

from tests.service.api.util import ServerHarness


@pytest.fixture()
def harness():
    """A running server with a real 1 ms window and no disk cache."""
    with ServerHarness() as h:
        yield h


@pytest.fixture(scope="module")
def shared_harness():
    """Module-scoped server for property tests (Hypothesis examples
    reuse one server; state carried between examples is only caches,
    which the properties under test are robust to)."""
    with ServerHarness() as h:
        yield h
