"""Shared helpers for the bound-service tests (see conftest.py)."""

from __future__ import annotations

import asyncio
import threading

from repro.service.api.app import BoundService, ServiceConfig
from repro.service.api.client import ServiceClient
from repro.service.api.http import HttpServer


class ManualClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, delta_s: float) -> None:
        self.now += delta_s


class ManualSleep:
    """An injectable coalescer sleep gated on test-controlled releases.

    Every call parks on its own event (recording the requested delay in
    :attr:`calls`); :meth:`release` opens all currently parked windows.
    A release that arrives *before* the window task has parked — easy
    to hit, since the coalescer's timer task starts a loop pass after
    the submit — is banked as a credit that opens the next window
    immediately, so release/park races cannot deadlock.  Thread-safe:
    tests may call ``release`` from the pytest thread while the waiters
    live on the server loop.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None):
        self._loop = loop
        self._waiters: list[asyncio.Event] = []
        self._credits = 0
        self.calls: list[float] = []

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    async def __call__(self, delay_s: float) -> None:
        self.calls.append(delay_s)
        if self._credits > 0:
            self._credits -= 1
            return
        event = asyncio.Event()
        self._waiters.append(event)
        await event.wait()

    def _open(self) -> None:
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.set()
        else:
            self._credits += 1

    def release(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._open)
        else:
            self._open()

    async def wait_parked(self, n: int = 1) -> None:
        """Yield until ``n`` windows are actually parked (same loop)."""
        while len(self._waiters) < n:
            await asyncio.sleep(0)

    @property
    def parked(self) -> int:
        return len(self._waiters)


class ServerHarness:
    """The real bound service on a real ephemeral socket, in-process."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        manual_sleep: bool = False,
        clock: ManualClock | None = None,
    ):
        self.config = config or ServiceConfig(
            cache_dir=None, batch_window_s=0.001
        )
        self.manual_sleep = ManualSleep() if manual_sleep else None
        self.clock = clock
        self.service: BoundService | None = None
        self.server: HttpServer | None = None
        self.host = ""
        self.port = 0
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="service-harness", daemon=True
        )

    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        if self.manual_sleep is not None:
            self.manual_sleep.bind(self.loop)

        async def boot() -> tuple[str, int]:
            kwargs = {}
            if self.manual_sleep is not None:
                kwargs["sleep"] = self.manual_sleep
            if self.clock is not None:
                kwargs["clock"] = self.clock
            self.service = BoundService(self.config, **kwargs)
            self.server = HttpServer(self.service)
            return await self.server.start()

        self.host, self.port = self.run(boot())
        return self

    def __exit__(self, *exc) -> None:
        if self.manual_sleep is not None:
            self.manual_sleep.release()  # never leave a flush parked
        if self.server is not None:
            self.run(self.server.aclose())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()

    def run(self, coro, timeout: float = 120.0):
        """Run ``coro`` on the server loop; block for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout
        )

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.host, self.port, **kwargs)


#: A tiny, cheap, always-valid query (1 hop, coarse grids) for tests
#: that exercise the service machinery rather than the mathematics.
CHEAP_QUERY = {
    "scheduler": "FIFO",
    "hops": 1,
    "n_through": 5,
    "n_cross": 5,
    "s_grid": 4,
    "gamma_grid": 4,
}
