"""The in-memory LRU front-cache: bounds, TTL, recency, and staleness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.service.api.lru import LRUCache

from tests.service.api.util import ManualClock


def test_size_bound_evicts_least_recent():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes a's recency
    lru.put("c", 3)  # evicts b, the least recently used
    assert lru.get("b") is None
    assert lru.get("a") == 1
    assert lru.get("c") == 3
    assert len(lru) == 2


def test_ttl_expiry_without_sleeping():
    clock = ManualClock()
    lru = LRUCache(8, ttl_s=10.0, clock=clock)
    lru.put("a", 1)
    clock.advance(9.9)
    assert lru.get("a") == 1
    clock.advance(10.1)  # stored_at is not refreshed by reads
    assert lru.get("a") is None
    assert "a" not in lru


def test_put_refreshes_ttl():
    clock = ManualClock()
    lru = LRUCache(8, ttl_s=10.0, clock=clock)
    lru.put("a", 1)
    clock.advance(8.0)
    lru.put("a", 2)
    clock.advance(8.0)
    assert lru.get("a") == 2


def test_counters():
    registry = MetricsRegistry(enabled=True)
    lru = LRUCache(1, registry=registry)
    lru.put("a", 1)
    lru.get("a")
    lru.get("zzz")
    lru.put("b", 2)  # evicts a
    snap = registry.snapshot()["counters"]
    assert snap["service.lru_hit"] == 1.0
    assert snap["service.lru_miss"] == 1.0
    assert snap["service.lru_evict"] == 1.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LRUCache(0)
    with pytest.raises(ValueError):
        LRUCache(4, ttl_s=0.0)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "invalidate", "tick"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=60,
    ),
    max_entries=st.integers(min_value=1, max_value=4),
    ttl_s=st.one_of(st.none(), st.just(5.0)),
)
def test_never_serves_stale_values(ops, max_entries, ttl_s):
    """Against a model: a hit is always the *latest* value put for that
    key, never expired, and never a value that was evicted and not
    re-inserted."""
    clock = ManualClock()
    lru = LRUCache(max_entries, ttl_s=ttl_s, clock=clock)
    latest: dict[str, tuple[int, float]] = {}
    version = 0
    for op, slot in ops:
        key = f"k{slot}"
        if op == "put":
            version += 1
            lru.put(key, version)
            latest[key] = (version, clock.now)
        elif op == "invalidate":
            lru.invalidate(key)
            latest.pop(key, None)
        elif op == "tick":
            clock.advance(2.0)
        else:
            value = lru.get(key)
            if value is not None:
                assert key in latest
                expected, stored_at = latest[key]
                assert value == expected
                if ttl_s is not None:
                    assert clock.now - stored_at <= ttl_s
    assert len(lru) <= max_entries
