"""The HTTP layer, driven over real sockets through the harness.

Includes the malformed-body property: whatever bytes a client posts,
the answer is a structured 4xx JSON error — never a 500, never a hang.
"""

import http.client
import json
import socket

from hypothesis import given
from hypothesis import strategies as st

from repro.service.api.client import ServiceError

from tests.service.api.util import CHEAP_QUERY


def test_healthz(harness):
    with harness.client() as client:
        health = client.healthz()
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0.0


def test_bounds_and_admissible_roundtrip(harness):
    with harness.client() as client:
        row = client.bounds(dict(CHEAP_QUERY))
        assert row["kind"] == "delay"
        assert row["feasible"] is True
        assert row["cached"] is None
        verdict = client.admissible({**CHEAP_QUERY, "target": row["delay"]})
        assert verdict["admissible"] is True  # bound <= its own value
        assert verdict["bound"] == row["delay"]
        assert verdict["cached"] == "lru"  # warmed by the bounds call
        tight = client.admissible({**CHEAP_QUERY, "target": row["delay"] / 2})
        assert tight["admissible"] is False


def test_metrics_endpoint_is_an_obs_snapshot(harness):
    with harness.client() as client:
        client.bounds(dict(CHEAP_QUERY))
        client.bounds(dict(CHEAP_QUERY))
        snap = client.metrics()
    assert set(snap) >= {"counters", "gauges", "series"}
    counters = snap["counters"]
    assert counters["service.requests.bounds"] == 2.0
    assert counters["service.lru_hit"] == 1.0
    assert counters["service.lru_miss"] == 1.0
    assert snap["gauges"]["service.inflight"] == 0
    assert len(snap["series"]["service.request_latency"]) == 2
    assert snap["series"]["service.batch_occupancy"] == [1.0]


def test_infeasible_bound_serializes_as_infinity(harness):
    """An overloaded hop has no finite bound; the JSON round-trips it."""
    with harness.client() as client:
        row = client.bounds({**CHEAP_QUERY, "n_through": 500, "n_cross": 500})
        assert row["feasible"] is False
        assert row["delay"] == float("inf")
        verdict = client.admissible(
            {**CHEAP_QUERY, "n_through": 500, "n_cross": 500, "target": 1e9}
        )
        assert verdict["admissible"] is False  # infeasible is never admitted


def test_validation_errors_are_structured_400s(harness):
    with harness.client() as client:
        status, payload = client.request(
            "POST", "/v1/bounds", {**CHEAP_QUERY, "scheduler": "WFQ"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"
        assert payload["error"]["field"] == "scheduler"
        try:
            client.bounds({**CHEAP_QUERY, "scheduler": "WFQ"})
        except ServiceError as exc:
            assert exc.status == 400
        else:  # pragma: no cover
            raise AssertionError("expected ServiceError")


def test_admissible_requires_numeric_target(harness):
    with harness.client() as client:
        status, payload = client.request(
            "POST", "/v1/admissible", dict(CHEAP_QUERY)
        )
    assert status == 400
    assert payload["error"]["field"] == "target"


def test_routing_errors(harness):
    with harness.client() as client:
        status, payload = client.request("GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not-found"
        status, payload = client.request("GET", "/v1/bounds")
        assert status == 405
        status, payload = client.request("POST", "/v1/bounds")
        assert status == 400
        assert payload["error"]["code"] == "empty-body"


def test_connection_survives_errors(harness):
    """Keep-alive holds across an error response: same connection, next
    request still answered."""
    with harness.client() as client:
        status, _ = client.request("POST", "/v1/bounds", {"scheduler": "X"})
        assert status == 400
        assert client.healthz()["status"] == "ok"


def _raw_request(host, port, payload: bytes) -> tuple[int, dict]:
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(
            b"POST /v1/bounds HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: %d\r\nConnection: close\r\n\r\n%s"
            % (len(payload), payload)
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body)


def test_oversized_body_is_rejected(shared_harness):
    conn = http.client.HTTPConnection(
        shared_harness.host, shared_harness.port, timeout=30
    )
    conn.request(
        "POST", "/v1/bounds", body=b"x" * 10,
        headers={"Content-Length": str((1 << 20) + 1)},
    )
    response = conn.getresponse()
    assert response.status == 413
    conn.close()


@given(
    payload=st.one_of(
        st.binary(max_size=200),
        st.text(max_size=200).map(lambda s: s.encode()),
        st.sampled_from(
            [
                b"",
                b"{",
                b"[1, 2",
                b"null",
                b"[]",
                b'"query"',
                b"{}",
                b'{"scheduler": }',
                b'{"hops": NaN}',
                b'{"scheduler": "FIFO", "hops": -1, "n_through": 1}',
                b'{"scheduler": "FIFO", "hops": 1e400, "n_through": 1}',
                '{"scheduler": "FIFÖ"}'.encode(),
                b"\xff\xfe\x00\x01",
            ]
        ),
    )
)
def test_malformed_bodies_never_500_or_hang(shared_harness, payload):
    """Any byte blob posted to /v1/bounds gets a structured 4xx JSON
    answer; the server neither 500s nor stalls the connection."""
    status, body = _raw_request(
        shared_harness.host, shared_harness.port, payload
    )
    assert 400 <= status < 500
    assert "error" in body
    assert body["error"]["code"]
    assert body["error"]["message"]
