"""The batch coalescer: windows, fusion, dedup, identity, and errors.

All window behaviour runs against the injectable ``sleep`` gate from
:mod:`tests.service.api.util` — nothing here waits on wall time.
"""

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.sweep import Cell
from repro.obs import MetricsRegistry
from repro.service.api.coalescer import BatchCoalescer
from repro.service.api.model import BoundQuery

from tests.service.api.util import CHEAP_QUERY, ManualSleep

PROBE_FN = "repro.experiments.sweep:probe_cell"


def probe(value: float) -> Cell:
    return Cell.make(PROBE_FN, value=value)


def service_cell(**overrides) -> Cell:
    return BoundQuery.from_json({**CHEAP_QUERY, **overrides}).cell()


def run(coro):
    return asyncio.run(coro)


def test_window_holds_until_released():
    async def main():
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate)
        tasks = [
            asyncio.create_task(coalescer.submit(probe(float(i))))
            for i in range(3)
        ]
        await gate.wait_parked()  # the window timer is now blocked on us
        assert coalescer.pending_count == 3
        assert gate.calls == [coalescer.window_s]  # one window, not three
        assert not any(task.done() for task in tasks)
        gate.release()
        results = await asyncio.gather(*tasks)
        assert [r["rows"][0]["x"] for r in results] == [0.0, 1.0, 2.0]
        await coalescer.aclose()

    run(main())


def test_max_lanes_flushes_without_window():
    async def main():
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate, max_lanes=2)
        tasks = [
            asyncio.create_task(coalescer.submit(probe(float(i))))
            for i in range(2)
        ]
        # full house flushes immediately: no window release needed
        results = await asyncio.gather(*tasks)
        assert [r["rows"][0]["x"] for r in results] == [0.0, 1.0]
        await coalescer.aclose()

    run(main())


def test_duplicates_share_one_solve():
    async def main():
        registry = MetricsRegistry(enabled=True)
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate, registry=registry)
        cell = service_cell()
        tasks = [
            asyncio.create_task(coalescer.submit(cell)) for _ in range(4)
        ]
        await gate.wait_parked()
        assert coalescer.pending_count == 1  # deduped while pending
        gate.release()
        results = await asyncio.gather(*tasks)
        assert all(r == results[0] for r in results)
        snap = registry.snapshot()
        assert snap["counters"]["batch.planned"] == 1.0
        assert snap["series"]["service.batch_occupancy"] == [1.0]
        await coalescer.aclose()

    run(main())


def test_concurrent_distinct_queries_fuse_into_one_batch():
    async def main():
        registry = MetricsRegistry(enabled=True)
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate, registry=registry)
        cells = [service_cell(hops=h) for h in (1, 2, 3)]
        tasks = [
            asyncio.create_task(coalescer.submit(cell)) for cell in cells
        ]
        await gate.wait_parked()
        gate.release()
        results = await asyncio.gather(*tasks)
        assert [r["rows"][0]["hops"] for r in results] == [1, 2, 3]
        snap = registry.snapshot()
        # same (fn, lane family, backend): one fused batch of 3 lanes
        assert snap["series"]["service.batch_occupancy"] == [3.0]
        assert snap["counters"]["lanes.mmoo_lanes"] == 3.0
        assert snap["counters"].get("batch.fallback_cells", 0.0) == 0.0
        await coalescer.aclose()

    run(main())


def test_solver_errors_propagate_to_waiters():
    async def main():
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate)
        task = asyncio.create_task(
            coalescer.submit(Cell.make("repro.no_such_module:f"))
        )
        await gate.wait_parked()
        gate.release()
        with pytest.raises(ModuleNotFoundError):
            await task
        # the coalescer survives a failed flush and keeps serving
        tasks = [asyncio.create_task(coalescer.submit(probe(5.0)))]
        await gate.wait_parked()
        gate.release()
        assert (await tasks[0])["rows"][0]["x"] == 5.0
        await coalescer.aclose()

    run(main())


def test_closed_coalescer_rejects_submits():
    async def main():
        coalescer = BatchCoalescer()
        await coalescer.aclose()
        with pytest.raises(RuntimeError):
            await coalescer.submit(probe(0.0))

    run(main())


def test_invalid_parameters():
    with pytest.raises(ValueError):
        BatchCoalescer(window_s=-1.0)
    with pytest.raises(ValueError):
        BatchCoalescer(max_lanes=0)


@given(
    values=st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=12
    ),
    releases=st.lists(st.booleans(), max_size=12),
)
def test_identity_under_arbitrary_interleavings(values, releases):
    """Every waiter gets *its own* query's answer, regardless of how
    submissions (with duplicates) interleave with window releases."""

    async def main():
        gate = ManualSleep()
        coalescer = BatchCoalescer(sleep=gate, max_lanes=4)
        tasks = []
        plan = iter(releases)
        for value in values:
            tasks.append(
                (value, asyncio.create_task(coalescer.submit(probe(float(value))))),
            )
            await asyncio.sleep(0)
            if next(plan, False):
                gate.release()
                await asyncio.sleep(0)
        await coalescer.flush()
        gate.release()  # open any still-parked window
        for value, task in tasks:
            payload = await task
            assert payload["rows"][0]["x"] == float(value)
        await coalescer.aclose()

    run(main())
