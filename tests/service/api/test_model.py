"""Query validation and canonicalization (`repro.service.api.model`)."""

import pytest

from repro.experiments.config import EPSILON, QUICK_GRIDS
from repro.service.api.model import PAPER_TRAFFIC, BoundQuery, QueryError


def q(**overrides):
    body = {"scheduler": "FIFO", "hops": 4, "n_through": 10}
    body.update(overrides)
    return body


def test_defaults_fill_paper_setting():
    query = BoundQuery.from_json(q())
    assert query.kind == "delay"
    assert query.traffic == PAPER_TRAFFIC
    assert query.capacity == 100.0
    assert query.epsilon == EPSILON
    assert query.n_cross == 0
    assert query.s_grid == QUICK_GRIDS["s_grid"]
    assert query.backend == "numpy"


def test_cell_key_is_canonical():
    """Field order and list-vs-tuple spelling do not change the key."""
    a = BoundQuery.from_json(
        {"scheduler": "SP", "hops": 3, "n_through": 7, "traffic": [1.5, 0.989, 0.9]}
    )
    b = BoundQuery.from_json(
        {"traffic": (1.5, 0.989, 0.9), "n_through": 7, "hops": 3, "scheduler": "SP"}
    )
    assert a == b
    assert a.key() == b.key()


def test_non_edf_weights_are_canonicalized():
    """Deadline weights cannot affect FIFO answers, so they are pinned
    to the defaults — the cache key must not fragment on them."""
    plain = BoundQuery.from_json(q())
    weighted = BoundQuery.from_json(
        q(deadline_weight_through=3.0, deadline_weight_cross=7.0)
    )
    assert plain.key() == weighted.key()
    # ... while for EDF they are honoured and enter the key
    edf = BoundQuery.from_json(q(scheduler="EDF"))
    edf_weighted = BoundQuery.from_json(
        q(scheduler="EDF", deadline_weight_through=3.0)
    )
    assert edf.deadline_weight_through == 1.0
    assert edf_weighted.deadline_weight_through == 3.0
    assert edf.key() != edf_weighted.key()


@pytest.mark.parametrize(
    "body, field",
    [
        ({"hops": 4, "n_through": 10}, "scheduler"),
        (q(scheduler="WFQ"), "scheduler"),
        (q(kind="jitter"), "kind"),
        (q(kind="backlog", scheduler="EDF"), "scheduler"),
        (q(hops=0), "hops"),
        (q(hops=5000), "hops"),
        (q(hops=2.5), "hops"),
        (q(hops=True), "hops"),
        (q(n_through=0), "n_through"),
        (q(epsilon=0.0), "epsilon"),
        (q(epsilon=1.0), "epsilon"),
        (q(epsilon="tiny"), "epsilon"),
        (q(traffic=[1.5, 0.989]), "traffic"),
        (q(traffic=[1.5, 1.2, 0.9]), "traffic.p11"),
        (q(traffic="fast"), "traffic"),
        (q(capacity=0.0), "capacity"),
        (q(backend="torch"), "backend"),
        (q(s_grid=1), "s_grid"),
        (q(gamma_grid=10**6), "gamma_grid"),
        (q(scheduler="EDF", deadline_weight_cross=0.0), "deadline_weight_cross"),
    ],
)
def test_rejections_name_the_field(body, field):
    with pytest.raises(QueryError) as excinfo:
        BoundQuery.from_json(body)
    assert excinfo.value.field == field
    payload = excinfo.value.to_json()
    assert payload["error"]["code"] == "bad-request"
    assert payload["error"]["field"] == field


def test_non_object_bodies_rejected():
    for body in (None, [], "query", 7):
        with pytest.raises(QueryError):
            BoundQuery.from_json(body)


def test_nan_and_inf_rejected():
    with pytest.raises(QueryError):
        BoundQuery.from_json(q(epsilon=float("nan")))
    with pytest.raises(QueryError):
        BoundQuery.from_json(q(capacity=float("inf")))
