"""Tests for the factored service-curve representation."""

import math

import pytest

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.statistical import ExponentialBound, StatisticalEnvelope
from repro.service.curves import (
    StatisticalServiceCurve,
    constant_rate_service,
    delay_service,
    rate_latency_service,
)


class TestConstruction:
    def test_constant_rate(self):
        s = constant_rate_service(10.0)
        assert s(0.0) == 0.0
        assert s(2.0) == pytest.approx(20.0)
        assert s.is_deterministic()
        assert s.long_term_rate == 10.0

    def test_rate_latency(self):
        s = rate_latency_service(5.0, 2.0)
        assert s(2.0) == 0.0
        assert s(4.0) == pytest.approx(10.0)

    def test_shift_encodes_jump(self):
        # base with base(0) = 3 and shift 2: S jumps from 0 to 3 at t = 2+
        base = PiecewiseLinear.affine(1.0, 3.0)
        s = StatisticalServiceCurve(base, shift=2.0)
        assert s(2.0) == 0.0
        assert s(2.0 + 1e-9) == pytest.approx(3.0, abs=1e-6)
        assert s(5.0) == pytest.approx(6.0)

    def test_delay_service(self):
        s = delay_service(3.0)
        env = StatisticalEnvelope(
            PiecewiseLinear.token_bucket(1.0, 5.0), ExponentialBound(1.0, 1.0)
        )
        assert s.delay_bound(env, 0.0) == pytest.approx(3.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticalServiceCurve(PiecewiseLinear.constant_rate(1.0), shift=-1.0)
        with pytest.raises(ValueError):
            StatisticalServiceCurve(PiecewiseLinear.delay(1.0))
        decreasing = PiecewiseLinear.from_points([(0.0, 5.0), (1.0, 0.0)], 0.0)
        with pytest.raises(ValueError):
            StatisticalServiceCurve(decreasing)


class TestConvolution:
    def test_rate_latency_composition(self):
        a = rate_latency_service(4.0, 1.0)
        b = rate_latency_service(6.0, 2.0)
        c = a.convolve(b)
        assert c.shift == 0.0
        assert c(3.0) == 0.0
        assert c(5.0) == pytest.approx(8.0)
        assert c.long_term_rate == 4.0

    def test_shifts_add(self):
        a = StatisticalServiceCurve(PiecewiseLinear.constant_rate(5.0), shift=1.0)
        b = StatisticalServiceCurve(PiecewiseLinear.constant_rate(5.0), shift=2.0)
        c = a.convolve(b)
        assert c.shift == pytest.approx(3.0)
        assert c(3.0) == 0.0
        assert c(4.0) == pytest.approx(5.0)

    def test_bounds_combine(self):
        a = StatisticalServiceCurve(
            PiecewiseLinear.constant_rate(5.0), 0.0, ExponentialBound(1.0, 1.0)
        )
        b = StatisticalServiceCurve(
            PiecewiseLinear.constant_rate(5.0), 0.0, ExponentialBound(1.0, 1.0)
        )
        c = a.convolve(b)
        assert not c.is_deterministic()
        assert c.bound.decay == pytest.approx(0.5)


class TestDelayBound:
    def test_textbook(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(1.0, 4.0))
        s = rate_latency_service(2.0, 3.0)
        assert s.delay_bound(env, 0.0) == pytest.approx(5.0)

    def test_sigma_increases_delay(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(1.0, 4.0))
        s = rate_latency_service(2.0, 3.0)
        d0 = s.delay_bound(env, 0.0)
        d1 = s.delay_bound(env, 2.0)
        assert d1 == pytest.approx(d0 + 1.0)  # sigma / rate

    def test_shift_adds_to_delay(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(1.0, 4.0))
        plain = rate_latency_service(2.0, 0.0)
        shifted = StatisticalServiceCurve(plain.base, shift=3.0)
        assert shifted.delay_bound(env, 0.0) == pytest.approx(
            plain.delay_bound(env, 0.0) + 3.0
        )

    def test_unstable_is_infinite(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(3.0, 0.0))
        s = constant_rate_service(2.0)
        assert s.delay_bound(env, 0.0) == math.inf

    def test_negative_sigma_rejected(self):
        env = StatisticalEnvelope.deterministic(PiecewiseLinear.token_bucket(1.0, 1.0))
        with pytest.raises(ValueError):
            constant_rate_service(2.0).delay_bound(env, -1.0)

    def test_epsilon(self):
        s = StatisticalServiceCurve(
            PiecewiseLinear.constant_rate(1.0), 0.0, ExponentialBound(2.0, 1.0)
        )
        assert s.epsilon(0.0) == 1.0
        assert s.epsilon(10.0) == pytest.approx(2.0 * math.exp(-10.0))


class TestNondecreasingHull:
    def test_hull_of_dipping_curve(self):
        f = PiecewiseLinear.from_points(
            [(0.0, 0.0), (1.0, 4.0), (2.0, 1.0), (3.0, 1.0)], final_slope=2.0
        )
        hull = f.nondecreasing_hull()
        assert hull.is_nondecreasing()
        # hull(t) = inf_{s>=t} f(s)
        for t in (0.0, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0):
            brute = min(f(t + u) for u in [x * 0.01 for x in range(800)])
            assert hull(t) == pytest.approx(brute, abs=1e-6)

    def test_hull_identity_for_monotone(self):
        f = PiecewiseLinear.rate_latency(2.0, 1.0)
        assert f.nondecreasing_hull() is f

    def test_hull_rejects_negative_tail(self):
        f = PiecewiseLinear.from_points([(0.0, 5.0)], final_slope=-1.0)
        with pytest.raises(ValueError):
            f.nondecreasing_hull()

    def test_hull_rejects_cutoff(self):
        with pytest.raises(ValueError):
            PiecewiseLinear.delay(1.0).nondecreasing_hull()
