"""Tests for Theorem 1's leftover service curve.

Cross-checks against closed forms for FIFO, BMUX/SP, and EDF, plus the
consistency with Theorem 2's schedulability condition (Section III-B).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.functions import PiecewiseLinear
from repro.arrivals.ebb import EBB
from repro.arrivals.envelopes import leaky_bucket
from repro.arrivals.statistical import ExponentialBound, StatisticalEnvelope
from repro.scheduling.delta import BMUX, EDF, FIFO, StaticPriority
from repro.scheduling.schedulability import min_feasible_delay
from repro.service.leftover import (
    deterministic_leftover_service,
    leftover_service_curve,
)


def env_rate(rate):
    """A burst-free statistical envelope G(t) = rate * t with a unit bound."""
    return StatisticalEnvelope(
        PiecewiseLinear.constant_rate(rate), ExponentialBound(1.0, 1.0)
    )


def env_bucket(rate, burst, m=1.0, alpha=1.0):
    return StatisticalEnvelope(
        PiecewiseLinear.token_bucket(rate, burst), ExponentialBound(m, alpha)
    )


class TestClosedForms:
    def test_bmux_leftover_is_rate_function_of_t_plus_theta(self):
        # BMUX: Delta = +inf -> Delta(theta) = theta; the base is
        # C(u + theta) - G(u + theta) = (C - rho)(u + theta)
        c, rho, theta = 10.0, 4.0, 2.0
        s = leftover_service_curve(BMUX("j"), "j", c, {"c": env_rate(rho)}, theta)
        assert s.shift == theta
        for t in (theta + 0.5, theta + 3.0):
            assert s(t) == pytest.approx((c - rho) * t)

    def test_fifo_leftover(self):
        # FIFO: Delta = 0 -> base(u) = C(u + theta) - G(u) =
        # (C - rho) u + C theta
        c, rho, theta = 10.0, 4.0, 2.0
        s = leftover_service_curve(FIFO(), "j", c, {"c": env_rate(rho)}, theta)
        for t in (theta + 0.5, theta + 3.0):
            assert s(t) == pytest.approx((c - rho) * (t - theta) + c * theta)

    def test_fifo_jump_at_theta(self):
        c, rho, theta = 10.0, 4.0, 2.0
        s = leftover_service_curve(FIFO(), "j", c, {"c": env_rate(rho)}, theta)
        assert s(theta) == 0.0
        assert s(theta + 1e-9) == pytest.approx(c * theta, rel=1e-6)

    def test_edf_negative_delta_favored_flow(self):
        # Delta_{j,c} = d_j - d_c < 0: cross traffic counted only from
        # u >= |Delta| -> base is C(u+theta) - rho [u - |Delta|]_+
        c, rho, theta = 10.0, 4.0, 3.0
        edf = EDF({"j": 1.0, "c": 3.0})  # Delta = -2
        s = leftover_service_curve(edf, "j", c, {"c": env_rate(rho)}, theta)
        for u in (0.5, 1.5):  # u < 2: no cross traffic subtracted
            assert s(theta + u) == pytest.approx(c * (u + theta))
        for u in (2.5, 4.0):
            assert s(theta + u) == pytest.approx(c * (u + theta) - rho * (u - 2.0))

    def test_edf_positive_delta_penalized_flow(self):
        # Delta > 0, theta < Delta: Delta(theta) = theta -> same as BMUX
        c, rho = 10.0, 4.0
        edf = EDF({"j": 5.0, "c": 1.0})  # Delta = +4
        theta = 2.0  # < Delta
        s_edf = leftover_service_curve(edf, "j", c, {"c": env_rate(rho)}, theta)
        s_bm = leftover_service_curve(BMUX("j"), "j", c, {"c": env_rate(rho)}, theta)
        for t in (2.5, 4.0, 8.0):
            assert s_edf(t) == pytest.approx(s_bm(t))

    def test_sp_excludes_lower_priority(self):
        # lower-priority cross traffic does not appear in the leftover curve
        sched = StaticPriority({"j": 1, "lo": 0, "hi": 2})
        c = 10.0
        s = leftover_service_curve(
            sched,
            "j",
            c,
            {"lo": env_rate(100.0), "hi": env_rate(3.0)},
            theta=1.0,
        )
        # only "hi" is subtracted, shifted as BMUX (Delta=+inf)
        for t in (1.5, 3.0):
            assert s(t) == pytest.approx((c - 3.0) * t)

    def test_no_cross_traffic_full_capacity(self):
        s = leftover_service_curve(FIFO(), "j", 7.0, {}, theta=0.0)
        assert s(3.0) == pytest.approx(21.0)
        assert s.is_deterministic()


class TestBoundingFunction:
    def test_single_cross_flow_bound_passthrough(self):
        s = leftover_service_curve(
            FIFO(), "j", 10.0, {"c": env_bucket(1.0, 2.0, m=3.0, alpha=2.0)}, 0.0
        )
        assert s.bound.prefactor == pytest.approx(3.0)
        assert s.bound.decay == pytest.approx(2.0)

    def test_two_cross_flows_combine(self):
        envs = {
            "c1": env_bucket(1.0, 0.0, m=1.0, alpha=1.0),
            "c2": env_bucket(1.0, 0.0, m=1.0, alpha=1.0),
        }
        s = leftover_service_curve(FIFO(), "j", 10.0, envs, 0.0)
        assert s.bound.decay == pytest.approx(0.5)
        assert s.bound.prefactor == pytest.approx(2.0)


class TestSoundness:
    def test_flow_in_cross_raises(self):
        with pytest.raises(ValueError):
            leftover_service_curve(FIFO(), "j", 10.0, {"j": env_rate(1.0)}, 0.0)

    def test_overload_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            leftover_service_curve(FIFO(), "j", 2.0, {"c": env_rate(5.0)}, 0.0)

    def test_burst_dip_produces_valid_hull(self):
        # a cross envelope with burst slope above C on its first segment
        steep = StatisticalEnvelope(
            PiecewiseLinear.from_points([(0.0, 0.0), (1.0, 15.0)], 1.0),
            ExponentialBound(1.0, 1.0),
        )
        s = leftover_service_curve(FIFO(), "j", 10.0, {"c": steep}, theta=2.0)
        probe = [s(t) for t in (2.0, 2.5, 3.0, 4.0, 6.0)]
        assert all(b >= a - 1e-9 for a, b in zip(probe, probe[1:]))

    @given(
        st.floats(min_value=0.1, max_value=4.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=3.0),
        st.sampled_from(["fifo", "bmux", "edf_fav", "edf_pen"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_leftover_below_capacity_line(self, rho, burst, theta, kind):
        """The leftover curve never exceeds the raw link service Ct."""
        c = 10.0
        sched = {
            "fifo": FIFO(),
            "bmux": BMUX("j"),
            "edf_fav": EDF({"j": 1.0, "c": 4.0}),
            "edf_pen": EDF({"j": 4.0, "c": 1.0}),
        }[kind]
        s = leftover_service_curve(
            sched, "j", c, {"c": env_bucket(rho, burst)}, theta
        )
        for t in (0.0, theta, theta + 0.5, theta + 2.0, theta + 10.0):
            assert s(t) <= c * t + 1e-6

    @given(
        st.floats(min_value=0.1, max_value=4.0),
        st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_bmux_is_weakest_delta_scheduler(self, rho, theta):
        """For the same cross envelope, every Delta-scheduler's leftover
        curve dominates the BMUX curve."""
        c = 10.0
        envs = {"c": env_bucket(rho, 1.0)}
        s_bm = leftover_service_curve(BMUX("j"), "j", c, envs, theta)
        for sched in (FIFO(), EDF({"j": 1.0, "c": 2.0})):
            s = leftover_service_curve(sched, "j", c, envs, theta)
            for t in (theta + 0.1, theta + 1.0, theta + 5.0):
                assert s(t) >= s_bm(t) - 1e-9


class TestTightnessLink:
    """Section III-B: delay bounds from Theorem 1 + Eq. (20) reproduce the
    exact schedulability delays of Theorem 2 (sigma = 0, deterministic)."""

    @pytest.mark.parametrize(
        "make_sched",
        [
            lambda: FIFO(),
            lambda: BMUX("j"),
            lambda: EDF({"j": 1.0, "c": 4.0}),
            lambda: EDF({"j": 4.0, "c": 1.0}),
        ],
        ids=["fifo", "bmux", "edf_favored", "edf_penalized"],
    )
    def test_service_curve_delay_matches_schedulability(self, make_sched):
        sched = make_sched()
        capacity = 10.0
        det_envs = {"j": leaky_bucket(2.0, 5.0), "c": leaky_bucket(3.0, 4.0)}
        d_exact = min_feasible_delay(sched, det_envs, capacity, "j")

        # Theorem 1 with theta = d_exact must certify the same bound
        own = StatisticalEnvelope.deterministic(det_envs["j"].curve)
        service = deterministic_leftover_service(
            sched, "j", capacity, {"c": det_envs["c"]}, theta=d_exact
        )
        d_from_curve = service.delay_bound(own, 0.0)
        assert d_from_curve == pytest.approx(d_exact, abs=1e-6)


class TestEBBIntegration:
    def test_paper_eq_28_shape(self):
        """Eq. (28): with EBB cross traffic, the leftover curve at theta is
        [C t - (rho_c + gamma)(t - theta + Delta(theta))]_+ I(t > theta)."""
        c, gamma, theta = 10.0, 0.2, 1.5
        cross = EBB(1.0, 3.0, 0.8)
        env = cross.sample_path_envelope(gamma)
        s = leftover_service_curve(FIFO(), "j", c, {"c": env}, theta)
        rho_gamma = 3.0 + gamma
        for t in (1.6, 2.5, 5.0):
            expected = max(0.0, c * t - rho_gamma * (t - theta))
            assert s(t) == pytest.approx(expected)
        # bounding function: M e^{-alpha sigma} / (1 - e^{-alpha gamma})
        q = math.exp(-0.8 * gamma)
        assert s.bound.prefactor == pytest.approx(1.0 / (1.0 - q))
        assert s.bound.decay == pytest.approx(0.8)
