"""Tests for the benchmark-regression gate (benchmarks/check_regression.py).

The script is stdlib-only and lives outside the package, so it is loaded
by path.  The important property under test: a uniformly slower machine
(every benchmark scaled by the same factor) must pass the normalized
gate, while a single benchmark regressing relative to the rest fails it.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def pytest_bench_json(means: dict) -> dict:
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }


def write(tmp_path: Path, name: str, payload: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def baseline(tmp_path):
    current = write(
        tmp_path, "base_run.json",
        pytest_bench_json({"bench_a": 1.0, "bench_b": 10.0, "bench_c": 0.1}),
    )
    base = tmp_path / "BASELINE.json"
    rc = check_regression.main([str(current), "--baseline", str(base), "--update"])
    assert rc == 0
    return base


class TestUpdateMode:
    def test_writes_schema_and_means(self, baseline):
        data = json.loads(baseline.read_text())
        assert data["schema"] == "repro.bench-baseline/1"
        assert data["benchmarks"]["bench_b"] == pytest.approx(10.0)


class TestGate:
    def run(self, tmp_path, baseline, means, *extra):
        current = write(tmp_path, "pr.json", pytest_bench_json(means))
        return check_regression.main(
            [str(current), "--baseline", str(baseline), *extra]
        )

    def test_identical_run_passes(self, tmp_path, baseline):
        means = {"bench_a": 1.0, "bench_b": 10.0, "bench_c": 0.1}
        assert self.run(tmp_path, baseline, means) == 0

    def test_within_tolerance_passes(self, tmp_path, baseline):
        means = {"bench_a": 1.2, "bench_b": 10.0, "bench_c": 0.1}
        assert self.run(tmp_path, baseline, means) == 0

    def test_single_regression_fails(self, tmp_path, baseline):
        means = {"bench_a": 2.0, "bench_b": 10.0, "bench_c": 0.1}
        assert self.run(tmp_path, baseline, means) == 1

    def test_uniformly_slower_machine_passes_normalized(self, tmp_path, baseline):
        # a 3x slower host is not a regression: the median ratio absorbs it
        means = {"bench_a": 3.0, "bench_b": 30.0, "bench_c": 0.3}
        assert self.run(tmp_path, baseline, means) == 0

    def test_uniform_slowdown_fails_raw_mode(self, tmp_path, baseline):
        means = {"bench_a": 3.0, "bench_b": 30.0, "bench_c": 0.3}
        assert self.run(tmp_path, baseline, means, "--raw") == 1

    def test_relative_regression_on_slow_machine_fails(self, tmp_path, baseline):
        # machine 2x slower overall, but bench_a 8x slower: regression
        means = {"bench_a": 8.0, "bench_b": 20.0, "bench_c": 0.2}
        assert self.run(tmp_path, baseline, means) == 1

    def test_missing_benchmark_fails(self, tmp_path, baseline):
        means = {"bench_a": 1.0, "bench_b": 10.0}
        assert self.run(tmp_path, baseline, means) == 1

    def test_unbaselined_benchmark_fails(self, tmp_path, baseline, capsys):
        # a benchmark absent from the baseline would be ungated forever;
        # the gate fails until the author re-baselines with --update
        means = {
            "bench_a": 1.0, "bench_b": 10.0, "bench_c": 0.1, "bench_d": 5.0,
        }
        assert self.run(tmp_path, baseline, means) == 1
        captured = capsys.readouterr()
        assert "UNBASELINED" in captured.out
        # the failure names the offender and the exact regen command
        assert "bench_d" in captured.err
        assert (
            "pytest benchmarks/ --benchmark-json=BENCH_PR.json && "
            "python benchmarks/check_regression.py BENCH_PR.json --update"
        ) in captured.err

    def test_tolerance_flag(self, tmp_path, baseline):
        means = {"bench_a": 1.2, "bench_b": 10.0, "bench_c": 0.1}
        assert self.run(tmp_path, baseline, means, "--tolerance", "0.05") == 1

    def test_missing_baseline_file_fails(self, tmp_path):
        current = write(tmp_path, "pr.json", pytest_bench_json({"a": 1.0}))
        rc = check_regression.main(
            [str(current), "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 1


class TestLoadMeans:
    def test_reads_pytest_benchmark_format(self, tmp_path):
        path = write(tmp_path, "run.json", pytest_bench_json({"x": 2.5}))
        assert check_regression.load_means(path) == {"x": 2.5}

    def test_reads_baseline_format(self, baseline):
        means = check_regression.load_means(baseline)
        assert means["bench_a"] == pytest.approx(1.0)
