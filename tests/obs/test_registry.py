"""Tests for the structured observability layer (repro.obs)."""

import json
import pickle
import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestEnabledSwitch:
    def test_disabled_by_default(self):
        assert not MetricsRegistry().enabled()

    def test_enable_disable(self, registry):
        assert registry.enabled()
        registry.disable()
        assert not registry.enabled()
        registry.enable()
        assert registry.enabled()

    def test_disabled_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        with reg.trace("span"):
            reg.add("counter")
            reg.set_gauge("gauge", 1)
            reg.observe("series", 1.0)
        snap = reg.snapshot()
        assert snap["spans"] == {}
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["series"] == {}

    def test_disabled_trace_returns_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.trace("a") is reg.trace("b") is obs.NOOP_SPAN

    def test_reset_keeps_enabled_flag(self, registry):
        registry.add("counter")
        registry.reset()
        assert registry.enabled()
        assert registry.counter("counter") == 0.0


class TestCounters:
    def test_add_default_one(self, registry):
        registry.add("iterations")
        registry.add("iterations")
        assert registry.counter("iterations") == 2.0

    def test_add_value(self, registry):
        registry.add("steps", 7)
        registry.add("steps", 3.5)
        assert registry.counter("steps") == pytest.approx(10.5)

    def test_missing_counter_reads_zero(self, registry):
        assert registry.counter("never") == 0.0


class TestGaugesAndSeries:
    def test_gauge_last_wins(self, registry):
        registry.set_gauge("shape", [12, 2])
        registry.set_gauge("shape", [24, 5])
        assert registry.gauge("shape") == [24, 5]

    def test_series_appends_in_order(self, registry):
        for value in (3.0, 1.0, 2.0):
            registry.observe("residual", value)
        assert registry.series("residual") == [3.0, 1.0, 2.0]

    def test_series_capped(self, registry):
        for i in range(obs.SERIES_CAP + 10):
            registry.observe("big", float(i))
        assert len(registry.series("big")) == obs.SERIES_CAP


class TestSpans:
    def test_span_records_count_and_time(self, registry):
        with registry.trace("work"):
            pass
        node = registry.snapshot()["spans"]["work"]
        assert node["count"] == 1
        assert node["total_s"] >= 0.0
        assert node["min_s"] <= node["max_s"]

    def test_nested_spans_form_a_tree(self, registry):
        with registry.trace("outer"):
            with registry.trace("inner"):
                pass
            with registry.trace("inner"):
                pass
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"outer"}
        inner = spans["outer"]["children"]["inner"]
        assert inner["count"] == 2
        assert spans["outer"]["count"] == 1

    def test_sibling_spans_do_not_nest(self, registry):
        with registry.trace("a"):
            pass
        with registry.trace("b"):
            pass
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"a", "b"}
        assert spans["a"]["children"] == {}

    def test_span_closes_on_exception(self, registry):
        with pytest.raises(ValueError):
            with registry.trace("fails"):
                raise ValueError("boom")
        # the stack unwound: a new span lands at the root, not nested
        with registry.trace("after"):
            pass
        spans = registry.snapshot()["spans"]
        assert spans["fails"]["count"] == 1
        assert "after" in spans

    def test_threads_have_independent_stacks(self, registry):
        barrier = threading.Barrier(2)

        def work(name):
            with registry.trace(name):
                barrier.wait()
                with registry.trace("child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = registry.snapshot()["spans"]
        # both roots, each with its own child: no cross-thread nesting
        assert spans["t1"]["children"]["child"]["count"] == 1
        assert spans["t2"]["children"]["child"]["count"] == 1


class TestSnapshot:
    def test_schema_tag(self, registry):
        assert registry.snapshot()["schema"] == obs.SNAPSHOT_SCHEMA

    def test_snapshot_is_json_serializable(self, registry):
        with registry.trace("a"):
            registry.add("c", 2)
            registry.set_gauge("g", [1, 2])
            registry.observe("s", 0.5)
        text = json.dumps(registry.snapshot())
        assert json.loads(text)["counters"]["c"] == 2

    def test_snapshot_is_picklable(self, registry):
        with registry.trace("a"):
            registry.add("c")
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_snapshot_is_a_deep_copy(self, registry):
        registry.add("c")
        snap = registry.snapshot()
        registry.add("c")
        assert snap["counters"]["c"] == 1.0

    def test_to_json_round_trips(self, registry):
        registry.add("c", 3)
        assert json.loads(registry.to_json())["counters"]["c"] == 3.0


class TestMerge:
    def make_source(self):
        src = MetricsRegistry(enabled=True)
        with src.trace("outer"):
            with src.trace("inner"):
                pass
        src.add("counter", 5)
        src.set_gauge("gauge", "worker")
        src.observe("series", 1.0)
        return src

    def test_counters_sum(self, registry):
        registry.add("counter", 2)
        registry.merge(self.make_source().snapshot())
        assert registry.counter("counter") == 7.0

    def test_gauges_take_incoming(self, registry):
        registry.set_gauge("gauge", "parent")
        registry.merge(self.make_source().snapshot())
        assert registry.gauge("gauge") == "worker"

    def test_series_extend(self, registry):
        registry.observe("series", 0.0)
        registry.merge(self.make_source().snapshot())
        assert registry.series("series") == [0.0, 1.0]

    def test_span_trees_merge_recursively(self, registry):
        with registry.trace("outer"):
            pass
        registry.merge(self.make_source().snapshot())
        spans = registry.snapshot()["spans"]
        assert spans["outer"]["count"] == 2
        assert spans["outer"]["children"]["inner"]["count"] == 1

    def test_merge_works_while_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.merge(self.make_source().snapshot())
        assert reg.counter("counter") == 5.0

    def test_merged_mins_ignore_empty_nodes(self, registry):
        src = MetricsRegistry(enabled=True)
        with src.trace("span"):
            pass
        registry.merge(src.snapshot())
        registry.merge(src.snapshot())
        node = registry.snapshot()["spans"]["span"]
        assert node["count"] == 2
        assert node["min_s"] <= node["max_s"]


class TestModuleAPI:
    def test_module_functions_hit_active_registry(self):
        with obs.scoped(enabled=True) as registry:
            with obs.trace("span"):
                obs.add("counter")
                obs.set_gauge("gauge", 1)
                obs.observe("series", 2.0)
            assert obs.active() is registry
            assert obs.enabled()
            snap = obs.snapshot()
        assert snap["counters"]["counter"] == 1.0
        assert "span" in snap["spans"]
        assert obs.series("series") == []  # previous registry restored

    def test_scoped_restores_previous_registry_on_error(self):
        before = obs.active()
        with pytest.raises(RuntimeError):
            with obs.scoped(enabled=True):
                raise RuntimeError("boom")
        assert obs.active() is before

    def test_scoped_nests(self):
        with obs.scoped(enabled=True):
            obs.add("outer")
            with obs.scoped(enabled=True):
                obs.add("inner")
                assert obs.counter("outer") == 0.0
            assert obs.counter("inner") == 0.0
            assert obs.counter("outer") == 1.0

    def test_global_registry_disabled_by_default(self):
        assert not obs.enabled()
